//! Shape tests: the qualitative claims of the paper's evaluation section,
//! asserted at reduced scale. These are the properties EXPERIMENTS.md
//! reports at full figure scale.

use fbf::CodeSpec;
use fbf::PolicyKind;
use fbf::{run_experiment, ExperimentConfig};

fn cfg(policy: PolicyKind, cache_mb: usize, p: usize, code: CodeSpec) -> ExperimentConfig {
    ExperimentConfig::builder()
        .code(code)
        .p(p)
        .policy(policy)
        .cache_mb(cache_mb)
        .stripes(1024)
        .error_count(192)
        .workers(32)
        .gen_threads(1)
        .build()
        .expect("shape-test configuration is valid")
}

/// Fig. 8's headline: at a limited cache size, FBF's hit ratio beats every
/// baseline.
#[test]
fn fbf_hit_ratio_dominates_at_limited_cache() {
    let cache_mb = 16; // well below the plateau for p = 11 at 32 workers
    let fbf = run_experiment(&cfg(PolicyKind::Fbf, cache_mb, 11, CodeSpec::Tip)).unwrap();
    for baseline in PolicyKind::BASELINES {
        let base = run_experiment(&cfg(baseline, cache_mb, 11, CodeSpec::Tip)).unwrap();
        assert!(
            fbf.hit_ratio > base.hit_ratio,
            "FBF {:.4} must beat {} {:.4}",
            fbf.hit_ratio,
            baseline.name(),
            base.hit_ratio
        );
    }
}

/// Fig. 8's plateau: hit ratio rises with cache size and stabilises; all
/// policies converge at large cache.
#[test]
fn hit_ratio_monotone_and_convergent() {
    let big = 2048;
    let mut plateau = Vec::new();
    for policy in PolicyKind::ALL {
        let small = run_experiment(&cfg(policy, 4, 7, CodeSpec::Tip)).unwrap();
        let large = run_experiment(&cfg(policy, big, 7, CodeSpec::Tip)).unwrap();
        assert!(
            large.hit_ratio >= small.hit_ratio,
            "{}: hit ratio must not fall with cache size",
            policy.name()
        );
        plateau.push(large.hit_ratio);
    }
    let (min, max) = plateau
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    assert!(
        max - min < 1e-9,
        "policies must converge at huge cache: {plateau:?}"
    );
}

/// Fig. 9: disk reads decrease with cache size; FBF issues the fewest at
/// the limited sizes; the stable point is later for larger p.
#[test]
fn disk_reads_shape() {
    let fbf_small = run_experiment(&cfg(PolicyKind::Fbf, 16, 11, CodeSpec::Tip)).unwrap();
    let fbf_large = run_experiment(&cfg(PolicyKind::Fbf, 512, 11, CodeSpec::Tip)).unwrap();
    assert!(fbf_large.disk_reads <= fbf_small.disk_reads);

    for baseline in PolicyKind::BASELINES {
        let base = run_experiment(&cfg(baseline, 16, 11, CodeSpec::Tip)).unwrap();
        assert!(
            fbf_small.disk_reads < base.disk_reads,
            "FBF reads {} must undercut {} reads {}",
            fbf_small.disk_reads,
            baseline.name(),
            base.disk_reads
        );
    }
}

/// Fig. 10/11: FBF's response and reconstruction times at limited cache
/// beat LRU's (the paper's most-cited baseline).
#[test]
fn fbf_faster_than_lru_at_limited_cache() {
    let fbf = run_experiment(&cfg(PolicyKind::Fbf, 16, 11, CodeSpec::Tip)).unwrap();
    let lru = run_experiment(&cfg(PolicyKind::Lru, 16, 11, CodeSpec::Tip)).unwrap();
    assert!(fbf.avg_response_ms < lru.avg_response_ms);
    assert!(fbf.reconstruction_s < lru.reconstruction_s);
}

/// §IV-B-1: STAR's adjuster chunks are referenced many times, giving STAR
/// a higher hit-ratio plateau than the adjuster-free codes at equal p.
#[test]
fn star_plateau_exceeds_tip() {
    let star = run_experiment(&cfg(PolicyKind::Fbf, 2048, 7, CodeSpec::Star)).unwrap();
    let tip = run_experiment(&cfg(PolicyKind::Fbf, 2048, 7, CodeSpec::Tip)).unwrap();
    assert!(
        star.hit_ratio > tip.hit_ratio,
        "STAR {:.4} vs TIP {:.4}",
        star.hit_ratio,
        tip.hit_ratio
    );
}

/// Table IV's shape: FBF's temporal overhead is a tiny fraction of
/// reconstruction time and grows with p.
#[test]
fn overhead_small_and_growing_with_p() {
    let m5 = run_experiment(&cfg(PolicyKind::Fbf, 64, 5, CodeSpec::Tip)).unwrap();
    let m13 = run_experiment(&cfg(PolicyKind::Fbf, 64, 13, CodeSpec::Tip)).unwrap();
    assert!(
        m5.overhead_pct < 10.0,
        "overhead {}% too large",
        m5.overhead_pct
    );
    assert!(m13.overhead_pct < 10.0);
    assert!(
        m13.overhead_per_stripe_ms >= m5.overhead_per_stripe_ms,
        "larger stripes cost more to plan: {} vs {}",
        m13.overhead_per_stripe_ms,
        m5.overhead_per_stripe_ms
    );
}
