//! In-process round trip through the repair daemon's wire protocol.
//!
//! Serves on a throwaway unix socket, drives it with [`DaemonClient`]
//! exactly like `fbf client` does, and checks that a repair job's
//! metrics match a local run of the same configuration — the daemon is
//! a transport, not a different executor. Also pins the lifecycle
//! details a deployment depends on: protocol/schema versions in every
//! reply, job state transitions, chunk reads with digests, Prometheus
//! exposition, and a clean shutdown that removes the socket file.

use fbf::{
    run_experiment, DaemonClient, DaemonOptions, ExperimentConfig, Json, ServerAddr,
    METRICS_SCHEMA_VERSION,
};
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn sock_addr(tag: &str) -> ServerAddr {
    ServerAddr::Unix(
        std::env::temp_dir().join(format!("fbf-test-{tag}-{}.sock", std::process::id())),
    )
}

fn small_config_json() -> Json {
    Json::obj([
        ("chunk_kb", Json::Num(1.0)),
        ("cache_mb", Json::Num(1.0)),
        ("stripes", Json::Num(128.0)),
        ("errors", Json::Num(32.0)),
        ("workers", Json::Num(8.0)),
        ("gen_threads", Json::Num(1.0)),
    ])
}

fn small_config() -> ExperimentConfig {
    ExperimentConfig::builder()
        .chunk_kb(1)
        .cache_mb(1)
        .stripes(128)
        .error_count(32)
        .workers(8)
        .gen_threads(1)
        .obs(true)
        .build()
        .unwrap()
}

/// Poll `status` until the job settles, with a wall-clock guard so a
/// daemon bug fails the test instead of hanging it.
fn wait_done(client: &mut DaemonClient, job: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client
            .call(&Json::obj([
                ("cmd", Json::Str("status".into())),
                ("job", Json::Num(job as f64)),
            ]))
            .expect("status call");
        match status.get("state").and_then(Json::as_str) {
            Some("done") | Some("failed") => return status,
            Some(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            other => panic!("job {job} stuck or malformed: {other:?}"),
        }
    }
}

#[test]
fn repair_over_the_wire_matches_a_local_run() {
    let addr = sock_addr("roundtrip");
    let handle = fbf::serve(
        &addr,
        DaemonOptions {
            workers: 2,
            ..Default::default()
        },
    )
    .expect("serve");
    let mut client = DaemonClient::connect(&addr).expect("connect");

    // Ping: protocol + schema versions are in every reply.
    let pong = client
        .call(&Json::obj([("cmd", Json::Str("ping".into()))]))
        .expect("ping");
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        pong.get("schema_version").and_then(Json::as_u64),
        Some(METRICS_SCHEMA_VERSION)
    );

    // Submit a sim-backend repair and wait for it.
    let reply = client
        .call(&Json::obj([
            ("cmd", Json::Str("repair".into())),
            ("backend", Json::Str("sim".into())),
            ("config", small_config_json()),
        ]))
        .expect("repair");
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "{}",
        reply.render()
    );
    let job = reply.get("job").and_then(Json::as_u64).expect("job id");
    let status = wait_done(&mut client, job);
    assert_eq!(
        status.get("state").and_then(Json::as_str),
        Some("done"),
        "{}",
        status.render()
    );

    // The daemon is a transport: same config locally gives the same
    // deterministic counters.
    let local = run_experiment(&small_config()).expect("local run");
    let metrics = status.get("metrics").expect("done status carries metrics");
    assert_eq!(
        metrics.get("disk_reads").and_then(Json::as_u64),
        Some(local.disk_reads)
    );
    assert_eq!(
        metrics.get("chunks_recovered").and_then(Json::as_u64),
        Some(local.chunks_recovered as u64)
    );
    assert_eq!(
        metrics.get("schema_version").and_then(Json::as_u64),
        Some(METRICS_SCHEMA_VERSION)
    );

    // The sim job retains its backend: chunk reads come back with a
    // digest and a consistent length.
    let read = client
        .call(&Json::obj([
            ("cmd", Json::Str("read".into())),
            ("job", Json::Num(job as f64)),
            ("stripe", Json::Num(0.0)),
            ("row", Json::Num(0.0)),
            ("col", Json::Num(0.0)),
        ]))
        .expect("read");
    assert_eq!(
        read.get("ok").and_then(Json::as_bool),
        Some(true),
        "{}",
        read.render()
    );
    assert_eq!(read.get("len").and_then(Json::as_u64), Some(1024));
    let digest = read.get("fnv1a").and_then(Json::as_str).expect("digest");
    assert_eq!(digest.len(), 16, "fixed-width hex digest, got {digest}");

    // Jobs listing knows about it; metrics exposition parses as text.
    let jobs = client
        .call(&Json::obj([("cmd", Json::Str("jobs".into()))]))
        .expect("jobs");
    assert_eq!(
        jobs.get("jobs").and_then(Json::as_arr).map(<[Json]>::len),
        Some(1)
    );
    let prom = client
        .call(&Json::obj([("cmd", Json::Str("metrics".into()))]))
        .expect("metrics");
    let text = prom
        .get("prometheus")
        .and_then(Json::as_str)
        .expect("prom text");
    assert!(text.contains("fbf_disk_reads_total"), "{text}");

    // Unknown config keys are rejected, not silently defaulted.
    let bad = client
        .call(&Json::obj([
            ("cmd", Json::Str("repair".into())),
            ("backend", Json::Str("sim".into())),
            ("config", Json::obj([("cache_gb", Json::Num(1.0))])),
        ]))
        .expect("bad repair transport");
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));

    // Shutdown: daemon acks, the accept loop drains, the socket file
    // disappears with it.
    let ack = client
        .call(&Json::obj([("cmd", Json::Str("shutdown".into()))]))
        .expect("shutdown");
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    handle.wait();
    if let ServerAddr::Unix(path) = &addr {
        assert!(!path.exists(), "socket file must be cleaned up");
    }
}

/// `Write` sink whose bytes stay inspectable after the writer is
/// consumed by [`fbf::obs::TraceWriter::from_writer`].
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn repair_spans_reassemble_into_one_rooted_trace_tree() {
    // Capture the process-wide event stream before serving: the daemon
    // sees a subscriber already installed and skips its own bridge, so
    // every span of the repair lands in this buffer.
    let buf = SharedBuf::default();
    fbf::obs::install(Arc::new(fbf::obs::TraceWriter::from_writer(Box::new(
        buf.clone(),
    ))));
    let addr = sock_addr("tracetree");
    let handle = fbf::serve(
        &addr,
        DaemonOptions {
            workers: 1,
            ..Default::default()
        },
    )
    .expect("serve");
    let mut client = DaemonClient::connect(&addr).expect("connect");

    // Stamp the request with a client-minted trace id; the daemon must
    // adopt it (and echo it) rather than minting its own.
    let trace_id = 424_242u64;
    let reply = client
        .call(&Json::obj([
            ("cmd", Json::Str("repair".into())),
            ("config", small_config_json()),
            ("trace_id", Json::Num(trace_id as f64)),
        ]))
        .expect("repair");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        reply.get("trace").and_then(Json::as_u64),
        Some(trace_id),
        "daemon adopts the request's trace id: {}",
        reply.render()
    );
    let job = reply.get("job").and_then(Json::as_u64).expect("job id");
    let status = wait_done(&mut client, job);
    assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));

    let _ = client.call(&Json::obj([("cmd", Json::Str("shutdown".into()))]));
    handle.wait();
    fbf::obs::uninstall();

    // Reassemble the request's causal tree from the JSONL stream.
    let text = String::from_utf8(buf.0.lock().unwrap().clone()).expect("trace is UTF-8");
    let arg = |ev: &Json, key: &str| {
        ev.get("args")
            .and_then(|a| a.get(key))
            .and_then(Json::as_u64)
    };
    let mut spans = std::collections::BTreeMap::new(); // span_id -> (name, parent_id)
    let mut points = Vec::new(); // (name, parent_id) of instants/counters
    let mut flow_opens = std::collections::BTreeMap::new(); // flow id -> count of `s`
    let mut flow_steps = 0usize;
    for line in text.lines() {
        let ev = Json::parse(line).unwrap_or_else(|e| panic!("bad trace line: {e}: {line}"));
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        if ph == "s" || ph == "t" {
            if arg(&ev, "trace_id") == Some(trace_id) {
                let id = ev.get("id").and_then(Json::as_u64).expect("flow id");
                if ph == "s" {
                    *flow_opens.entry(id).or_insert(0u32) += 1;
                } else {
                    flow_steps += 1;
                }
            }
            continue;
        }
        if arg(&ev, "trace_id") != Some(trace_id) {
            continue;
        }
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let parent = arg(&ev, "parent_id").unwrap_or(0);
        match ph {
            "X" => {
                let span = arg(&ev, "span_id").expect("spans carry span_id");
                assert!(
                    spans.insert(span, (name, parent)).is_none(),
                    "span ids are unique within a trace"
                );
            }
            "i" | "C" => points.push((name, parent)),
            other => panic!("unexpected phase {other:?} inside a trace: {line}"),
        }
    }

    // Exactly one root — the daemon's request span — and every other
    // span (and every point event) hangs off a resolvable parent.
    let roots: Vec<_> = spans
        .iter()
        .filter(|(_, (_, parent))| *parent == 0)
        .collect();
    assert_eq!(roots.len(), 1, "one root per request, got {roots:?}");
    assert_eq!(roots[0].1 .0, "repair", "the root is the daemon span");
    assert!(
        spans.len() >= 3,
        "plan and simulate spans nest under the root: {spans:?}"
    );
    for (span, (name, parent)) in &spans {
        if *parent != 0 {
            assert!(
                spans.contains_key(parent),
                "span {span} ({name}) has unresolvable parent {parent}"
            );
        }
    }
    for (name, parent) in &points {
        assert!(
            *parent != 0 && spans.contains_key(parent),
            "point event {name} must attach to a span of its trace"
        );
    }
    // Flow records agree with the tree: every span opened its flow
    // exactly once, and each non-root span stepped its parent's flow.
    for span in spans.keys() {
        assert_eq!(flow_opens.get(span), Some(&1), "span {span} opens one flow");
    }
    assert_eq!(
        flow_steps,
        spans.len() - 1,
        "one parent step per child span"
    );
}

#[test]
fn daemon_rejects_malformed_and_oversized_requests_gracefully() {
    let addr = sock_addr("reject");
    let handle = fbf::serve(
        &addr,
        DaemonOptions {
            workers: 1,
            ..Default::default()
        },
    )
    .expect("serve");
    let mut client = DaemonClient::connect(&addr).expect("connect");

    // Unknown command: structured error, connection stays usable.
    let err = client
        .call(&Json::obj([("cmd", Json::Str("frobnicate".into()))]))
        .expect("unknown cmd transport");
    assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
    assert!(err.get("error").and_then(Json::as_str).is_some());
    let pong = client
        .call(&Json::obj([("cmd", Json::Str("ping".into()))]))
        .expect("connection survives an error reply");
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));

    // status for a job that never existed.
    let missing = client
        .call(&Json::obj([
            ("cmd", Json::Str("status".into())),
            ("job", Json::Num(999.0)),
        ]))
        .expect("missing job transport");
    assert_eq!(missing.get("ok").and_then(Json::as_bool), Some(false));

    let _ = client.call(&Json::obj([("cmd", Json::Str("shutdown".into()))]));
    handle.wait();
}

#[test]
fn retention_cap_evicts_the_oldest_resident_backend() {
    let addr = sock_addr("retain");
    let handle = fbf::serve(
        &addr,
        DaemonOptions {
            workers: 1,
            retain: 1,
        },
    )
    .expect("serve");
    let mut client = DaemonClient::connect(&addr).expect("connect");

    // Two sim-backend repairs: both retain a backend on completion, but
    // with `retain: 1` the first job's backend must be evicted when the
    // second finishes.
    let mut jobs = Vec::new();
    for seed in [1u64, 2] {
        let cfg = Json::obj([
            ("chunk_kb", Json::Num(1.0)),
            ("cache_mb", Json::Num(1.0)),
            ("stripes", Json::Num(128.0)),
            ("errors", Json::Num(32.0)),
            ("workers", Json::Num(8.0)),
            ("gen_threads", Json::Num(1.0)),
            ("seed", Json::Num(seed as f64)),
        ]);
        let reply = client
            .call(&Json::obj([
                ("cmd", Json::Str("repair".into())),
                ("backend", Json::Str("sim".into())),
                ("config", cfg),
            ]))
            .expect("repair");
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "{}",
            reply.render()
        );
        jobs.push(reply.get("job").and_then(Json::as_u64).expect("job id"));
    }
    for &job in &jobs {
        let status = wait_done(&mut client, job);
        assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
    }

    let read = |client: &mut DaemonClient, job: u64| {
        client
            .call(&Json::obj([
                ("cmd", Json::Str("read".into())),
                ("job", Json::Num(job as f64)),
                ("stripe", Json::Num(0.0)),
                ("row", Json::Num(0.0)),
                ("col", Json::Num(0.0)),
            ]))
            .expect("read")
    };
    // Oldest job: backend gone, and the error says why (eviction, not a
    // missing job or a never-retained backend).
    let evicted = read(&mut client, jobs[0]);
    assert_eq!(
        evicted.get("ok").and_then(Json::as_bool),
        Some(false),
        "{}",
        evicted.render()
    );
    let msg = evicted.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(msg.contains("evicted"), "error names the eviction: {msg}");
    // Newest job: still resident and readable.
    let live = read(&mut client, jobs[1]);
    assert_eq!(
        live.get("ok").and_then(Json::as_bool),
        Some(true),
        "{}",
        live.render()
    );

    // The leak-check gauge agrees: exactly one backend is resident.
    let prom = client
        .call(&Json::obj([("cmd", Json::Str("metrics".into()))]))
        .expect("metrics");
    let text = prom
        .get("prometheus")
        .and_then(Json::as_str)
        .expect("prom text");
    assert!(
        text.lines().any(|l| l.trim() == "fbf_backends_retained 1"),
        "gauge must report one resident backend:\n{text}"
    );

    let _ = client.call(&Json::obj([("cmd", Json::Str("shutdown".into()))]));
    handle.wait();
}

#[test]
fn panicking_job_fails_cleanly_without_killing_the_worker() {
    let addr = sock_addr("panic");
    let handle = fbf::serve(
        &addr,
        DaemonOptions {
            workers: 1,
            ..Default::default()
        },
    )
    .expect("serve");
    let mut client = DaemonClient::connect(&addr).expect("connect");

    // The debug-only `panic` backend makes the worker thread panic
    // mid-job. The daemon must convert that into a `failed` job instead
    // of silently leaking a `running` entry (gauge drift) and a dead
    // worker.
    let reply = client
        .call(&Json::obj([
            ("cmd", Json::Str("repair".into())),
            ("backend", Json::Str("panic".into())),
            ("config", small_config_json()),
        ]))
        .expect("repair");
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "{}",
        reply.render()
    );
    let job = reply.get("job").and_then(Json::as_u64).expect("job id");
    let status = wait_done(&mut client, job);
    assert_eq!(
        status.get("state").and_then(Json::as_str),
        Some("failed"),
        "{}",
        status.render()
    );
    let msg = status.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(msg.contains("panicked"), "error names the panic: {msg}");

    // The single worker survived: a normal job still completes.
    let reply = client
        .call(&Json::obj([
            ("cmd", Json::Str("repair".into())),
            ("backend", Json::Str("sim".into())),
            ("config", small_config_json()),
        ]))
        .expect("repair after panic");
    let job = reply.get("job").and_then(Json::as_u64).expect("job id");
    let status = wait_done(&mut client, job);
    assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));

    // No gauge drift: the panicked job counts as failed, not running.
    let prom = client
        .call(&Json::obj([("cmd", Json::Str("metrics".into()))]))
        .expect("metrics");
    let text = prom
        .get("prometheus")
        .and_then(Json::as_str)
        .expect("prom text");
    for line in [
        "fbf_jobs_total{state=\"failed\"} 1",
        "fbf_jobs_total{state=\"running\"} 0",
    ] {
        assert!(
            text.lines().any(|l| l.trim() == line),
            "expected `{line}` in:\n{text}"
        );
    }

    let _ = client.call(&Json::obj([("cmd", Json::Str("shutdown".into()))]));
    handle.wait();
}

#[test]
fn rebuild_job_over_the_wire_reports_the_campaign() {
    let addr = sock_addr("rebuild");
    let handle = fbf::serve(
        &addr,
        DaemonOptions {
            workers: 1,
            ..Default::default()
        },
    )
    .expect("serve");
    let mut client = DaemonClient::connect(&addr).expect("connect");

    let reply = client
        .call(&Json::obj([
            ("cmd", Json::Str("rebuild".into())),
            ("config", small_config_json()),
            ("disks", Json::Num(24.0)),
            ("fairness", Json::Str("drr".into())),
        ]))
        .expect("rebuild");
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "{}",
        reply.render()
    );
    let job = reply.get("job").and_then(Json::as_u64).expect("job id");
    let status = wait_done(&mut client, job);
    assert_eq!(
        status.get("state").and_then(Json::as_str),
        Some("done"),
        "{}",
        status.render()
    );
    let rebuild = status
        .get("rebuild")
        .expect("done rebuild status carries the outcome");
    assert_eq!(
        rebuild.get("placement").and_then(Json::as_str),
        Some("declustered")
    );
    assert_eq!(
        rebuild.get("fairness").and_then(Json::as_str),
        Some("deficit-weighted")
    );
    assert!(rebuild.get("waves").and_then(Json::as_u64).unwrap_or(0) >= 1);
    assert!(rebuild.get("rebuild_skew").is_some(), "{}", status.render());
    let affected = rebuild
        .get("stripes_affected")
        .and_then(Json::as_u64)
        .expect("affected count");
    assert_eq!(
        rebuild.get("stripes_rebuilt").and_then(Json::as_u64),
        Some(affected),
        "no faults: every affected stripe is rebuilt"
    );

    // Bad placement names are rejected up front, not queued.
    let bad = client
        .call(&Json::obj([
            ("cmd", Json::Str("rebuild".into())),
            ("config", small_config_json()),
            ("placement", Json::Str("striped".into())),
        ]))
        .expect("bad rebuild transport");
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));

    let _ = client.call(&Json::obj([("cmd", Json::Str("shutdown".into()))]));
    handle.wait();
}
