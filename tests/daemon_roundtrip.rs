//! In-process round trip through the repair daemon's wire protocol.
//!
//! Serves on a throwaway unix socket, drives it with [`DaemonClient`]
//! exactly like `fbf client` does, and checks that a repair job's
//! metrics match a local run of the same configuration — the daemon is
//! a transport, not a different executor. Also pins the lifecycle
//! details a deployment depends on: protocol/schema versions in every
//! reply, job state transitions, chunk reads with digests, Prometheus
//! exposition, and a clean shutdown that removes the socket file.

use fbf::{
    run_experiment, DaemonClient, DaemonOptions, ExperimentConfig, Json, ServerAddr,
    METRICS_SCHEMA_VERSION,
};
use std::time::{Duration, Instant};

fn sock_addr(tag: &str) -> ServerAddr {
    ServerAddr::Unix(
        std::env::temp_dir().join(format!("fbf-test-{tag}-{}.sock", std::process::id())),
    )
}

fn small_config_json() -> Json {
    Json::obj([
        ("chunk_kb", Json::Num(1.0)),
        ("cache_mb", Json::Num(1.0)),
        ("stripes", Json::Num(128.0)),
        ("errors", Json::Num(32.0)),
        ("workers", Json::Num(8.0)),
        ("gen_threads", Json::Num(1.0)),
    ])
}

fn small_config() -> ExperimentConfig {
    ExperimentConfig::builder()
        .chunk_kb(1)
        .cache_mb(1)
        .stripes(128)
        .error_count(32)
        .workers(8)
        .gen_threads(1)
        .obs(true)
        .build()
        .unwrap()
}

/// Poll `status` until the job settles, with a wall-clock guard so a
/// daemon bug fails the test instead of hanging it.
fn wait_done(client: &mut DaemonClient, job: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client
            .call(&Json::obj([
                ("cmd", Json::Str("status".into())),
                ("job", Json::Num(job as f64)),
            ]))
            .expect("status call");
        match status.get("state").and_then(Json::as_str) {
            Some("done") | Some("failed") => return status,
            Some(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            other => panic!("job {job} stuck or malformed: {other:?}"),
        }
    }
}

#[test]
fn repair_over_the_wire_matches_a_local_run() {
    let addr = sock_addr("roundtrip");
    let handle = fbf::serve(&addr, DaemonOptions { workers: 2 }).expect("serve");
    let mut client = DaemonClient::connect(&addr).expect("connect");

    // Ping: protocol + schema versions are in every reply.
    let pong = client
        .call(&Json::obj([("cmd", Json::Str("ping".into()))]))
        .expect("ping");
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        pong.get("schema_version").and_then(Json::as_u64),
        Some(METRICS_SCHEMA_VERSION)
    );

    // Submit a sim-backend repair and wait for it.
    let reply = client
        .call(&Json::obj([
            ("cmd", Json::Str("repair".into())),
            ("backend", Json::Str("sim".into())),
            ("config", small_config_json()),
        ]))
        .expect("repair");
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "{}",
        reply.render()
    );
    let job = reply.get("job").and_then(Json::as_u64).expect("job id");
    let status = wait_done(&mut client, job);
    assert_eq!(
        status.get("state").and_then(Json::as_str),
        Some("done"),
        "{}",
        status.render()
    );

    // The daemon is a transport: same config locally gives the same
    // deterministic counters.
    let local = run_experiment(&small_config()).expect("local run");
    let metrics = status.get("metrics").expect("done status carries metrics");
    assert_eq!(
        metrics.get("disk_reads").and_then(Json::as_u64),
        Some(local.disk_reads)
    );
    assert_eq!(
        metrics.get("chunks_recovered").and_then(Json::as_u64),
        Some(local.chunks_recovered as u64)
    );
    assert_eq!(
        metrics.get("schema_version").and_then(Json::as_u64),
        Some(METRICS_SCHEMA_VERSION)
    );

    // The sim job retains its backend: chunk reads come back with a
    // digest and a consistent length.
    let read = client
        .call(&Json::obj([
            ("cmd", Json::Str("read".into())),
            ("job", Json::Num(job as f64)),
            ("stripe", Json::Num(0.0)),
            ("row", Json::Num(0.0)),
            ("col", Json::Num(0.0)),
        ]))
        .expect("read");
    assert_eq!(
        read.get("ok").and_then(Json::as_bool),
        Some(true),
        "{}",
        read.render()
    );
    assert_eq!(read.get("len").and_then(Json::as_u64), Some(1024));
    let digest = read.get("fnv1a").and_then(Json::as_str).expect("digest");
    assert_eq!(digest.len(), 16, "fixed-width hex digest, got {digest}");

    // Jobs listing knows about it; metrics exposition parses as text.
    let jobs = client
        .call(&Json::obj([("cmd", Json::Str("jobs".into()))]))
        .expect("jobs");
    assert_eq!(
        jobs.get("jobs").and_then(Json::as_arr).map(<[Json]>::len),
        Some(1)
    );
    let prom = client
        .call(&Json::obj([("cmd", Json::Str("metrics".into()))]))
        .expect("metrics");
    let text = prom
        .get("prometheus")
        .and_then(Json::as_str)
        .expect("prom text");
    assert!(text.contains("fbf_disk_reads_total"), "{text}");

    // Unknown config keys are rejected, not silently defaulted.
    let bad = client
        .call(&Json::obj([
            ("cmd", Json::Str("repair".into())),
            ("backend", Json::Str("sim".into())),
            ("config", Json::obj([("cache_gb", Json::Num(1.0))])),
        ]))
        .expect("bad repair transport");
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));

    // Shutdown: daemon acks, the accept loop drains, the socket file
    // disappears with it.
    let ack = client
        .call(&Json::obj([("cmd", Json::Str("shutdown".into()))]))
        .expect("shutdown");
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    handle.wait();
    if let ServerAddr::Unix(path) = &addr {
        assert!(!path.exists(), "socket file must be cleaned up");
    }
}

#[test]
fn daemon_rejects_malformed_and_oversized_requests_gracefully() {
    let addr = sock_addr("reject");
    let handle = fbf::serve(&addr, DaemonOptions { workers: 1 }).expect("serve");
    let mut client = DaemonClient::connect(&addr).expect("connect");

    // Unknown command: structured error, connection stays usable.
    let err = client
        .call(&Json::obj([("cmd", Json::Str("frobnicate".into()))]))
        .expect("unknown cmd transport");
    assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
    assert!(err.get("error").and_then(Json::as_str).is_some());
    let pong = client
        .call(&Json::obj([("cmd", Json::Str("ping".into()))]))
        .expect("connection survives an error reply");
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));

    // status for a job that never existed.
    let missing = client
        .call(&Json::obj([
            ("cmd", Json::Str("status".into())),
            ("job", Json::Num(999.0)),
        ]))
        .expect("missing job transport");
    assert_eq!(missing.get("ok").and_then(Json::as_bool), Some(false));

    let _ = client.call(&Json::obj([("cmd", Json::Str("shutdown".into()))]));
    handle.wait();
}
