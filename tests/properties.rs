//! Cross-crate property tests (proptest): random damage always recovers,
//! cache invariants hold under arbitrary traces, priorities agree with
//! brute force.

use fbf::cache::{key, PolicyKind};
use fbf::codes::encode::encode;
use fbf::recovery::{apply_scheme, scheme::generate, PartialStripeError, SchemeKind};
use fbf::{Cell, CodeSpec, Stripe, StripeCode};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = CodeSpec> {
    prop_oneof![
        Just(CodeSpec::Tip),
        Just(CodeSpec::Hdd1),
        Just(CodeSpec::TripleStar),
        Just(CodeSpec::Star),
    ]
}

fn kind_strategy() -> impl Strategy<Value = SchemeKind> {
    prop_oneof![
        Just(SchemeKind::Typical),
        Just(SchemeKind::FbfCycling),
        Just(SchemeKind::Greedy),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any single-column partial error, on any code, with any scheme kind,
    /// recovers the exact lost bytes.
    #[test]
    fn any_partial_error_recovers(
        spec in spec_strategy(),
        kind in kind_strategy(),
        p_idx in 0usize..2,
        col in 0usize..16,
        first in 0usize..12,
        len in 1usize..12,
        seed in 0u64..1000,
    ) {
        let p = [5, 7][p_idx];
        let code = StripeCode::build(spec, p).unwrap();
        let col = col % code.cols();
        let first = first % code.rows();
        let len = 1 + (len - 1) % (code.rows() - first);

        let mut pristine = Stripe::patterned(code.layout(), 16 + (seed % 48) as usize);
        encode(&code, &mut pristine).unwrap();

        let error = PartialStripeError::new(&code, 0, col, first, len).unwrap();
        let scheme = generate(&code, &error, kind).unwrap();
        let mut damaged = pristine.clone();
        for cell in error.cells() {
            damaged.erase(code.layout(), cell);
        }
        apply_scheme(&code, &mut damaged, &scheme).unwrap();
        for cell in error.cells() {
            prop_assert_eq!(
                damaged.get(code.layout(), cell),
                pristine.get(code.layout(), cell)
            );
        }
    }

    /// Cache invariants under random traces, for every policy:
    /// * residency never exceeds capacity;
    /// * an access hits iff `contains` said so beforehand;
    /// * after an insert, the key is resident (capacity > 0);
    /// * evicted keys are no longer resident.
    #[test]
    fn cache_invariants_random_trace(
        kind_idx in 0usize..5,
        capacity in 0usize..24,
        ops in proptest::collection::vec((0u32..4, 0usize..6, 0usize..8, 1u8..4), 1..400),
    ) {
        let kind = PolicyKind::ALL[kind_idx];
        let mut policy = kind.build(capacity);
        for (stripe, row, col, prio) in ops {
            let k = key(stripe, row, col);
            let resident_before = policy.contains(&k);
            let hit = policy.on_access(k);
            prop_assert_eq!(hit, resident_before, "access outcome vs contains");
            if !hit {
                let evicted = policy.on_insert(k, prio).evicted();
                if let Some(v) = evicted {
                    prop_assert!(!policy.contains(&v), "evicted key still resident");
                    prop_assert_ne!(v, k);
                }
                if capacity > 0 {
                    prop_assert!(policy.contains(&k), "inserted key not resident");
                }
            }
            prop_assert!(policy.len() <= capacity, "over capacity");
        }
    }

    /// Scheme read sets never include the repair target or (unrecovered)
    /// lost cells, and always carry at least one parity-chain cell.
    #[test]
    fn scheme_read_sets_are_well_formed(
        spec in spec_strategy(),
        kind in kind_strategy(),
        col in 0usize..16,
        len in 1usize..10,
    ) {
        let code = StripeCode::build(spec, 11).unwrap();
        let col = col % code.cols();
        let len = 1 + (len - 1) % (code.rows() - 1);
        let error = PartialStripeError::new(&code, 0, col, 0, len).unwrap();
        let scheme = generate(&code, &error, kind).unwrap();
        let mut recovered: Vec<Cell> = Vec::new();
        for r in &scheme.repairs {
            prop_assert!(!r.option.reads.contains(&r.target));
            prop_assert!(!r.option.reads.is_empty());
            for read in &r.option.reads {
                let is_lost = error.cells().contains(read);
                prop_assert!(!is_lost || recovered.contains(read));
            }
            recovered.push(r.target);
        }
        // Every lost cell is repaired exactly once.
        let mut targets: Vec<Cell> = scheme.repairs.iter().map(|r| r.target).collect();
        targets.sort_unstable();
        let mut lost = error.cells();
        lost.sort_unstable();
        prop_assert_eq!(targets, lost);
    }
}
