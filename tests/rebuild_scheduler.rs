//! End-to-end smoke for the array-wide rebuild scheduler, through the
//! public `fbf` facade (the same path `fbf rebuild` and the daemon's
//! rebuild job take).
//!
//! Pins the two contracts the benchmark and CI e2e lean on:
//!
//! * **Determinism** — a rebuild is a pure function of its spec: two
//!   runs agree on every counter, latency digest, and the rendered
//!   JSON, even with fault injection racing the repair waves.
//! * **Declustering wins** — at array scale, declustered placement
//!   strictly reduces both the max/mean rebuild-read skew and the
//!   reconstruction makespan against the clustered baseline.

use fbf::disksim::FaultPlan;
use fbf::{run_rebuild, ExperimentConfig, Fairness, Placement, RebuildSpec};

fn small_base() -> ExperimentConfig {
    ExperimentConfig::builder()
        .chunk_kb(1)
        .cache_mb(1)
        .stripes(192)
        .error_count(32)
        .workers(16)
        .gen_threads(1)
        .build()
        .unwrap()
}

fn spec(placement: Placement) -> RebuildSpec {
    let mut base = small_base();
    // Media errors race the rebuild waves; the merged report must still
    // be reproducible bit for bit.
    base.faults = FaultPlan {
        media_per_mille: 5,
        seed: 7,
        ..FaultPlan::none()
    };
    let mut spec = RebuildSpec::new(base, 48);
    spec.placement = placement;
    spec.fairness = Fairness::DeficitWeighted;
    spec.app_reads_per_wave = 64;
    spec
}

#[test]
fn rebuild_under_faults_is_deterministic_run_to_run() {
    let spec = spec(Placement::Declustered { seed: 0x5EED });
    let a = run_rebuild(&spec).expect("first run");
    let b = run_rebuild(&spec).expect("second run");

    assert_eq!(a.waves, b.waves);
    assert_eq!(a.stripes_affected, b.stripes_affected);
    assert_eq!(a.stripes_rebuilt, b.stripes_rebuilt);
    assert_eq!(a.failed_stripes, b.failed_stripes);
    assert_eq!(a.report.makespan, b.report.makespan);
    assert_eq!(a.report.disk_reads, b.report.disk_reads);
    assert_eq!(a.report.disk_writes, b.report.disk_writes);
    assert_eq!(a.per_disk_rebuild_reads, b.per_disk_rebuild_reads);
    assert_eq!(a.to_json(), b.to_json(), "rendered outcome must be stable");
}

#[test]
fn declustering_beats_clustering_at_array_scale() {
    let clustered = run_rebuild(&spec(Placement::Fixed)).expect("clustered");
    let declustered =
        run_rebuild(&spec(Placement::Declustered { seed: 0x5EED })).expect("declustered");

    // Clustered placement drags every stripe through the failed disk's
    // column; declustering leaves most stripes untouched and spreads
    // the rest over all survivors.
    assert_eq!(clustered.stripes_affected, 192);
    assert!(declustered.stripes_affected < clustered.stripes_affected);
    assert!(
        declustered.rebuild_skew < clustered.rebuild_skew,
        "declustered skew {} must beat clustered {}",
        declustered.rebuild_skew,
        clustered.rebuild_skew
    );
    assert!(
        declustered.reconstruction_s < clustered.reconstruction_s,
        "declustered rebuild {}s must finish before clustered {}s",
        declustered.reconstruction_s,
        clustered.reconstruction_s
    );
    // Foreground traffic ran alongside both rebuilds and produced a
    // tail-latency reading.
    assert!(clustered.app_p99_ms.is_some());
    assert!(declustered.app_p99_ms.is_some());
}
