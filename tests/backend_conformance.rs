//! Differential conformance suite for [`StorageBackend`] implementations.
//!
//! The backend contract (DESIGN.md §12) promises that a repair campaign
//! is backend-agnostic: the engine's cache decisions drive the same
//! chunk reads and writes whether the bytes live in the in-memory
//! simulator or in real per-disk files. These tests pin that promise
//! end to end through the public facade:
//!
//! * identical `Metrics` from the engine, `SimBackend`, and
//!   `FileBackend` for the same planned campaign, and
//! * byte-identical repaired payloads — every damaged chunk reads back
//!   the same bytes from both backends, equal to a freshly re-encoded
//!   pristine stripe.

use fbf::core::PlannedCampaign;
use fbf::{
    file_backend_for, run_experiment, run_planned_on, sim_backend_for, ChunkId, ExperimentConfig,
    FaultPlan, PlanSource, PolicyKind, StorageBackend, StripeCode,
};
use std::path::PathBuf;

fn small(policy: PolicyKind) -> ExperimentConfig {
    ExperimentConfig::builder()
        .policy(policy)
        .cache_mb(1)
        .chunk_kb(1)
        .stripes(128)
        .error_count(48)
        .workers(8)
        .gen_threads(1)
        .build()
        .unwrap()
}

/// A unique scratch directory under the system temp dir; removed by
/// `Drop` so a failing assertion still cleans up.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("fbf-conformance-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn sim_and_file_backends_agree_with_the_engine() {
    for policy in [PolicyKind::Fbf, PolicyKind::Lru] {
        let cfg = small(policy);
        let engine = run_experiment(&cfg).unwrap();
        let plan = PlannedCampaign::cold(&cfg).unwrap();

        let mut sim = sim_backend_for(&cfg, &plan).unwrap();
        let sim_metrics = run_planned_on(&cfg, &plan, PlanSource::Cold, &mut sim).unwrap();

        let scratch = Scratch::new(&format!("agree-{policy:?}"));
        let mut file = file_backend_for(&cfg, &plan, &scratch.0).unwrap();
        let file_metrics = run_planned_on(&cfg, &plan, PlanSource::Cold, &mut file).unwrap();

        for (label, m) in [("sim", &sim_metrics), ("file", &file_metrics)] {
            assert_eq!(m.disk_reads, engine.disk_reads, "{policy:?}/{label}");
            assert_eq!(m.disk_writes, engine.disk_writes, "{policy:?}/{label}");
            assert_eq!(m.hit_ratio, engine.hit_ratio, "{policy:?}/{label}");
            assert_eq!(
                m.stripes_repaired, engine.stripes_repaired,
                "{policy:?}/{label}"
            );
            assert_eq!(
                m.chunks_recovered, engine.chunks_recovered,
                "{policy:?}/{label}"
            );
        }
    }
}

/// The batch size is a pure throughput knob: every `decode_batch`
/// setting must produce the same `Metrics` as the engine, because the
/// per-cache-slice access order is unchanged — batches span *distinct*
/// partitioned slices and rounds preserve intra-scheme repair order.
#[test]
fn decode_batch_sizes_all_match_the_engine() {
    for policy in [PolicyKind::Fbf, PolicyKind::Lru] {
        let engine = run_experiment(&small(policy)).unwrap();
        for batch in [1usize, 3, 8, 64] {
            let cfg = ExperimentConfig {
                decode_batch: batch,
                ..small(policy)
            };
            let plan = PlannedCampaign::cold(&cfg).unwrap();
            let mut sim = sim_backend_for(&cfg, &plan).unwrap();
            let m = run_planned_on(&cfg, &plan, PlanSource::Cold, &mut sim).unwrap();
            assert_eq!(m.disk_reads, engine.disk_reads, "{policy:?}/batch={batch}");
            assert_eq!(
                m.disk_writes, engine.disk_writes,
                "{policy:?}/batch={batch}"
            );
            assert_eq!(m.hit_ratio, engine.hit_ratio, "{policy:?}/batch={batch}");
            assert_eq!(
                m.stripes_repaired, engine.stripes_repaired,
                "{policy:?}/batch={batch}"
            );
            assert_eq!(
                m.chunks_recovered, engine.chunks_recovered,
                "{policy:?}/batch={batch}"
            );
        }
    }
}

/// Batch-size invariance must survive fault injection: abandoned
/// schemes, retry accounting, and skipped-op counts are tracked
/// per-scheme inside a round-based loop and must not shift with the
/// batch size. The oracle here is the batch-of-1 *backend* run, not the
/// engine — under faults the data plane deliberately stays single-pass
/// (a hard failure abandons the stripe) while the engine re-plans on its
/// virtual clock, so their read counts legitimately differ (see the
/// `backend_run` module docs).
#[test]
fn decode_batch_sizes_agree_under_faults() {
    let faulted = |batch: usize| ExperimentConfig {
        decode_batch: batch,
        faults: FaultPlan {
            seed: 7,
            media_per_mille: 12,
            transient_per_mille: 60,
            ..FaultPlan::none()
        },
        ..small(PolicyKind::Fbf)
    };
    let run = |batch: usize| {
        let cfg = faulted(batch);
        let plan = PlannedCampaign::cold(&cfg).unwrap();
        let mut sim = sim_backend_for(&cfg, &plan).unwrap();
        run_planned_on(&cfg, &plan, PlanSource::Cold, &mut sim).unwrap()
    };
    let oracle = run(1);
    assert!(
        oracle.faults.media_errors + oracle.faults.transient_faults > 0,
        "fault plan injected nothing; the test is vacuous"
    );
    assert!(
        oracle.faults.skipped_ops > 0,
        "no stripe was abandoned; the abandonment accounting is untested"
    );
    for batch in [3usize, 8, 64] {
        let m = run(batch);
        assert_eq!(m.disk_reads, oracle.disk_reads, "batch={batch}");
        assert_eq!(m.disk_writes, oracle.disk_writes, "batch={batch}");
        assert_eq!(m.hit_ratio, oracle.hit_ratio, "batch={batch}");
        assert_eq!(m.stripes_repaired, oracle.stripes_repaired, "batch={batch}");
        assert_eq!(m.chunks_recovered, oracle.chunks_recovered, "batch={batch}");
        assert_eq!(
            m.faults.skipped_ops, oracle.faults.skipped_ops,
            "batch={batch}"
        );
        assert_eq!(
            m.faults.media_errors, oracle.faults.media_errors,
            "batch={batch}"
        );
        assert_eq!(m.faults.retries, oracle.faults.retries, "batch={batch}");
    }
}

#[test]
fn repaired_payloads_are_byte_identical_across_backends() {
    let cfg = small(PolicyKind::Fbf);
    let plan = PlannedCampaign::cold(&cfg).unwrap();

    let mut sim = sim_backend_for(&cfg, &plan).unwrap();
    run_planned_on(&cfg, &plan, PlanSource::Cold, &mut sim).unwrap();

    let scratch = Scratch::new("bytes");
    let mut file = file_backend_for(&cfg, &plan, &scratch.0).unwrap();
    run_planned_on(&cfg, &plan, PlanSource::Cold, &mut file).unwrap();

    let code = StripeCode::build(cfg.code, cfg.p).unwrap();
    let chunk_bytes = cfg.chunk_bytes() as usize;
    let (mut from_sim, mut from_file) = (vec![0u8; chunk_bytes], vec![0u8; chunk_bytes]);
    let mut checked = 0usize;
    for damage in plan.errors.damage_by_stripe() {
        // The ground truth is the deterministic pre-damage content: each
        // stripe's payload is seeded by its index, then encoded.
        let mut pristine =
            fbf::Stripe::patterned_seeded(code.layout(), chunk_bytes, damage.stripe as u64);
        fbf::codes::encode::encode(&code, &mut pristine).unwrap();
        for &cell in &damage.cells {
            let chunk = ChunkId::new(damage.stripe, cell);
            assert!(sim.is_repaired(chunk), "sim left {chunk:?} unrepaired");
            assert!(file.is_repaired(chunk), "file left {chunk:?} unrepaired");
            sim.read_chunk(chunk, &mut from_sim).unwrap();
            file.read_chunk(chunk, &mut from_file).unwrap();
            let expect = &pristine.get(code.layout(), cell)[..];
            assert_eq!(&from_sim[..], expect, "sim bytes, stripe {}", damage.stripe);
            assert_eq!(
                &from_file[..],
                expect,
                "file bytes, stripe {}",
                damage.stripe
            );
            checked += 1;
        }
    }
    assert!(
        checked >= cfg.error_count,
        "campaign produced too few damaged chunks to be a meaningful check ({checked})"
    );
}

#[test]
fn file_backend_survives_reopen_with_repaired_data() {
    let cfg = small(PolicyKind::Fbf);
    let plan = PlannedCampaign::cold(&cfg).unwrap();
    let scratch = Scratch::new("reopen");
    {
        let mut file = file_backend_for(&cfg, &plan, &scratch.0).unwrap();
        run_planned_on(&cfg, &plan, PlanSource::Cold, &mut file).unwrap();
    } // dropped: everything must be on disk now

    let code = StripeCode::build(cfg.code, cfg.p).unwrap();
    let chunk_bytes = cfg.chunk_bytes() as usize;
    // After a repair, the authoritative copy of every damaged chunk
    // lives in the spare area; reopening hands `open` that set.
    let repaired: Vec<ChunkId> = plan
        .errors
        .damage_by_stripe()
        .iter()
        .flat_map(|d| d.cells.iter().map(|&cell| ChunkId::new(d.stripe, cell)))
        .collect();
    let mut reopened = fbf::FileBackend::open(
        &scratch.0,
        &code,
        chunk_bytes,
        cfg.stripes as u64,
        &repaired,
    )
    .expect("repaired array reopens");
    let mut buf = vec![0u8; chunk_bytes];
    let damage = &plan.errors.damage_by_stripe()[0];
    let mut pristine =
        fbf::Stripe::patterned_seeded(code.layout(), chunk_bytes, damage.stripe as u64);
    fbf::codes::encode::encode(&code, &mut pristine).unwrap();
    let cell = damage.cells[0];
    reopened
        .read_chunk(ChunkId::new(damage.stripe, cell), &mut buf)
        .unwrap();
    assert_eq!(&buf[..], &pristine.get(code.layout(), cell)[..]);
}
