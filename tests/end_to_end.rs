//! Cross-crate integration tests: campaigns recover real bytes, schemes
//! beat typical recovery structurally, and the whole pipeline is
//! deterministic.

use fbf::codes::encode::encode;
use fbf::recovery::{
    apply_scheme, generate_schemes_parallel, scheme::generate, PartialStripeError,
    PriorityDictionary, SchemeKind,
};
use fbf::workload::{generate_errors, parse_trace, render_trace, ErrorGenConfig};
use fbf::PolicyKind;
use fbf::{run_experiment, ExperimentConfig};
use fbf::{CodeSpec, Stripe, StripeCode};

/// A whole random campaign, applied to real stripe payloads, recovers
/// every chunk bit-for-bit — for every code.
#[test]
fn campaign_recovers_exact_bytes_all_codes() {
    for spec in CodeSpec::ALL {
        let code = StripeCode::build(spec, 7).unwrap();
        let campaign = generate_errors(&code, &ErrorGenConfig::paper_default(64, 32, 1234));
        let schemes =
            generate_schemes_parallel(&code, &campaign, SchemeKind::FbfCycling, 2).unwrap();

        // One pristine encoded stripe reused per error (payload content is
        // stripe-independent here; identity comes from the cells).
        let mut pristine = Stripe::patterned(code.layout(), 64);
        encode(&code, &mut pristine).unwrap();

        for (damage, scheme) in campaign.damage_by_stripe().iter().zip(&schemes) {
            assert_eq!(damage.stripe, scheme.stripe);
            let mut damaged = pristine.clone();
            for &cell in &damage.cells {
                damaged.erase(code.layout(), cell);
            }
            apply_scheme(&code, &mut damaged, scheme).unwrap();
            for &cell in &damage.cells {
                assert_eq!(
                    damaged.get(code.layout(), cell),
                    pristine.get(code.layout(), cell),
                    "{spec:?} stripe {} cell {cell}",
                    damage.stripe
                );
            }
        }
    }
}

/// The FBF scheme never fetches more distinct chunks than the typical
/// scheme, and usually fewer (Fig. 2's structural claim), for every error
/// shape on every code.
#[test]
fn fbf_scheme_unique_reads_never_exceed_typical() {
    for spec in CodeSpec::ALL {
        let code = StripeCode::build(spec, 11).unwrap();
        let mut strictly_better = 0;
        for col in 0..code.cols() {
            for len in 2..code.rows() {
                let e = PartialStripeError::new(&code, 0, col, 0, len).unwrap();
                let typical = generate(&code, &e, SchemeKind::Typical).unwrap();
                let fbf = generate(&code, &e, SchemeKind::FbfCycling).unwrap();
                // Same number of repairs...
                assert_eq!(typical.repairs.len(), fbf.repairs.len());
                // ...but shared chunks shrink the distinct fetch set.
                if fbf.unique_reads() < typical.unique_reads() {
                    strictly_better += 1;
                }
            }
        }
        assert!(
            strictly_better > 0,
            "{spec:?}: FBF must strictly reduce unique reads somewhere"
        );
    }
}

/// Priorities derived from a campaign match Table II against brute-force
/// share counting, campaign-wide.
#[test]
fn campaign_priorities_match_brute_force() {
    let code = StripeCode::build(CodeSpec::TripleStar, 7).unwrap();
    let campaign = generate_errors(&code, &ErrorGenConfig::paper_default(128, 64, 9));
    let schemes = generate_schemes_parallel(&code, &campaign, SchemeKind::FbfCycling, 0).unwrap();
    let dict = PriorityDictionary::from_schemes(&schemes);
    for scheme in &schemes {
        for (cell, count) in scheme.share_counts() {
            let id = fbf::codes::ChunkId::new(scheme.stripe, cell);
            let expect = match count {
                0 | 1 => 1u8,
                2 => 2,
                _ => 3,
            };
            // Dictionary may hold a higher value if another scheme shares
            // the chunk — never lower.
            assert!(dict.priority_of(&id) >= expect, "{id} count={count}");
        }
    }
}

/// The full simulated experiment is deterministic and recovers everything:
/// one spare write per lost chunk, reads bounded by the campaign's slots.
#[test]
fn simulated_experiment_is_consistent() {
    let cfg = ExperimentConfig::builder()
        .code(CodeSpec::Hdd1)
        .p(7)
        .policy(PolicyKind::Fbf)
        .cache_mb(16)
        .stripes(256)
        .error_count(64)
        .workers(16)
        .gen_threads(1)
        .build()
        .unwrap();
    let a = run_experiment(&cfg).unwrap();
    let b = run_experiment(&cfg).unwrap();
    assert_eq!(a.disk_reads, b.disk_reads);
    assert_eq!(a.cache, b.cache);
    assert_eq!(a.disk_writes as usize, a.chunks_recovered);
    assert!(a.disk_reads <= a.cache.accesses());
}

/// Error traces survive a render/parse roundtrip and replay to identical
/// schemes.
#[test]
fn trace_replay_reproduces_schemes() {
    let code = StripeCode::build(CodeSpec::Tip, 7).unwrap();
    let campaign = generate_errors(&code, &ErrorGenConfig::paper_default(100, 40, 5));
    let replayed = parse_trace(&render_trace(&campaign)).unwrap();
    assert_eq!(campaign, replayed);
    let s1 = generate_schemes_parallel(&code, &campaign, SchemeKind::FbfCycling, 1).unwrap();
    let s2 = generate_schemes_parallel(&code, &replayed, SchemeKind::FbfCycling, 1).unwrap();
    assert_eq!(s1, s2);
}

/// Every policy completes the same campaign with identical write counts —
/// the cache only changes *when* chunks are fetched, never what is
/// recovered.
#[test]
fn all_policies_recover_the_same_campaign() {
    let mut writes = Vec::new();
    for policy in PolicyKind::ALL {
        let cfg = ExperimentConfig::builder()
            .policy(policy)
            .cache_mb(8)
            .stripes(128)
            .error_count(32)
            .workers(8)
            .gen_threads(1)
            .build()
            .unwrap();
        let m = run_experiment(&cfg).unwrap();
        writes.push(m.disk_writes);
    }
    assert!(
        writes.windows(2).all(|w| w[0] == w[1]),
        "writes differ: {writes:?}"
    );
}

/// FBF generalises to two-direction RAID-6 codes (RDP, EVENODD): schemes
/// schedule, recover real bytes, and still find shared chunks.
#[test]
fn raid6_generality() {
    for spec in [CodeSpec::Rdp, CodeSpec::Evenodd] {
        let code = StripeCode::build(spec, 7).unwrap();
        let mut pristine = Stripe::patterned(code.layout(), 64);
        encode(&code, &mut pristine).unwrap();

        let error = PartialStripeError::new(&code, 0, 0, 0, code.rows() - 1).unwrap();
        let scheme = generate(&code, &error, SchemeKind::FbfCycling).unwrap();
        assert!(
            scheme.shared_savings() > 0,
            "{spec:?}: two directions still produce shared chunks"
        );
        let mut damaged = pristine.clone();
        for cell in error.cells() {
            damaged.erase(code.layout(), cell);
        }
        apply_scheme(&code, &mut damaged, &scheme).unwrap();
        for cell in error.cells() {
            assert_eq!(
                damaged.get(code.layout(), cell),
                pristine.get(code.layout(), cell)
            );
        }

        // And the full simulated pipeline runs.
        let cfg = ExperimentConfig::builder()
            .code(spec)
            .p(7)
            .policy(PolicyKind::Fbf)
            .cache_mb(16)
            .stripes(128)
            .error_count(32)
            .workers(8)
            .gen_threads(1)
            .build()
            .unwrap();
        let m = run_experiment(&cfg).unwrap();
        assert_eq!(m.disk_writes as usize, m.chunks_recovered, "{spec:?}");
    }
}

/// Multi-disk damage in one stripe (two partial errors on different
/// columns, the spatially correlated case) recovers end to end, and the
/// simulated run counts one spare write per merged lost chunk.
#[test]
fn multi_disk_stripe_damage_recovers() {
    use fbf::workload::ErrorGenConfig;
    let code = StripeCode::build(CodeSpec::TripleStar, 7).unwrap();
    let cfg = ErrorGenConfig {
        multi_col_prob: 1.0,
        ..ErrorGenConfig::paper_default(128, 32, 2024)
    };
    let campaign = generate_errors(&code, &cfg);
    let damages = campaign.damage_by_stripe();
    assert_eq!(damages.len(), 32);
    let schemes = generate_schemes_parallel(&code, &campaign, SchemeKind::FbfCycling, 2).unwrap();

    for (damage, scheme) in damages.iter().zip(&schemes) {
        let mut pristine = Stripe::patterned(code.layout(), 32);
        encode(&code, &mut pristine).unwrap();
        let mut damaged = pristine.clone();
        for &cell in &damage.cells {
            damaged.erase(code.layout(), cell);
        }
        apply_scheme(&code, &mut damaged, scheme).unwrap();
        for &cell in &damage.cells {
            assert_eq!(
                damaged.get(code.layout(), cell),
                pristine.get(code.layout(), cell),
                "stripe {} cell {cell}",
                damage.stripe
            );
        }
    }
}

/// The verified-campaign API certifies a full experiment's data path.
#[test]
fn verify_campaign_certifies_bytes() {
    let cfg = ExperimentConfig::builder()
        .code(CodeSpec::Star)
        .p(7)
        .stripes(96)
        .error_count(32)
        .gen_threads(1)
        .build()
        .unwrap();
    let report = fbf::verify_campaign(&cfg).unwrap();
    assert_eq!(report.stripes, 32);
    // The same config simulates with identical chunk accounting.
    let metrics = run_experiment(&cfg).unwrap();
    assert_eq!(metrics.chunks_recovered, report.chunks);
}

/// STAR multi-disk damage exceeds what chain-by-chain repair can order for
/// some patterns; the controller's joint-decode fallback keeps the
/// campaign running and still recovers exact bytes.
#[test]
fn star_multi_disk_campaign_uses_joint_fallback() {
    use fbf::recovery::{build_scripts_from_plans, ExecConfig, RecoveryController, StripePlan};
    use fbf::workload::ErrorGenConfig;

    let code = StripeCode::build(CodeSpec::Star, 7).unwrap();
    let campaign = generate_errors(
        &code,
        &ErrorGenConfig {
            multi_col_prob: 1.0,
            ..ErrorGenConfig::paper_default(256, 64, 99)
        },
    );
    let mut ctl = RecoveryController::new(&code, SchemeKind::FbfCycling);
    let (plans, dict) = ctl.plan_campaign_with_fallback(&campaign);
    assert_eq!(plans.len(), 64);
    let joints = plans
        .iter()
        .filter(|p| matches!(p, StripePlan::Joint(_)))
        .count();
    assert!(
        joints > 0,
        "expected some unorderable STAR patterns in 64 stripes"
    );
    assert!(joints < plans.len(), "most patterns should still chain");

    // Byte-exact recovery through both plan kinds.
    for plan in &plans {
        let mut pristine = Stripe::patterned(code.layout(), 32);
        encode(&code, &mut pristine).unwrap();
        let damage = campaign
            .damage_by_stripe()
            .into_iter()
            .find(|d| d.stripe == plan.stripe())
            .unwrap();
        let mut damaged = pristine.clone();
        for &cell in &damage.cells {
            damaged.erase(code.layout(), cell);
        }
        match plan {
            StripePlan::Chained(scheme) => apply_scheme(&code, &mut damaged, scheme).unwrap(),
            StripePlan::Joint(joint) => joint.apply(&code, &mut damaged).unwrap(),
        }
        for &cell in &damage.cells {
            assert_eq!(
                damaged.get(code.layout(), cell),
                pristine.get(code.layout(), cell),
                "stripe {} cell {cell}",
                damage.stripe
            );
        }
    }

    // And the simulator runs the mixed plan set.
    let scripts = build_scripts_from_plans(
        &plans,
        &dict,
        &ExecConfig {
            workers: 16,
            ..Default::default()
        },
    );
    let engine = fbf::disksim::Engine::new(fbf::disksim::EngineConfig::paper(
        PolicyKind::Fbf,
        512,
        fbf::disksim::ArrayMapping::new(code.cols(), code.rows(), false),
        256,
    ));
    let report = engine.run(&scripts);
    let expected_writes: usize = campaign
        .damage_by_stripe()
        .iter()
        .map(|d| d.cells.len())
        .sum();
    assert_eq!(report.disk_writes as usize, expected_writes);
}
