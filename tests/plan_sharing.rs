//! Plan-store equivalence: sharing a planned campaign across sweep points
//! must change *how often* scheme generation runs, never *what* any point
//! measures. These tests pin the acceptance criteria of the shared-plan
//! sweep engine at the facade level.

use fbf::CodeSpec;
use fbf::PolicyKind;
use fbf::{
    run_experiment, sweep, sweep_with_store, ExperimentConfig, Metrics, PlanSource, PlanStore,
};

fn grid_point(code: CodeSpec, p: usize, policy: PolicyKind, cache_mb: usize) -> ExperimentConfig {
    ExperimentConfig::builder()
        .code(code)
        .p(p)
        .policy(policy)
        .cache_mb(cache_mb)
        .stripes(128)
        .error_count(32)
        .workers(8)
        .gen_threads(1)
        .build()
        .expect("grid point is valid")
}

/// The simulated (deterministic) half of the metrics. Wall-clock fields
/// (`overhead_*`) are excluded: a warm point inherits the *store's* cold
/// generation time, which is a different measurement from a standalone run.
fn simulated(m: &Metrics) -> (u64, u64, f64, f64, f64, usize, usize) {
    (
        m.disk_reads,
        m.disk_writes,
        m.hit_ratio,
        m.avg_response_ms,
        m.reconstruction_s,
        m.chunks_recovered,
        m.stripes_repaired,
    )
}

/// Every policy gets bit-identical metrics whether it plans cold on its own
/// or reuses a shared campaign from the store.
#[test]
fn shared_plans_are_bit_identical_to_cold_for_every_policy() {
    let configs: Vec<ExperimentConfig> = PolicyKind::EXTENDED
        .iter()
        .map(|&policy| grid_point(CodeSpec::Tip, 7, policy, 8))
        .collect();

    let store = PlanStore::new();
    let shared = sweep_with_store(&configs, 4, &store).unwrap();
    assert_eq!(store.stats().misses, 1, "ten policies share one campaign");

    for (point, cfg) in shared.iter().zip(&configs) {
        let cold = run_experiment(cfg).unwrap();
        assert_eq!(cold.plan_source, PlanSource::Cold);
        assert_eq!(
            simulated(&point.metrics),
            simulated(&cold),
            "{}: shared plan must not change the simulation",
            cfg.policy.name()
        );
    }
}

/// A Fig. 8-shaped grid (codes × primes × policies × cache sizes) plans
/// exactly once per distinct campaign shape — the tentpole's headline
/// saving — and exactly one point per shape carries cold provenance.
#[test]
fn fig8_grid_plans_once_per_campaign_shape() {
    let codes = [CodeSpec::Tip, CodeSpec::Star];
    let primes = [5usize, 7];
    let cache_sizes = [2usize, 8, 32];
    let mut configs = Vec::new();
    for code in codes {
        for p in primes {
            for policy in PolicyKind::ALL {
                for mb in cache_sizes {
                    configs.push(grid_point(code, p, policy, mb));
                }
            }
        }
    }
    let distinct_shapes = codes.len() * primes.len();

    let store = PlanStore::new();
    let points = sweep_with_store(&configs, 4, &store).unwrap();
    assert_eq!(points.len(), configs.len());

    let stats = store.stats();
    assert_eq!(stats.misses as usize, distinct_shapes);
    assert_eq!(stats.hits as usize, configs.len() - distinct_shapes);
    assert_eq!(store.len(), distinct_shapes);

    let cold = points
        .iter()
        .filter(|pt| pt.metrics.plan_source == PlanSource::Cold)
        .count();
    assert_eq!(cold, distinct_shapes, "one cold measurement per campaign");
}

/// Work-stealing execution returns the same points in the same order as a
/// serial sweep — parallelism is an implementation detail.
#[test]
fn work_stealing_matches_serial_sweep() {
    let configs: Vec<ExperimentConfig> = PolicyKind::ALL
        .iter()
        .flat_map(|&policy| [2usize, 8].map(|mb| grid_point(CodeSpec::TripleStar, 7, policy, mb)))
        .collect();
    let serial = sweep(&configs, 1).unwrap();
    let parallel = sweep(&configs, 4).unwrap();
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.config.policy, b.config.policy);
        assert_eq!(a.config.cache_mb, b.config.cache_mb);
        assert_eq!(simulated(&a.metrics), simulated(&b.metrics));
    }
}

/// A failing grid point (p = 8 is not prime) surfaces as `Err` from the
/// sweep without aborting the process or poisoning sibling points.
#[test]
fn failing_point_surfaces_as_error_not_abort() {
    let good = grid_point(CodeSpec::Tip, 7, PolicyKind::Fbf, 8);
    let mut bad = good;
    bad.p = 8; // bypasses the builder deliberately: sweep must re-validate
    let err = sweep(&[good, bad, good], 2).unwrap_err();
    assert!(matches!(err, fbf::RunError::Config(_)), "got: {err}");
    // The good points still sweep cleanly afterwards.
    assert_eq!(sweep(&[good, good], 2).unwrap().len(), 2);
}
