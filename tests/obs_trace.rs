//! Observability integration: the run trace is an accurate ledger.
//!
//! Three contracts, each exercised through the public facade the way a
//! user would hit them:
//!
//! 1. **Reconciliation** — counters carried by `engine/cache` events sum
//!    to exactly the totals the sweep reports through [`Metrics`], on a
//!    fixed-seed campaign, twice in a row (replay determinism).
//! 2. **Well-formedness** — `--trace`-style JSONL output is one JSON
//!    object per line, chrome://tracing-shaped, and internally complete.
//! 3. **Swap safety** — replacing the subscriber mid-sweep (work-stealing
//!    threads emitting concurrently) loses no events: the two counting
//!    subscribers together still reconcile with the reported metrics.
//!
//! The subscriber slot is process-global, so every test here serialises
//! on one mutex.

use fbf::obs::{CountingSubscriber, TraceWriter};
use fbf::PolicyKind;
use fbf::{sweep, ExperimentConfig};
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Serialise tests that install a global subscriber.
fn lock() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// A small fixed-seed campaign grid: two cache sizes across three
/// policies, obs turned on so every emission site fires.
fn grid() -> Vec<ExperimentConfig> {
    [2usize, 8]
        .into_iter()
        .flat_map(|mb| {
            [PolicyKind::Fbf, PolicyKind::Lru, PolicyKind::Arc]
                .into_iter()
                .map(move |policy| {
                    ExperimentConfig::builder()
                        .policy(policy)
                        .cache_mb(mb)
                        .stripes(192)
                        .error_count(48)
                        .workers(8)
                        .gen_threads(1)
                        .obs(true)
                        .build()
                        .expect("test grid is valid")
                })
        })
        .collect()
}

/// The `engine/cache` arg names whose event totals must equal the summed
/// [`fbf::cache::CacheStats`] fields of the reported metrics.
const CACHE_KEYS: [&str; 8] = [
    "hits",
    "misses",
    "evictions",
    "inserts",
    "demotions",
    "prio1",
    "prio2",
    "prio3",
];

fn summed_cache_field(points: &[fbf::SweepPoint], key: &str) -> u64 {
    points
        .iter()
        .map(|pt| {
            let c = &pt.metrics.cache;
            match key {
                "hits" => c.hits,
                "misses" => c.misses,
                "evictions" => c.evictions,
                "inserts" => c.inserts,
                "demotions" => c.demotions,
                "prio1" => c.prio_inserts[0],
                "prio2" => c.prio_inserts[1],
                "prio3" => c.prio_inserts[2],
                other => unreachable!("unknown key {other}"),
            }
        })
        .sum()
}

#[test]
fn counters_reconcile_with_metrics_and_replay_deterministically() {
    let _gate = lock();
    let configs = grid();

    let mut per_run_totals = Vec::new();
    for _ in 0..2 {
        let counting = Arc::new(CountingSubscriber::default());
        fbf::obs::install(counting.clone());
        let points = sweep(&configs, 2).expect("sweep runs");
        fbf::obs::uninstall();

        for key in CACHE_KEYS {
            assert_eq!(
                counting.total(&format!("engine/cache/{key}")),
                summed_cache_field(&points, key),
                "trace total for `{key}` must equal the reported metrics"
            );
        }
        // Fetched-chunk priority distribution partitions the inserts.
        assert_eq!(
            counting.total("engine/cache/prio1")
                + counting.total("engine/cache/prio2")
                + counting.total("engine/cache/prio3"),
            counting.total("engine/cache/inserts"),
        );
        // Per-disk read counters roll up to the reported read total.
        assert_eq!(
            counting.total("engine/disk/reads"),
            points.iter().map(|pt| pt.metrics.disk_reads).sum::<u64>(),
        );
        // FBF points demote; the queue snapshot fired for them.
        assert!(counting.total("engine/cache/demotions") > 0);
        assert!(counting.total("engine/queues/q1") + counting.total("engine/queues/q2") > 0);
        // Sweep bookkeeping: every point and the plan-store split showed up.
        assert_eq!(counting.total("sweep/summary/points"), configs.len() as u64);
        assert_eq!(
            counting.total("sweep/summary/plan_cold") + counting.total("sweep/summary/plan_warm"),
            configs.len() as u64,
        );

        per_run_totals.push(
            CACHE_KEYS
                .iter()
                .map(|k| counting.total(&format!("engine/cache/{k}")))
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(
        per_run_totals[0], per_run_totals[1],
        "fixed-seed campaign must trace identically on replay"
    );
}

#[test]
fn class_digests_partition_read_totals() {
    let _gate = lock();
    let configs = grid();
    let points = sweep(&configs, 2).expect("sweep runs");

    for pt in &points {
        let m = &pt.metrics;
        // Every chunk read completion was attributed to exactly one class:
        // digest counts partition the read total (hits + disk reads).
        let by_digest: u64 = m.class_digests.iter().map(|h| h.count()).sum();
        let by_summary: u64 = m.class_latency.iter().map(|c| c.count).sum();
        assert_eq!(by_digest, by_summary, "summaries mirror the digests");
        assert_eq!(
            by_digest,
            m.cache.hits + m.disk_reads,
            "class digests must cover every read exactly once"
        );
        // This grid runs a pure reconstruction campaign: all traffic is
        // Recovery-classed, the other classes stay empty.
        use fbf::RequestClass;
        assert_eq!(
            m.class_digests[RequestClass::Recovery.index()].count(),
            by_digest
        );
        for class in [RequestClass::App, RequestClass::Replan, RequestClass::Scrub] {
            assert_eq!(m.class_digests[class.index()].count(), 0, "{class} is idle");
        }
        // The high-water and balance gauges are live on a real campaign.
        assert!(m.queue_depth_max > 0);
        assert!(m.read_balance >= 1.0, "busiest disk is at least the mean");
    }

    // Replay determinism: the per-class tails are part of the fixed-seed
    // contract, not just the scalar counters.
    let replay = sweep(&configs, 2).expect("sweep replays");
    for (a, b) in points.iter().zip(&replay) {
        assert_eq!(
            a.metrics.class_digests, b.metrics.class_digests,
            "class digests must replay bit-identically"
        );
    }
}

/// `Write` sink whose bytes stay inspectable after the writer is consumed
/// by [`TraceWriter::from_writer`].
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn jsonl_trace_is_well_formed() {
    let _gate = lock();
    let buf = SharedBuf::default();
    fbf::obs::install(Arc::new(TraceWriter::from_writer(Box::new(buf.clone()))));
    let points = sweep(&grid(), 2).expect("sweep runs");
    fbf::obs::uninstall();

    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("trace is UTF-8");
    assert!(text.ends_with('\n'), "trace ends with a newline");

    let mut phases = std::collections::BTreeSet::new();
    let mut cache_events = 0usize;
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "each line is one JSON object: {line}"
        );
        // Balanced structure (no string in the trace contains braces, so
        // plain counting is a faithful check here).
        let open = line.matches('{').count();
        let close = line.matches('}').count();
        assert_eq!(open, close, "balanced braces: {line}");
        assert_eq!(line.matches('"').count() % 2, 0, "paired quotes: {line}");
        for field in [
            "\"name\":",
            "\"cat\":",
            "\"ph\":",
            "\"pid\":1",
            "\"args\":{",
        ] {
            assert!(line.contains(field), "missing {field}: {line}");
        }
        let ph = line
            .split("\"ph\":\"")
            .nth(1)
            .and_then(|rest| rest.chars().next())
            .expect("ph present");
        assert!("XiCMst".contains(ph), "known phase {ph}: {line}");
        phases.insert(ph);
        if ph == 'X' {
            assert!(line.contains("\"dur\":"), "complete events carry dur");
        }
        if ph == 's' || ph == 't' {
            assert!(line.contains("\"id\":"), "flow events carry an id");
            assert!(
                line.contains("\"trace_id\":"),
                "flow events name their trace"
            );
        }
        if line.contains("\"cat\":\"engine\"") && line.contains("\"name\":\"cache\"") {
            cache_events += 1;
            for key in CACHE_KEYS {
                assert!(
                    line.contains(&format!("\"{key}\":")),
                    "cache event carries {key}"
                );
            }
        }
    }
    assert!(phases.contains(&'X') && phases.contains(&'C') && phases.contains(&'M'));
    // Sweep points mint a trace each, so causal flow records appear too.
    assert!(phases.contains(&'s'), "traced spans open flow records");
    assert_eq!(
        cache_events,
        points.len(),
        "one engine/cache snapshot per sweep point"
    );
}

/// A campaign hot enough that escalation declares stripes lost: heavy
/// media-error rate plus a dead disk. Seeded, so the loss (and the
/// events leading up to it) replays identically.
fn lossy_config() -> ExperimentConfig {
    use fbf::disksim::{DiskKill, SimTime};
    let mut cfg = ExperimentConfig::builder()
        .stripes(128)
        .error_count(48)
        .workers(8)
        .gen_threads(1)
        .obs(true)
        .build()
        .expect("lossy config is valid");
    cfg.faults = fbf::FaultPlan {
        seed: 99,
        media_per_mille: 120,
        disk_kill: Some(DiskKill {
            disk: 3,
            at: SimTime::from_millis(10),
        }),
        ..fbf::FaultPlan::none()
    };
    cfg
}

#[test]
fn data_loss_triggers_a_reproducible_flight_dump() {
    let _gate = lock();
    let cfg = lossy_config();
    let counting = Arc::new(CountingSubscriber::default());
    fbf::obs::install(counting.clone());

    // Two seeded runs, each against a fresh recorder: the data-loss
    // verdict must snapshot the ring, and the normalized dumps must be
    // byte-identical (the post-mortem artefact is diffable).
    let mut dumps = Vec::new();
    let mut metrics = Vec::new();
    for _ in 0..2 {
        fbf::obs::ring::install(Arc::new(fbf::obs::ring::FlightRecorder::with_capacity(
            4096,
        )));
        let m = fbf::run_experiment(&cfg).expect("lossy campaign still completes");
        assert!(m.stripes_lost > 0, "campaign must actually lose stripes");
        dumps.push(fbf::obs::ring::last_dump().expect("data loss dumped the flight recorder"));
        fbf::obs::ring::uninstall();
        metrics.push(m);
    }
    fbf::obs::uninstall();

    let (reason, lines) = &dumps[0];
    assert_eq!(reason, "data-loss");
    assert_eq!(
        dumps[0], dumps[1],
        "normalized dumps replay byte-identically"
    );

    // The dump is well-formed JSONL: a metadata header, then events whose
    // final entry is the data-loss instant naming the lost-stripe count.
    assert!(lines.len() > 1, "dump carries events, not just the header");
    assert!(lines[0].contains("fbf-flight"), "{}", lines[0]);
    for line in lines {
        assert!(line.ends_with('\n'), "each dump entry is one JSONL line");
        let line = line.trim_end();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
    let last = lines.last().unwrap();
    assert!(last.contains("\"name\":\"data-loss\""), "{last}");
    assert!(
        last.contains(&format!("\"stripes\":{}", metrics[0].stripes_lost)),
        "dump's verdict counts the same lost stripes as the metrics: {last}"
    );

    // Counter reconciliation: the live event stream agrees with the
    // merged metrics — the loss verdict, per-round escalation counters,
    // and the cross-round disk-read total (halved: two identical runs).
    assert_eq!(
        counting.total("faulted/data-loss/stripes"),
        2 * metrics[0].stripes_lost as u64
    );
    assert_eq!(
        counting.total("engine/disk/reads"),
        2 * metrics[0].disk_reads
    );
    assert_eq!(
        counting.total("faulted/round/round"),
        2 * (1..=metrics[0].replan_rounds).sum::<u64>(),
        "one round instant per escalation round, numbered 1..=rounds"
    );
}

#[test]
fn subscriber_swap_mid_sweep_loses_no_events() {
    let _gate = lock();
    let configs = grid();
    let a = Arc::new(CountingSubscriber::default());
    let b = Arc::new(CountingSubscriber::default());

    fbf::obs::install(a.clone());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let swapper = {
        let (a, b, stop) = (a.clone(), b.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut flip = false;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let next: Arc<dyn fbf::obs::Subscriber> = if flip { a.clone() } else { b.clone() };
                fbf::obs::install(next);
                flip = !flip;
                std::thread::yield_now();
            }
        })
    };
    let points = sweep(&configs, 4).expect("sweep runs under subscriber churn");
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    swapper.join().expect("swapper thread exits");
    fbf::obs::uninstall();

    // Whichever subscriber each event landed in, none may be lost: the
    // two ledgers together still reconcile exactly.
    for key in CACHE_KEYS {
        let k = format!("engine/cache/{key}");
        assert_eq!(
            a.total(&k) + b.total(&k),
            summed_cache_field(&points, key),
            "split ledger must still reconcile for `{key}`"
        );
    }
    assert!(a.events() + b.events() > 0);
}
