//! Policy zoo: all ten shipped replacement policies on one campaign.
//!
//! Run with `cargo run --release --example policy_zoo [cache_mb]`.
//!
//! Beyond the paper's five figure policies (FIFO, LRU, LFU, ARC, FBF),
//! the library ships the other replacement algorithms §II-B surveys:
//! LRU-K, 2Q, LRFU, FBR, and VDF (Victim Disk First — the closest prior
//! art, which protects victim-disk chunks but is blind to parity-chain
//! sharing). This example ranks them all on a single reconstruction
//! campaign.

use fbf::report::f;
use fbf::CodeSpec;
use fbf::PolicyKind;
use fbf::{sweep, ExperimentConfig, Table};

fn main() {
    let cache_mb: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);

    let base = ExperimentConfig::builder()
        .code(CodeSpec::Tip)
        .p(11)
        .cache_mb(cache_mb)
        .stripes(2048)
        .error_count(256)
        .workers(64);
    let configs: Vec<ExperimentConfig> = PolicyKind::EXTENDED
        .iter()
        .map(|&policy| base.policy(policy).build().expect("grid point is valid"))
        .collect();

    let mut points = sweep(&configs, 0).expect("sweep");
    points.sort_by(|a, b| b.metrics.hit_ratio.total_cmp(&a.metrics.hit_ratio));

    let mut table = Table::new(
        format!("policy zoo — TIP(p=11), cache {cache_mb}MB, ranked by hit ratio"),
        &[
            "rank",
            "policy",
            "hit_ratio",
            "disk_reads",
            "avg_resp_ms",
            "recon_s",
        ],
    );
    for (rank, pt) in points.iter().enumerate() {
        table.push_row(vec![
            (rank + 1).to_string(),
            pt.config.policy.name().to_string(),
            f(pt.metrics.hit_ratio, 4),
            pt.metrics.disk_reads.to_string(),
            f(pt.metrics.avg_response_ms, 2),
            f(pt.metrics.reconstruction_s, 3),
        ]);
    }
    println!("{}", table.render());
    assert_eq!(
        points[0].config.policy,
        PolicyKind::Fbf,
        "FBF should lead at contended cache sizes"
    );
    println!("FBF leads, as the paper predicts for limited cache sizes.");
}
