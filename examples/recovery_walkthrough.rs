//! Recovery-scheme walkthrough: the paper's Fig. 2, Fig. 3 and Table III.
//!
//! Run with `cargo run --release --example recovery_walkthrough`.
//!
//! Shows, chain by chain, how the typical (horizontal-only) scheme and the
//! FBF direction-cycling scheme repair the same partial stripe error — and
//! how the FBF scheme's overlapping chains produce the multi-level
//! priority dictionary of Table III.

use fbf::recovery::{scheme::generate, PartialStripeError, PriorityDictionary, SchemeKind};
use fbf::{CodeSpec, StripeCode};

fn walkthrough(spec: CodeSpec, p: usize, error_len: usize, figure: &str) {
    let code = StripeCode::build(spec, p).expect("prime");
    println!("=== {figure}: {} ===", code.describe());
    println!(
        "layout ({} rows x {} disks):\n{}",
        code.rows(),
        code.cols(),
        code.layout().ascii_art()
    );

    let error = PartialStripeError::new(&code, 0, 0, 0, error_len).expect("in bounds");
    println!("partial stripe error: {error}\n");

    for kind in [
        SchemeKind::Typical,
        SchemeKind::FbfCycling,
        SchemeKind::Greedy,
    ] {
        let scheme = generate(&code, &error, kind).expect("schedulable");
        println!("{} scheme:", kind.name());
        for r in &scheme.repairs {
            let reads: Vec<String> = r.option.reads.iter().map(|c| c.to_string()).collect();
            println!(
                "  repair {} via {:>13}: {}",
                r.target,
                r.option.direction.to_string(),
                reads.join(" ")
            );
        }
        println!(
            "  totals: {} slots / {} distinct / {} saved\n",
            scheme.total_read_slots(),
            scheme.unique_reads(),
            scheme.shared_savings()
        );
        if kind == SchemeKind::FbfCycling {
            let dict = PriorityDictionary::from_scheme(&scheme);
            println!("  Table III — priority dictionary:");
            for prio in (1..=3).rev() {
                let cells = dict.cells_with_priority(0, prio);
                let names: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
                println!(
                    "    priority {prio}: {}",
                    if names.is_empty() {
                        "(none)".into()
                    } else {
                        names.join(", ")
                    }
                );
            }
            println!();
        }
    }
}

fn main() {
    // Fig. 2: TIP(p=5), 6 disks, 4 lost chunks on disk 0.
    walkthrough(CodeSpec::Tip, 5, 4, "Fig. 2");
    // Fig. 3 + Table III: TIP(p=7), 8 disks, 5 lost chunks on disk 0.
    walkthrough(CodeSpec::Tip, 7, 5, "Fig. 3 / Table III");
    // Bonus: STAR's adjuster lines make whole diagonal repairs share the
    // adjuster chunks, which is why STAR tops the paper's Fig. 8.
    walkthrough(CodeSpec::Star, 5, 3, "STAR adjusters");
}
