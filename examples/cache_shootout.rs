//! Cache-policy shootout: FIFO vs LRU vs LFU vs ARC vs FBF on the same
//! reconstruction campaign.
//!
//! Run with `cargo run --release --example cache_shootout [cache_mb...]`.
//!
//! Reproduces the experience of reading the paper's Fig. 8 for one code:
//! at small cache sizes FBF's priority queues hold the shared "favorable
//! blocks" that LRU-family policies evict, so its hit ratio and read count
//! dominate; once the cache exceeds the per-stripe working set everyone
//! converges.

use fbf::report::f;
use fbf::CodeSpec;
use fbf::PolicyKind;
use fbf::{sweep, ExperimentConfig, Table};

fn main() {
    let sizes: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if args.is_empty() {
            vec![8, 32, 64, 128, 512]
        } else {
            args
        }
    };

    let base = ExperimentConfig::builder()
        .code(CodeSpec::TripleStar)
        .p(11)
        .stripes(2048)
        .error_count(256)
        .workers(64);
    let configs: Vec<ExperimentConfig> = sizes
        .iter()
        .flat_map(|&mb| {
            PolicyKind::ALL.iter().map(move |&policy| {
                base.policy(policy)
                    .cache_mb(mb)
                    .build()
                    .expect("grid point is valid")
            })
        })
        .collect();

    let points = sweep(&configs, 0).expect("sweep");

    let mut hit = Table::new(
        "hit ratio — TripleSTAR(p=11)",
        &["cache_mb", "FIFO", "LRU", "LFU", "ARC", "FBF"],
    );
    let mut reads = Table::new(
        "disk reads — TripleSTAR(p=11)",
        &["cache_mb", "FIFO", "LRU", "LFU", "ARC", "FBF"],
    );
    for (i, &mb) in sizes.iter().enumerate() {
        let row = &points[i * 5..(i + 1) * 5];
        hit.push_row(
            std::iter::once(mb.to_string())
                .chain(row.iter().map(|p| f(p.metrics.hit_ratio, 4)))
                .collect(),
        );
        reads.push_row(
            std::iter::once(mb.to_string())
                .chain(row.iter().map(|p| p.metrics.disk_reads.to_string()))
                .collect(),
        );
    }
    println!("{}", hit.render());
    println!("{}", reads.render());
}
