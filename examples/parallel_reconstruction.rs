//! Parallel reconstruction: SOR worker scaling and cache partitioning.
//!
//! Run with `cargo run --release --example parallel_reconstruction`.
//!
//! §III-B of the paper extends FBF to Stripe-Oriented Reconstruction:
//! stripes are spread over many workers, each with a slice of the cache.
//! This example sweeps the worker count and shows (a) the makespan
//! shrinking until the disks saturate, and (b) the partitioned-vs-shared
//! cache trade-off at a fixed worker count.

use fbf::report::f;
use fbf::CacheSharing;
use fbf::CodeSpec;
use fbf::PolicyKind;
use fbf::{run_experiment, ExperimentConfig, Table};

fn main() {
    // A builder is `Copy`, so the base grid point can be re-specialised
    // per experiment below.
    let base = ExperimentConfig::builder()
        .code(CodeSpec::Tip)
        .p(11)
        .policy(PolicyKind::Fbf)
        .cache_mb(64)
        .stripes(2048)
        .error_count(256);

    let mut scaling = Table::new(
        "SOR worker scaling — TIP(p=11), FBF, 64MB cache",
        &["workers", "reconstruction_s", "speedup", "hit_ratio"],
    );
    let serial = run_experiment(&base.workers(1).build().expect("config")).expect("run");
    for workers in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let m = run_experiment(&base.workers(workers).build().expect("config")).expect("run");
        scaling.push_row(vec![
            workers.to_string(),
            f(m.reconstruction_s, 3),
            f(serial.reconstruction_s / m.reconstruction_s, 2),
            f(m.hit_ratio, 4),
        ]);
    }
    println!("{}", scaling.render());

    let mut sharing = Table::new(
        "cache sharing at 64 workers — TIP(p=11), FBF",
        &["sharing", "hit_ratio", "disk_reads", "reconstruction_s"],
    );
    for (name, mode) in [
        ("partitioned", CacheSharing::Partitioned),
        ("shared", CacheSharing::Shared),
    ] {
        let m =
            run_experiment(&base.workers(64).sharing(mode).build().expect("config")).expect("run");
        sharing.push_row(vec![
            name.to_string(),
            f(m.hit_ratio, 4),
            m.disk_reads.to_string(),
            f(m.reconstruction_s, 3),
        ]);
    }
    println!("{}", sharing.render());
}
