//! Scrubbing demo: find silent corruption with chain syndromes, repair it.
//!
//! Run with `cargo run --release --example scrub_and_repair`.
//!
//! §II-C of the paper lists the silent-corruption sources that create
//! partial stripe errors in the first place (misdirected writes, torn
//! writes, parity pollution...). This example corrupts chunks *without
//! telling the array*, then lets the scrubber find them from parity-chain
//! syndromes, locate the culprits by their coverage fingerprint, and
//! repair through the erasure decoder.

use fbf::codes::encode::encode;
use fbf::recovery::{scrub, ScrubOutcome};
use fbf::{Cell, CodeSpec, Stripe, StripeCode};

fn main() {
    let code = StripeCode::build(CodeSpec::TripleStar, 7).expect("prime");
    println!("array: {}", code.describe());

    let mut stripe = Stripe::patterned(code.layout(), 4096);
    encode(&code, &mut stripe).expect("encode");
    let pristine = stripe.clone();

    // A torn write: chunk C(2,3) silently holds stale bytes.
    let victim = Cell::new(2, 3);
    let mut buf = stripe.get(code.layout(), victim).to_vec();
    for b in buf.iter_mut().take(512) {
        *b ^= 0xDE;
    }
    stripe.set(code.layout(), victim, bytes_from(buf));
    println!("silently corrupted {victim} (no I/O error reported)");

    match scrub(&code, &mut stripe, 2) {
        ScrubOutcome::Repaired(cells) => {
            println!("scrubber located and repaired: {cells:?}");
            assert_eq!(cells, vec![victim]);
            assert_eq!(
                stripe.get(code.layout(), victim),
                pristine.get(code.layout(), victim),
                "repair must restore the original bytes"
            );
            println!("payload verified against the original ✓");
        }
        other => panic!("scrub failed: {other:?}"),
    }

    // Second pass: clean.
    assert_eq!(scrub(&code, &mut stripe, 2), ScrubOutcome::Clean);
    println!("follow-up scrub: clean ✓");
}

fn bytes_from(v: Vec<u8>) -> fbf::codes::ChunkBuf {
    v.into()
}
