//! Degraded reads: serving application I/O that lands on lost chunks.
//!
//! Run with `cargo run --release --example degraded_reads`.
//!
//! While a campaign of partial stripe errors awaits repair, an application
//! keeps reading the array. Reads that hit lost chunks cannot be served
//! directly — the controller rewrites them into parallel fan-outs of the
//! cheapest surviving parity chain (`Op::Gather`), XORs, and returns. This
//! example builds such a mixed workload and compares how each cache policy
//! carries it, with the FBF reconstruction running alongside.

use fbf::disksim::{Engine, EngineConfig};
use fbf::recovery::{
    build_scripts, degrade_script, ExecConfig, LostMap, RecoveryController, SchemeKind,
};
use fbf::report::f;
use fbf::workload::{generate_app_reads, generate_errors, AppIoConfig, ErrorGenConfig};
use fbf::PolicyKind;
use fbf::Table;
use fbf::{ArrayMapping, CacheSharing, SimTime};
use fbf::{CodeSpec, StripeCode};

fn main() {
    let stripes = 1024u32;
    let code = StripeCode::build(CodeSpec::Tip, 11).expect("prime");

    // Damage and its repair plan.
    let errors = generate_errors(&code, &ErrorGenConfig::paper_default(stripes, 192, 7));
    let mut ctl = RecoveryController::new(&code, SchemeKind::FbfCycling);
    let (schemes, dict) = ctl.plan_campaign(&errors).expect("plan");
    let lost = LostMap::from_group(&errors);

    // Application stream biased toward the damaged region.
    let app = generate_app_reads(
        &code,
        &AppIoConfig {
            stripes,
            reads: 2000,
            hot_fraction: 0.8,
            hot_set: 0.25,
            think_time: SimTime::from_micros(250),
            seed: 3,
        },
    );
    let (degraded_app, count) = degrade_script(&code, &app, &lost, &dict, SimTime::from_micros(8));
    println!(
        "application: {} reads, {} degraded into chain fan-outs ({:.1}%)\n",
        app.reads(),
        count,
        100.0 * count as f64 / app.reads() as f64
    );

    let mut table = Table::new(
        "reconstruction + degraded app reads — TIP(p=11), shared 64MB cache",
        &["policy", "hit_ratio", "disk_reads", "makespan_s"],
    );
    for policy in PolicyKind::ALL {
        let mut scripts = build_scripts(
            &schemes,
            &dict,
            &ExecConfig {
                workers: 16,
                ..Default::default()
            },
        );
        scripts.push(degraded_app.clone());
        let engine = Engine::new(EngineConfig {
            sharing: CacheSharing::Shared,
            ..EngineConfig::paper(
                policy,
                64 * 1024 / 32,
                ArrayMapping::new(code.cols(), code.rows(), false),
                stripes as u64,
            )
        });
        let report = engine.run(&scripts);
        table.push_row(vec![
            policy.name().to_string(),
            f(report.cache.hit_ratio(), 4),
            report.disk_reads.to_string(),
            f(report.makespan.as_secs_f64(), 3),
        ]);
    }
    println!("{}", table.render());
}
