//! Quickstart: build a 3DFT code, break a stripe, recover it with FBF.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! Walks the whole public API in one sitting:
//! 1. build TIP-code for a 6-disk array (the paper's Fig. 1 setup);
//! 2. encode a stripe of real bytes;
//! 3. inject a partial stripe error (3 chunks on disk 0);
//! 4. generate the FBF recovery scheme and its priority dictionary;
//! 5. repair the stripe and verify the recovered bytes;
//! 6. run the same campaign through the disk simulator with the FBF cache
//!    and print the metrics.

use fbf::codes::encode::encode;
use fbf::recovery::{
    apply_scheme, scheme::generate, PartialStripeError, PriorityDictionary, SchemeKind,
};
use fbf::PolicyKind;
use fbf::{run_experiment, ExperimentConfig};
use fbf::{CodeSpec, Stripe, StripeCode};

fn main() {
    // 1. TIP-code over p = 5: 6 disks, 4 rows per stripe (paper Fig. 1).
    let code = StripeCode::build(CodeSpec::Tip, 5).expect("5 is prime");
    println!("built {}:", code.describe());
    println!("{}", code.layout().ascii_art());

    // 2. Encode a stripe of distinct patterned payloads (32 KB chunks).
    let mut stripe = Stripe::patterned(code.layout(), 32 << 10);
    encode(&code, &mut stripe).expect("encode");
    let pristine = stripe.clone();

    // 3. A partial stripe error: chunks rows 0..3 of disk 0 go bad.
    let error = PartialStripeError::new(&code, 0, 0, 0, 3).expect("in bounds");
    for cell in error.cells() {
        stripe.erase(code.layout(), cell);
    }
    println!("injected error: {error}");

    // 4. FBF recovery scheme + priorities.
    let scheme = generate(&code, &error, SchemeKind::FbfCycling).expect("schedulable");
    let dict = PriorityDictionary::from_scheme(&scheme);
    println!(
        "scheme reads {} distinct chunks ({} slots, {} saved by sharing)",
        scheme.unique_reads(),
        scheme.total_read_slots(),
        scheme.shared_savings()
    );
    for prio in (1..=3).rev() {
        let cells = dict.cells_with_priority(0, prio);
        if !cells.is_empty() {
            let names: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
            println!("  priority {prio}: {}", names.join(", "));
        }
    }

    // 5. Repair and verify.
    apply_scheme(&code, &mut stripe, &scheme).expect("apply");
    for cell in error.cells() {
        assert_eq!(
            stripe.get(code.layout(), cell),
            pristine.get(code.layout(), cell),
            "recovered bytes must match"
        );
    }
    println!("all lost chunks recovered bit-for-bit ✓");

    // 6. The same scenario at campaign scale, through the simulator.
    let cfg = ExperimentConfig::builder()
        .code(CodeSpec::Tip)
        .p(5)
        .policy(PolicyKind::Fbf)
        .cache_mb(16)
        .stripes(512)
        .error_count(128)
        .workers(16)
        .build()
        .expect("valid configuration");
    let metrics = run_experiment(&cfg).expect("simulation");
    println!("\nsimulated campaign ({}):", cfg.describe());
    println!("  {metrics}");
}
