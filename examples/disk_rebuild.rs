//! Whole-disk rebuild walkthrough: hybrid chain selection at full-column
//! scale.
//!
//! Run with `cargo run --release --example disk_rebuild`.
//!
//! When disk 0 of a TIP(p=11) array dies, every stripe loses a full
//! column. The classic rebuild reads each row's horizontal chain; Xiang
//! et al. (the paper's reference [22]) showed mixing chain directions cuts
//! reads to ~75% for RDP. The same machinery powers this library's
//! partial-stripe schemes, so whole-disk rebuild is one call away — and
//! the greedy generator lands on the published optimum.

use fbf::disksim::{ArrayMapping, Engine, EngineConfig};
use fbf::recovery::{
    build_scripts, rebuild_read_ratio, rebuild_schemes, ExecConfig, PriorityDictionary, SchemeKind,
};
use fbf::report::f;
use fbf::PolicyKind;
use fbf::Table;
use fbf::{CodeSpec, StripeCode};

fn main() {
    let stripes = 256u32;

    // Read-ratio analysis across codes (RDP's known optimum is 0.75).
    let mut ratios = Table::new(
        "full-disk rebuild reads vs horizontal-only (p=11)",
        &["code", "cycling", "greedy"],
    );
    for spec in CodeSpec::EXTENDED {
        let code = StripeCode::build(spec, 11).expect("prime");
        ratios.push_row(vec![
            spec.name().to_string(),
            f(
                rebuild_read_ratio(&code, 0, SchemeKind::FbfCycling).expect("scheme"),
                3,
            ),
            f(
                rebuild_read_ratio(&code, 0, SchemeKind::Greedy).expect("scheme"),
                3,
            ),
        ]);
    }
    println!("{}", ratios.render());

    // End-to-end rebuild of disk 0, TIP(p=11), greedy scheme + FBF cache.
    let code = StripeCode::build(CodeSpec::Tip, 11).expect("prime");
    let schemes = rebuild_schemes(&code, 0, stripes, SchemeKind::Greedy).expect("schemes");
    let dict = PriorityDictionary::from_schemes(&schemes);
    let scripts = build_scripts(
        &schemes,
        &dict,
        &ExecConfig {
            workers: 32,
            ..Default::default()
        },
    );
    let engine = Engine::new(EngineConfig::paper(
        PolicyKind::Fbf,
        64 * 1024 / 32,
        ArrayMapping::new(code.cols(), code.rows(), false),
        stripes as u64,
    ));
    let report = engine.run(&scripts);
    println!(
        "rebuilt disk 0 of {}: {} stripes, {} disk reads, {} spare writes, {:.2}s virtual time",
        code.describe(),
        stripes,
        report.disk_reads,
        report.disk_writes,
        report.makespan.as_secs_f64()
    );
    assert_eq!(
        report.disk_writes as u64,
        stripes as u64 * code.rows() as u64
    );
}
