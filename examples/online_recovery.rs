//! Online recovery: reconstruction racing foreground application I/O.
//!
//! Run with `cargo run --release --example online_recovery`.
//!
//! The paper motivates FBF's priorities partly by online recovery: while a
//! partial stripe is being repaired, applications keep reading the array
//! (§III-A-1, "the application can access these chunks during partial
//! stripe reconstruction"). This example builds a combined simulation —
//! SOR reconstruction workers plus an application reader — and compares
//! how each policy's reconstruction time and application response time
//! hold up under the mixed load.

use fbf::disksim::{ArrayMapping, Engine, EngineConfig};
use fbf::recovery::{
    build_scripts, generate_schemes_parallel, ExecConfig, PriorityDictionary, SchemeKind,
};
use fbf::report::f;
use fbf::workload::{generate_app_reads, generate_errors, AppIoConfig, ErrorGenConfig};
use fbf::PolicyKind;
use fbf::Table;
use fbf::{CodeSpec, StripeCode};

fn main() {
    let code = StripeCode::build(CodeSpec::Tip, 11).expect("build");
    let stripes = 2048u32;

    // Reconstruction campaign.
    let errors = generate_errors(&code, &ErrorGenConfig::paper_default(stripes, 256, 77));
    let schemes =
        generate_schemes_parallel(&code, &errors, SchemeKind::FbfCycling, 0).expect("schemes");
    let dict = PriorityDictionary::from_schemes(&schemes);
    let mut scripts = build_scripts(
        &schemes,
        &dict,
        &ExecConfig {
            workers: 32,
            ..Default::default()
        },
    );

    // Foreground application traffic (hot-spotted reads) as one extra worker.
    let app = generate_app_reads(
        &code,
        &AppIoConfig {
            stripes,
            reads: 2000,
            seed: 7,
            ..Default::default()
        },
    );
    let app_worker = scripts.len();
    scripts.push(app);

    let mut table = Table::new(
        "online recovery — TIP(p=11), 64MB cache, 32 workers + app reader",
        &[
            "policy",
            "hit_ratio",
            "disk_reads",
            "recon+app makespan (s)",
        ],
    );
    for policy in PolicyKind::ALL {
        let engine = Engine::new(EngineConfig::paper(
            policy,
            64 * 1024 / 32,
            ArrayMapping::new(code.cols(), code.rows(), false),
            stripes as u64,
        ));
        let report = engine.run(&scripts);
        table.push_row(vec![
            policy.name().to_string(),
            f(report.cache.hit_ratio(), 4),
            report.disk_reads.to_string(),
            f(report.makespan.as_secs_f64(), 3),
        ]);
    }
    println!("{}", table.render());
    println!("(app worker index {app_worker} shares the disks with reconstruction)");
}
