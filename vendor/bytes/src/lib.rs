//! Offline stand-in for the `bytes` crate.
//!
//! Provides the two types the workspace uses — [`Bytes`] (cheaply cloneable
//! immutable buffer, here an `Arc<[u8]>`) and [`BytesMut`] (growable buffer
//! that freezes into a `Bytes`) — with the subset of the real API the code
//! calls. Semantics match `bytes` 1.x for that subset: clones share one
//! allocation, equality is by content.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Cheaply cloneable, immutable contiguous byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[] as &[u8]),
        }
    }

    /// Wrap a static slice (copied here; the real crate borrows, but the
    /// observable behaviour — content equality, cheap clones — is the same).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `len() == 0`.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        Bytes::from(v.data)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{} bytes\"", self.len())
    }
}

/// Growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Grow or shrink to `new_len`, filling with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `len() == 0`.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { data: v }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_content() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn freeze_roundtrip() {
        let mut m = BytesMut::with_capacity(4);
        m.extend_from_slice(&[9, 8]);
        let f = m.freeze();
        assert_eq!(f.to_vec(), vec![9, 8]);
    }
}
