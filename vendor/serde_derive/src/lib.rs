//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` purely as API markers —
//! nothing actually serialises (tables render to CSV by hand). The sibling
//! `serde` stub gives both traits blanket impls, so these derives only have
//! to *exist*; they expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: the blanket impl in the `serde` stub
/// already covers every type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: see [`derive_serialize`].
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
