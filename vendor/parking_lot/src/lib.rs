//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind parking_lot's poison-free API:
//! `lock()`/`read()`/`write()` return guards directly, recovering the guard
//! from a poisoned std lock instead of returning a `Result`. No fairness or
//! speed claims — just the interface, which is all the workspace needs.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Poison-free mutex with parking_lot's `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Poison-free reader-writer lock with parking_lot's `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire an exclusive write guard, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
