//! Offline stand-in for `crossbeam`.
//!
//! The workspace only uses `crossbeam::thread::scope` + `Scope::spawn`, which
//! std has provided natively since 1.63 (`std::thread::scope`). This shim
//! adapts the std API to crossbeam's shape: the closure passed to `spawn`
//! receives a `&Scope` argument (so nested spawns work), and `scope` returns
//! `Result<R, Panic>` — `Err` carrying the first panic payload from an
//! unjoined child — instead of propagating the panic.

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex};

    type Panic = Box<dyn std::any::Any + Send + 'static>;

    /// Mirror of `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        panics: Arc<Mutex<Vec<Panic>>>,
    }

    /// Mirror of `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, Result<T, Panic>>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the child and surface its panic (if any) as `Err`.
        pub fn join(self) -> Result<T, Panic> {
            match self.inner.join() {
                Ok(inner) => inner,
                Err(panic) => Err(panic),
            }
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure gets a `&Scope` for nested
        /// spawns, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let child = Scope {
                inner: self.inner,
                panics: Arc::clone(&self.panics),
            };
            let sink = Arc::clone(&self.panics);
            let inner = self.inner.spawn(move || {
                match catch_unwind(AssertUnwindSafe(|| f(&child))) {
                    Ok(v) => Ok(v),
                    Err(panic) => {
                        // Record for the scope result; hand a placeholder to
                        // any join() caller (payloads are not Clone).
                        let msg = panic_message(&panic);
                        sink.lock().unwrap().push(panic);
                        Err(Box::new(msg) as Panic)
                    }
                }
            });
            ScopedJoinHandle { inner }
        }
    }

    fn panic_message(panic: &Panic) -> String {
        if let Some(s) = panic.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = panic.downcast_ref::<String>() {
            s.clone()
        } else {
            "scoped thread panicked".to_string()
        }
    }

    /// Mirror of `crossbeam::thread::scope`: run `f` with a scope handle,
    /// join every spawned thread, and report the first child panic as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Panic>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let panics = Arc::new(Mutex::new(Vec::new()));
        let result = {
            let panics = Arc::clone(&panics);
            std::thread::scope(move |s| {
                let scope = Scope { inner: s, panics };
                f(&scope)
            })
        };
        let first = panics.lock().unwrap().drain(..).next();
        match first {
            Some(panic) => Err(panic),
            None => Ok(result),
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawns_and_joins() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = crate::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_works() {
        let r = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 7);
    }
}
