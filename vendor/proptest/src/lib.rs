//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace's property tests use: the
//! [`Strategy`] trait over integer ranges, tuples, `Just`, `prop_oneof!`,
//! `prop_map`, and `collection::{vec, btree_set}`, plus the `proptest!`
//! runner macro and `prop_assert*` macros. Cases are generated from a
//! deterministic per-test RNG (FNV-hashed test path + case index), so
//! failures reproduce exactly. **No shrinking**: a failing case reports the
//! panic from the raw inputs instead of a minimised counterexample.

/// Deterministic case-level RNG and run configuration.
pub mod test_runner {
    /// Run configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 stream keyed by (test path, case index): every case of
    /// every test draws from its own reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one case of one named test.
        pub fn for_case(test_path: &str, case: u32) -> Self {
            // FNV-1a over the path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw on `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "cannot sample an empty range");
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    ///
    /// Object-safe (`Box<dyn Strategy<Value = T>>` works); combinators
    /// carry `Self: Sized` bounds.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { strategy: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.strategy.generate(rng))
        }
    }

    /// `prop_oneof!` backing type: pick one arm uniformly per case.
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build from boxed arms; panics if empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    /// Erase a strategy's concrete type (used by `prop_oneof!`).
    pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(strategy)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Vec of `size` (drawn from the range) elements.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// BTreeSet with size in the range (distinct elements; like proptest,
    /// retries duplicates a bounded number of times before settling).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::btree_set(element, len_range)`.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty size range");
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let want = self.size.start + rng.below(span) as usize;
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < want && attempts < want * 16 + 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// One-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniformly pick one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Assert inside a property body (stub: plain `assert!`, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

/// Property-test runner: expands each `fn name(arg in strategy, ...)` into
/// a `#[test]` that loops `config.cases` times with a per-case
/// deterministic RNG. Failures panic with the case index for reproduction.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds, tuples compose, oneof picks valid arms.
        #[test]
        fn strategies_compose(
            x in 0usize..10,
            pair in (1u32..5, 0u8..3),
            tag in prop_oneof![Just("a"), Just("b")],
            items in crate::collection::vec(0u64..100, 1..8),
        ) {
            prop_assert!(x < 10);
            prop_assert!((1..5).contains(&pair.0) && pair.1 < 3);
            prop_assert!(tag == "a" || tag == "b");
            prop_assert!(!items.is_empty() && items.len() < 8);
            prop_assert!(items.iter().all(|&v| v < 100));
        }

        /// btree_set yields distinct elements within the size bound.
        #[test]
        fn sets_are_distinct(set in crate::collection::btree_set(0usize..50, 1..6)) {
            prop_assert!(set.len() < 6);
            prop_assert!(set.iter().all(|&v| v < 50));
        }
    }

    #[test]
    fn same_case_reproduces() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let a = s.generate(&mut crate::test_runner::TestRng::for_case("t", 3));
        let b = s.generate(&mut crate::test_runner::TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }
}
