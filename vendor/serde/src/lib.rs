//! Offline stand-in for `serde`.
//!
//! The container this repository builds in has no crates.io access, so the
//! real `serde` cannot be fetched. The workspace only ever uses serde as a
//! *derive marker* — nothing calls a serializer — so this stub provides the
//! two trait names with blanket impls and re-exports no-op derive macros
//! from the sibling `serde_derive` stub. Swapping the real serde back in is
//! a one-line change in the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: ?Sized> DeserializeOwned for T {}

/// Namespace mirror of `serde::de`.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Namespace mirror of `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}
