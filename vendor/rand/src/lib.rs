//! Offline stand-in for `rand` 0.9.
//!
//! Implements the API subset the workspace uses — `StdRng`/`SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{random, random_bool, random_range}` —
//! over xoshiro256++ seeded through SplitMix64. Streams are deterministic
//! per seed (the property every experiment in this repo relies on) but are
//! *not* bit-compatible with the real rand's ChaCha-based `StdRng`; absolute
//! figures differ from runs made with crates.io rand, shapes do not.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing sampling API.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of a supported type.
    fn random<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 high bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Uniform sample from a range. Panics on an empty range, like rand.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Types [`Rng::random`] can produce.
pub trait Standard {
    /// Build a value from 64 uniform bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Rejection-free bounded sample on `[0, n)` via 128-bit multiply
/// (Lemire); bias is < 2^-64, irrelevant at test scale.
fn bounded(rng: &mut impl Rng, n: u64) -> u64 {
    assert!(n > 0, "cannot sample an empty range");
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, usize);

impl SampleRange<u64> for std::ops::Range<u64> {
    fn sample<R: Rng>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + bounded(rng, self.end - self.start)
    }
}

impl SampleRange<u64> for std::ops::RangeInclusive<u64> {
    fn sample<R: Rng>(self, rng: &mut R) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        lo + bounded(rng, span + 1)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ core, SplitMix64-seeded.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for Xoshiro256 {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Xoshiro256 {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for Xoshiro256 {
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    /// Stand-in for rand's `StdRng`.
    pub type StdRng = Xoshiro256;

    /// Stand-in for rand's `SmallRng`.
    pub type SmallRng = Xoshiro256;
}

pub use rngs::{SmallRng, StdRng};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(1u32..=4);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!(
            (2000..3000).contains(&hits),
            "{hits} out of 10000 at p=0.25"
        );
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
