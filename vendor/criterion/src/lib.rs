//! Offline stand-in for `criterion`.
//!
//! Mirrors the bench-definition API this workspace uses (`Criterion`,
//! `BenchmarkGroup`, `Bencher::{iter, iter_batched}`, `BenchmarkId`,
//! `Throughput`, `criterion_group!`/`criterion_main!`) with a minimal
//! mean-of-N timing loop and plain-text output — no statistics, plots, or
//! regression tracking. Bench binaries build and run; numbers are
//! indicative only.

use std::time::{Duration, Instant};

/// Label for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation (recorded, reported per-iteration only).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing for `iter_batched` (ignored by the stub's loop).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
}

/// Per-benchmark timing driver.
pub struct Bencher {
    samples: usize,
    last_mean: Duration,
}

impl Bencher {
    /// Time `routine` over `samples` iterations; record the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.last_mean = start.elapsed() / self.samples as u32;
    }

    /// Time `routine` with per-iteration setup excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.last_mean = total / self.samples as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Annotate subsequent benchmarks with a throughput (stub: recorded
    /// and dropped).
    pub fn throughput(&mut self, _throughput: Throughput) {}

    /// Benchmark a routine that consumes a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            last_mean: Duration::ZERO,
        };
        f(&mut b, input);
        println!(
            "{}/{}: {:?} (mean of {})",
            self.name, id, b.last_mean, b.samples
        );
    }

    /// Benchmark a plain routine.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            last_mean: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "{}/{}: {:?} (mean of {})",
            self.name, id, b.last_mean, b.samples
        );
    }

    /// End the group (stub: nothing to flush).
    pub fn finish(self) {}
}

/// Top-level bench configuration and entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Set the measurement budget (stub: ignored; sampling is count-based).
    pub fn measurement_time(self, _duration: Duration) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmark a plain routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean: Duration::ZERO,
        };
        f(&mut b);
        println!("{}: {:?} (mean of {})", id, b.last_mean, b.samples);
    }
}

/// Re-export for code written against `criterion::black_box`.
pub use std::hint::black_box;

/// Declare a bench group: either configured
/// (`name = n; config = expr; targets = a, b`) or positional (`n, a, b`).
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.throughput(Throughput::Bytes(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }

    criterion_group!(
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    );

    #[test]
    fn harness_runs() {
        benches();
    }
}
