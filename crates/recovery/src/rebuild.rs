//! Array-wide rebuild admission: per-stripe repair campaigns scheduled
//! against per-disk bandwidth caps.
//!
//! A whole-disk failure in a declustered array leaves thousands of
//! stripes partially damaged, each with its own repair plan. Letting
//! every stripe's reads hit the array at once starves foreground I/O; a
//! rebuild scheduler instead admits stripes in *waves*, bounding how many
//! rebuild reads any single disk absorbs per wave (the "bandwidth cap" of
//! declustered-RAID schedulers) and arbitrating between concurrent repair
//! campaigns with a fairness policy.
//!
//! [`RebuildScheduler`] is deliberately pure: it knows nothing about the
//! simulator or the plan store. Callers enqueue [`RebuildItem`]s — a
//! stripe plus its *projected* per-disk read footprint (derived from the
//! repair scheme and the array's [`DeclusteredLayout`]
//! (fbf_disksim::DeclusteredLayout)) — and drain waves. Determinism
//! follows from determinism of the inputs: same items in the same order,
//! same waves out.
//!
//! Two fairness policies:
//!
//! * [`Fairness::RoundRobin`] — campaigns take turns admitting one stripe
//!   at a time, skipping campaigns whose next stripe no longer fits the
//!   wave. Equal stripes-per-wave shares regardless of stripe cost.
//! * [`Fairness::DeficitWeighted`] — deficit round robin (Shreedhar &
//!   Varghese): each campaign accrues `weight` credits per wave and
//!   admits stripes while its credit covers their read cost, so shares
//!   are proportional to weight in *read volume*, not stripe count.
//!
//! Both guarantee progress: a stripe whose footprint alone exceeds the
//! per-disk cap is admitted as a singleton wave rather than starving.

use std::collections::VecDeque;

/// Arbitration between concurrent repair campaigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fairness {
    /// One stripe per campaign per turn.
    #[default]
    RoundRobin,
    /// Deficit round robin: read-volume shares proportional to campaign
    /// weight.
    DeficitWeighted,
}

impl Fairness {
    /// Stable label (CLI parsing, reports).
    pub fn name(self) -> &'static str {
        match self {
            Fairness::RoundRobin => "round-robin",
            Fairness::DeficitWeighted => "deficit-weighted",
        }
    }

    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "rr" | "round-robin" | "round_robin" => Some(Fairness::RoundRobin),
            "drr" | "deficit" | "deficit-weighted" | "deficit_weighted" => {
                Some(Fairness::DeficitWeighted)
            }
            _ => None,
        }
    }
}

/// One stripe's repair, as the scheduler sees it: who wants it and what
/// it will read from each disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebuildItem {
    /// Owning campaign (index into the scheduler's queues).
    pub campaign: usize,
    /// Stripe to repair.
    pub stripe: u32,
    /// Projected rebuild reads per physical disk: `(disk, reads)`,
    /// deduplicated, in ascending disk order.
    pub disk_reads: Vec<(u32, u32)>,
}

impl RebuildItem {
    /// Total projected reads (the DRR cost).
    pub fn cost(&self) -> u64 {
        self.disk_reads.iter().map(|&(_, n)| n as u64).sum()
    }
}

/// Admits per-stripe repairs against per-disk read caps with a fairness
/// policy. See the module docs for the model.
#[derive(Debug)]
pub struct RebuildScheduler {
    queues: Vec<VecDeque<RebuildItem>>,
    weights: Vec<u64>,
    deficits: Vec<u64>,
    cursor: usize,
    fairness: Fairness,
    per_disk_cap: u32,
    /// Scratch: per-disk load of the wave being assembled.
    wave_load: Vec<u32>,
}

impl RebuildScheduler {
    /// Scheduler over `disks` physical disks admitting at most
    /// `per_disk_cap` rebuild reads per disk per wave.
    pub fn new(disks: usize, per_disk_cap: u32, fairness: Fairness) -> Self {
        assert!(per_disk_cap > 0, "a zero cap admits nothing, ever");
        RebuildScheduler {
            queues: Vec::new(),
            weights: Vec::new(),
            deficits: Vec::new(),
            cursor: 0,
            fairness,
            per_disk_cap,
            wave_load: vec![0; disks],
        }
    }

    /// Ensure campaign `c` exists (weight 1 unless set later).
    fn ensure_campaign(&mut self, c: usize) {
        while self.queues.len() <= c {
            self.queues.push(VecDeque::new());
            self.weights.push(1);
            self.deficits.push(0);
        }
    }

    /// Set campaign `c`'s DRR weight (read-volume share). Ignored under
    /// round-robin.
    pub fn set_weight(&mut self, c: usize, weight: u64) {
        assert!(weight > 0, "a zero-weight campaign would starve");
        self.ensure_campaign(c);
        self.weights[c] = weight;
    }

    /// Enqueue one stripe repair on its campaign's queue.
    pub fn push(&mut self, item: RebuildItem) {
        for &(disk, _) in &item.disk_reads {
            assert!(
                (disk as usize) < self.wave_load.len(),
                "item reads disk {disk} outside the {}-disk array",
                self.wave_load.len()
            );
        }
        self.ensure_campaign(item.campaign);
        self.queues[item.campaign].push_back(item);
    }

    /// Stripes still queued across all campaigns.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Nothing left to admit?
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Does `item` fit the wave under the per-disk cap, given current
    /// per-disk load?
    fn fits(&self, item: &RebuildItem) -> bool {
        item.disk_reads
            .iter()
            .all(|&(disk, n)| self.wave_load[disk as usize].saturating_add(n) <= self.per_disk_cap)
    }

    fn charge(&mut self, item: &RebuildItem) {
        for &(disk, n) in &item.disk_reads {
            self.wave_load[disk as usize] += n;
        }
    }

    /// Assemble the next wave: the set of stripes that may repair
    /// concurrently without any disk exceeding the cap. Returns an empty
    /// vec only when no work is queued.
    ///
    /// Progress guarantee: if the wave is still empty after a full
    /// arbitration pass (every queue head individually busts the cap or
    /// its campaign's deficit), the first pending stripe in cursor order
    /// is admitted alone — an over-cap stripe becomes a singleton wave
    /// instead of wedging the rebuild.
    pub fn next_wave(&mut self) -> Vec<RebuildItem> {
        let n = self.queues.len();
        let mut wave = Vec::new();
        if n == 0 {
            return wave;
        }
        for load in &mut self.wave_load {
            *load = 0;
        }
        if self.fairness == Fairness::DeficitWeighted {
            // One quantum per wave for every backlogged campaign; idle
            // campaigns hold no credit (classic DRR resets them).
            for c in 0..n {
                if self.queues[c].is_empty() {
                    self.deficits[c] = 0;
                } else {
                    self.deficits[c] = self.deficits[c].saturating_add(self.weights[c]);
                }
            }
        }
        // Arbitrate until a full cycle over the campaigns admits nothing.
        loop {
            let mut admitted = false;
            for step in 0..n {
                let c = (self.cursor + step) % n;
                let Some(head) = self.queues[c].front() else {
                    continue;
                };
                if !self.fits(head) {
                    continue;
                }
                match self.fairness {
                    Fairness::RoundRobin => {}
                    Fairness::DeficitWeighted => {
                        if self.deficits[c] < head.cost() {
                            continue;
                        }
                    }
                }
                let item = self.queues[c].pop_front().expect("head exists");
                if self.fairness == Fairness::DeficitWeighted {
                    self.deficits[c] -= item.cost();
                }
                self.charge(&item);
                wave.push(item);
                admitted = true;
            }
            if !admitted {
                break;
            }
            if self.fairness == Fairness::RoundRobin {
                // Rotate so the next cycle (and the next wave) starts at
                // a different campaign — round robin across waves too.
                self.cursor = (self.cursor + 1) % n;
            }
        }
        if wave.is_empty() {
            // Nothing fit. Either all queues are empty (done) or the
            // cursor-first pending head is over-cap/short-of-credit:
            // admit it alone.
            for step in 0..n {
                let c = (self.cursor + step) % n;
                if let Some(item) = self.queues[c].pop_front() {
                    if self.fairness == Fairness::DeficitWeighted {
                        self.deficits[c] = self.deficits[c].saturating_sub(item.cost());
                    }
                    self.cursor = (c + 1) % n;
                    wave.push(item);
                    break;
                }
            }
        }
        wave
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(campaign: usize, stripe: u32, reads: &[(u32, u32)]) -> RebuildItem {
        RebuildItem {
            campaign,
            stripe,
            disk_reads: reads.to_vec(),
        }
    }

    /// Drain the scheduler, returning every wave.
    fn drain(s: &mut RebuildScheduler) -> Vec<Vec<RebuildItem>> {
        let mut waves = Vec::new();
        while !s.is_empty() {
            let w = s.next_wave();
            assert!(!w.is_empty(), "pending work must always make progress");
            waves.push(w);
        }
        waves
    }

    #[test]
    fn caps_bound_every_wave() {
        let mut s = RebuildScheduler::new(4, 3, Fairness::RoundRobin);
        for stripe in 0..12u32 {
            s.push(item(0, stripe, &[(stripe % 4, 2)]));
        }
        for wave in drain(&mut s) {
            let mut per_disk = [0u32; 4];
            for it in &wave {
                for &(d, n) in &it.disk_reads {
                    per_disk[d as usize] += n;
                }
            }
            assert!(per_disk.iter().all(|&l| l <= 3), "{per_disk:?}");
        }
    }

    #[test]
    fn drain_is_complete_and_exact() {
        let mut s = RebuildScheduler::new(8, 4, Fairness::RoundRobin);
        for stripe in 0..40u32 {
            s.push(item((stripe % 3) as usize, stripe, &[(stripe % 8, 1)]));
        }
        let waves = drain(&mut s);
        let mut seen: Vec<u32> = waves.iter().flatten().map(|i| i.stripe).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..40).collect::<Vec<_>>());
        assert!(s.is_empty());
        assert!(s.next_wave().is_empty(), "drained scheduler yields nothing");
    }

    #[test]
    fn round_robin_interleaves_campaigns() {
        // Two campaigns on disjoint disks; cap admits one stripe of each
        // per wave. Every wave must carry one stripe from *each*.
        let mut s = RebuildScheduler::new(2, 1, Fairness::RoundRobin);
        for stripe in 0..6u32 {
            s.push(item(0, stripe, &[(0, 1)]));
            s.push(item(1, 100 + stripe, &[(1, 1)]));
        }
        for wave in drain(&mut s) {
            let campaigns: Vec<usize> = wave.iter().map(|i| i.campaign).collect();
            assert!(
                campaigns.contains(&0) && campaigns.contains(&1),
                "{campaigns:?}"
            );
        }
    }

    #[test]
    fn deficit_weights_split_read_volume() {
        // Same-cost stripes, weights 2:1, shared disk with a roomy cap:
        // campaign 0 should move ~2x campaign 1's volume per wave.
        let mut s = RebuildScheduler::new(1, u32::MAX, Fairness::DeficitWeighted);
        s.set_weight(0, 2);
        s.set_weight(1, 1);
        for stripe in 0..30u32 {
            s.push(item(0, stripe, &[(0, 1)]));
            s.push(item(1, 100 + stripe, &[(0, 1)]));
        }
        let first = s.next_wave();
        let c0 = first.iter().filter(|i| i.campaign == 0).count();
        let c1 = first.iter().filter(|i| i.campaign == 1).count();
        assert_eq!(c0, 2 * c1, "weight-2 campaign admits twice the volume");
        // The full drain still delivers everything.
        let mut rest: Vec<RebuildItem> = first;
        while !s.is_empty() {
            rest.extend(s.next_wave());
        }
        assert_eq!(rest.len(), 60);
    }

    #[test]
    fn oversized_item_becomes_a_singleton_wave() {
        // Campaign queues are strict FIFO: an over-cap stripe at the head
        // does not wedge the rebuild and is not bypassed — it goes out
        // alone, then normal admission resumes behind it.
        let mut s = RebuildScheduler::new(2, 2, Fairness::RoundRobin);
        s.push(item(0, 7, &[(0, 10)])); // over cap on its own
        s.push(item(0, 8, &[(1, 1)]));
        let w1 = s.next_wave();
        assert_eq!(w1.iter().map(|i| i.stripe).collect::<Vec<_>>(), vec![7]);
        let w2 = s.next_wave();
        assert_eq!(w2.iter().map(|i| i.stripe).collect::<Vec<_>>(), vec![8]);
        assert!(s.is_empty());
    }

    #[test]
    fn waves_are_deterministic() {
        let build = || {
            let mut s = RebuildScheduler::new(16, 5, Fairness::DeficitWeighted);
            s.set_weight(0, 3);
            s.set_weight(1, 1);
            for stripe in 0..64u32 {
                s.push(item(
                    (stripe % 2) as usize,
                    stripe,
                    &[(stripe % 16, 1 + stripe % 3), ((stripe * 7 + 3) % 16, 1)],
                ));
            }
            s
        };
        let (mut a, mut b) = (build(), build());
        while !a.is_empty() || !b.is_empty() {
            assert_eq!(a.next_wave(), b.next_wave());
        }
    }

    #[test]
    fn parse_fairness_spellings() {
        assert_eq!(Fairness::parse("rr"), Some(Fairness::RoundRobin));
        assert_eq!(Fairness::parse("drr"), Some(Fairness::DeficitWeighted));
        assert_eq!(
            Fairness::parse("deficit-weighted"),
            Some(Fairness::DeficitWeighted)
        );
        assert_eq!(Fairness::parse("nope"), None);
        assert_eq!(Fairness::RoundRobin.name(), "round-robin");
    }
}
