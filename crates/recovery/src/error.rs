//! The failure model: partial stripe errors.
//!
//! A [`PartialStripeError`] is a run of consecutive bad chunks on one disk
//! within one stripe — the paper's unit of damage (§IV-A): at least one
//! chunk, at most `p - 1` chunks (a full column is whole-disk territory,
//! handled by prior work \[22\]/\[36\]). Sector-level errors are rounded up to
//! chunks, "since chunk is the fundamental recovery unit".

use fbf_codes::{Cell, ChunkId, StripeCode};
use serde::{Deserialize, Serialize};

/// One partial stripe error: `len` consecutive chunks starting at
/// `first_row` in column `col` of stripe `stripe`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PartialStripeError {
    /// Stripe number within the array.
    pub stripe: u32,
    /// Failed column (disk within the stripe's layout).
    pub col: usize,
    /// First bad row.
    pub first_row: usize,
    /// Number of consecutive bad chunks (`1..=p-1`, i.e. `<= rows`).
    pub len: usize,
}

impl PartialStripeError {
    /// Construct and validate against a code's geometry.
    pub fn new(
        code: &StripeCode,
        stripe: u32,
        col: usize,
        first_row: usize,
        len: usize,
    ) -> Result<Self, String> {
        if col >= code.cols() {
            return Err(format!("column {col} outside {}-disk array", code.cols()));
        }
        if len == 0 {
            return Err("error length must be at least one chunk".into());
        }
        if first_row + len > code.rows() {
            return Err(format!(
                "rows {first_row}..{} outside stripe of {} rows",
                first_row + len,
                code.rows()
            ));
        }
        Ok(PartialStripeError {
            stripe,
            col,
            first_row,
            len,
        })
    }

    /// The lost cells, top to bottom.
    pub fn cells(&self) -> Vec<Cell> {
        (self.first_row..self.first_row + self.len)
            .map(|r| Cell::new(r, self.col))
            .collect()
    }

    /// The lost chunks with global identity.
    pub fn chunk_ids(&self) -> Vec<ChunkId> {
        self.cells()
            .into_iter()
            .map(|c| ChunkId::new(self.stripe, c))
            .collect()
    }
}

impl std::fmt::Display for PartialStripeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stripe {} disk {} rows {}..{}",
            self.stripe,
            self.col,
            self.first_row,
            self.first_row + self.len
        )
    }
}

/// A campaign of partial stripe errors awaiting reconstruction —
/// the paper's `PartialStripeErrorGroup`. One stripe may carry several
/// errors (on different disks — the spatially-correlated case the LSE
/// studies describe); recovery merges them into one [`StripeDamage`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorGroup {
    /// The individual errors.
    pub errors: Vec<PartialStripeError>,
}

/// All damage of one stripe, merged across errors: the unit recovery
/// schemes are generated for.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeDamage {
    /// The damaged stripe.
    pub stripe: u32,
    /// Lost cells, sorted and deduplicated.
    pub cells: Vec<Cell>,
}

impl ErrorGroup {
    /// Empty group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an error. Same-stripe errors are allowed (multi-disk damage);
    /// recovery merges them per stripe.
    pub fn push(&mut self, e: PartialStripeError) {
        self.errors.push(e);
    }

    /// Merge the campaign into per-stripe damage, ordered by stripe.
    pub fn damage_by_stripe(&self) -> Vec<StripeDamage> {
        let mut by_stripe: std::collections::BTreeMap<u32, Vec<Cell>> =
            std::collections::BTreeMap::new();
        for e in &self.errors {
            by_stripe.entry(e.stripe).or_default().extend(e.cells());
        }
        by_stripe
            .into_iter()
            .map(|(stripe, mut cells)| {
                cells.sort_unstable();
                cells.dedup();
                StripeDamage { stripe, cells }
            })
            .collect()
    }

    /// Number of errors.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// Is the group empty?
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }

    /// Total lost chunks across the campaign.
    pub fn total_lost_chunks(&self) -> usize {
        self.errors.iter().map(|e| e.len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbf_codes::CodeSpec;

    fn code() -> StripeCode {
        StripeCode::build(CodeSpec::Tip, 7).unwrap()
    }

    #[test]
    fn valid_error_constructs() {
        let e = PartialStripeError::new(&code(), 3, 0, 1, 4).unwrap();
        assert_eq!(e.cells().len(), 4);
        assert_eq!(e.cells()[0], Cell::new(1, 0));
        assert_eq!(e.cells()[3], Cell::new(4, 0));
        assert_eq!(e.chunk_ids()[0].stripe, 3);
    }

    #[test]
    fn zero_length_rejected() {
        assert!(PartialStripeError::new(&code(), 0, 0, 0, 0).is_err());
    }

    #[test]
    fn overflow_rejected() {
        // TIP p=7 has 6 rows; rows 4..8 overflow.
        assert!(PartialStripeError::new(&code(), 0, 0, 4, 4).is_err());
        // Column 8 outside an 8-disk array.
        assert!(PartialStripeError::new(&code(), 0, 8, 0, 1).is_err());
    }

    #[test]
    fn full_column_is_allowed_at_most() {
        // len == rows is accepted by the type (the workload generator caps
        // at p-1 per the paper; the boundary case remains recoverable).
        assert!(PartialStripeError::new(&code(), 0, 0, 0, 6).is_ok());
    }

    #[test]
    fn group_accounting() {
        let c = code();
        let mut g = ErrorGroup::new();
        g.push(PartialStripeError::new(&c, 0, 0, 0, 3).unwrap());
        g.push(PartialStripeError::new(&c, 1, 2, 1, 5).unwrap());
        assert_eq!(g.len(), 2);
        assert_eq!(g.total_lost_chunks(), 8);
        assert!(!g.is_empty());
    }

    #[test]
    fn same_stripe_errors_merge_into_one_damage() {
        let c = code();
        let mut g = ErrorGroup::new();
        g.push(PartialStripeError::new(&c, 0, 0, 0, 2).unwrap());
        g.push(PartialStripeError::new(&c, 0, 1, 1, 2).unwrap());
        g.push(PartialStripeError::new(&c, 5, 3, 0, 1).unwrap());
        let damage = g.damage_by_stripe();
        assert_eq!(damage.len(), 2);
        assert_eq!(damage[0].stripe, 0);
        assert_eq!(damage[0].cells.len(), 4);
        assert_eq!(damage[1].stripe, 5);
        // Overlapping cells dedupe.
        g.push(PartialStripeError::new(&c, 0, 0, 0, 2).unwrap());
        assert_eq!(g.damage_by_stripe()[0].cells.len(), 4);
    }
}
