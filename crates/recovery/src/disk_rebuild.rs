//! Whole-disk failure rebuild.
//!
//! Partial stripe recovery's big sibling: when a disk fails outright,
//! every stripe loses its full column. The paper defers this case to
//! prior work — Xiang et al.'s optimal single-failure recovery (reference
//! \[22\]) showed that *mixing* chain directions cuts the reads of a
//! full-column RDP rebuild to ~75% of the all-horizontal baseline, and
//! Zhu et al. \[13\] parallelised it (DOR/SOR). Our scheme generators are
//! exactly that machinery, so whole-disk rebuild falls out of the same
//! code path: a full-column [`PartialStripeError`] per stripe.
//!
//! This module packages it: campaign construction, read-ratio analysis
//! (which reproduces the \[22\] result on RDP), and script generation.

use crate::error::{ErrorGroup, PartialStripeError};
use crate::scheme::{generate, RecoveryScheme, SchemeError, SchemeKind};
use fbf_codes::StripeCode;

/// A full-column error for every stripe in `0..stripes`.
pub fn rebuild_campaign(
    code: &StripeCode,
    failed_col: usize,
    stripes: u32,
) -> Result<ErrorGroup, String> {
    let mut group = ErrorGroup::new();
    for stripe in 0..stripes {
        group.push(PartialStripeError::new(
            code,
            stripe,
            failed_col,
            0,
            code.rows(),
        )?);
    }
    Ok(group)
}

/// Distinct chunks a scheme kind fetches to rebuild one full column,
/// relative to the horizontal-only baseline. Xiang et al. \[22\] prove the
/// optimum for RDP is `~0.75`; the greedy generator should approach it.
pub fn rebuild_read_ratio(
    code: &StripeCode,
    failed_col: usize,
    kind: SchemeKind,
) -> Result<f64, SchemeError> {
    let error = PartialStripeError {
        stripe: 0,
        col: failed_col,
        first_row: 0,
        len: code.rows(),
    };
    let baseline = generate(code, &error, SchemeKind::Typical)?;
    let scheme = generate(code, &error, kind)?;
    Ok(scheme.unique_reads() as f64 / baseline.unique_reads() as f64)
}

/// Schemes for a whole-disk rebuild, one per stripe.
pub fn rebuild_schemes(
    code: &StripeCode,
    failed_col: usize,
    stripes: u32,
    kind: SchemeKind,
) -> Result<Vec<RecoveryScheme>, SchemeError> {
    let error = PartialStripeError {
        stripe: 0,
        col: failed_col,
        first_row: 0,
        len: code.rows(),
    };
    // All stripes share the same geometry, so generate once and restamp —
    // this is the paper's §III-A-1 observation that "these priorities can
    // be enumerated once a same format of partial stripe error is detected
    // again, and no more calculation is required".
    let template = generate(code, &error, kind)?;
    Ok((0..stripes)
        .map(|stripe| RecoveryScheme {
            stripe,
            kind: template.kind,
            repairs: template.repairs.clone(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::apply_scheme;
    use fbf_codes::encode::encode;
    use fbf_codes::{CodeSpec, Stripe};

    #[test]
    fn campaign_covers_every_stripe() {
        let code = StripeCode::build(CodeSpec::Tip, 7).unwrap();
        let g = rebuild_campaign(&code, 0, 50).unwrap();
        assert_eq!(g.len(), 50);
        assert_eq!(g.total_lost_chunks(), 50 * 6);
    }

    #[test]
    fn rdp_hybrid_rebuild_approaches_the_known_optimum() {
        // Xiang et al. [22]: optimal single-failure RDP recovery reads
        // ~3/4 of what the all-horizontal scheme reads.
        let code = StripeCode::build(CodeSpec::Rdp, 11).unwrap();
        let greedy = rebuild_read_ratio(&code, 0, SchemeKind::Greedy).unwrap();
        assert!(
            greedy < 0.90,
            "greedy rebuild must beat horizontal-only, got ratio {greedy:.3}"
        );
        assert!(
            greedy >= 0.70,
            "cannot beat the theoretical optimum, got {greedy:.3}"
        );
    }

    #[test]
    fn hybrid_helps_every_3dft_code_too() {
        for spec in CodeSpec::ALL {
            let code = StripeCode::build(spec, 7).unwrap();
            let ratio = rebuild_read_ratio(&code, 0, SchemeKind::Greedy).unwrap();
            assert!(ratio <= 1.0, "{spec:?}: {ratio}");
        }
    }

    #[test]
    fn rebuild_schemes_restamp_stripes() {
        let code = StripeCode::build(CodeSpec::Tip, 5).unwrap();
        let schemes = rebuild_schemes(&code, 2, 10, SchemeKind::FbfCycling).unwrap();
        assert_eq!(schemes.len(), 10);
        for (i, s) in schemes.iter().enumerate() {
            assert_eq!(s.stripe, i as u32);
            assert_eq!(s.repairs.len(), code.rows());
        }
        // All stripes share the template's repairs.
        assert_eq!(schemes[0].repairs, schemes[9].repairs);
    }

    #[test]
    fn rebuild_recovers_exact_bytes() {
        for spec in CodeSpec::ALL {
            let code = StripeCode::build(spec, 5).unwrap();
            let mut pristine = Stripe::patterned(code.layout(), 32);
            encode(&code, &mut pristine).unwrap();
            for col in 0..code.cols() {
                let schemes = rebuild_schemes(&code, col, 1, SchemeKind::Greedy)
                    .unwrap_or_else(|e| panic!("{spec:?} col {col}: {e}"));
                let mut damaged = pristine.clone();
                for r in 0..code.rows() {
                    damaged.erase(code.layout(), fbf_codes::Cell::new(r, col));
                }
                apply_scheme(&code, &mut damaged, &schemes[0]).unwrap();
                for r in 0..code.rows() {
                    let cell = fbf_codes::Cell::new(r, col);
                    assert_eq!(
                        damaged.get(code.layout(), cell),
                        pristine.get(code.layout(), cell),
                        "{spec:?} col {col} row {r}"
                    );
                }
            }
        }
    }
}
