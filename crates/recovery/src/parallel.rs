//! Parallel reconstruction helpers (§III-B).
//!
//! Two layers of parallelism exist in this reproduction:
//!
//! * **Inside the simulation** — SOR workers are *logical* processes whose
//!   contention the engine models in virtual time; [`assign_round_robin`]
//!   partitions stripes over them.
//! * **On the host** — scheme generation for a large campaign is pure
//!   CPU work, embarrassingly parallel per stripe.
//!   [`generate_schemes_parallel`] fans it out over crossbeam scoped
//!   threads (the guides' recommended shape: spawn N workers over disjoint
//!   index ranges, no shared mutable state, join for the results).

use crate::error::{ErrorGroup, StripeDamage};
use crate::scheme::{generate_for_cells, RecoveryScheme, SchemeError, SchemeKind};
use fbf_codes::StripeCode;

/// Assign error indices to `workers` queues round-robin (SOR's
/// stripe-oriented partitioning).
pub fn assign_round_robin(group: &ErrorGroup, workers: usize) -> Vec<Vec<usize>> {
    let workers = workers.max(1).min(group.len().max(1));
    let mut queues = vec![Vec::new(); workers];
    for i in 0..group.len() {
        queues[i % workers].push(i);
    }
    queues
}

/// Generate one scheme per *damaged stripe* (same-stripe errors merged),
/// in parallel across host threads.
///
/// Results are ordered by stripe. `threads = 0` means one thread per
/// available CPU (capped by the number of stripes).
pub fn generate_schemes_parallel(
    code: &StripeCode,
    group: &ErrorGroup,
    kind: SchemeKind,
    threads: usize,
) -> Result<Vec<RecoveryScheme>, SchemeError> {
    let damages = group.damage_by_stripe();
    let n = damages.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(n);

    let gen_one = |d: &StripeDamage| generate_for_cells(code, d.stripe, &d.cells, kind);

    if threads <= 1 {
        return damages.iter().map(gen_one).collect();
    }

    let mut out: Vec<Option<Result<RecoveryScheme, SchemeError>>> = Vec::new();
    out.resize_with(n, || None);
    let chunk = n.div_ceil(threads);

    crossbeam::thread::scope(|scope| {
        for (slice, damages) in out.chunks_mut(chunk).zip(damages.chunks(chunk)) {
            scope.spawn(move |_| {
                for (slot, d) in slice.iter_mut().zip(damages) {
                    *slot = Some(generate_for_cells(code, d.stripe, &d.cells, kind));
                }
            });
        }
    })
    .expect("scheme generation worker panicked");

    out.into_iter()
        .map(|r| r.expect("every slot filled by its worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::PartialStripeError;
    use fbf_codes::CodeSpec;

    fn group(code: &StripeCode, n: u32) -> ErrorGroup {
        let mut g = ErrorGroup::new();
        for s in 0..n {
            let col = (s as usize) % code.cols();
            let len = 1 + (s as usize) % (code.rows() - 1);
            g.push(PartialStripeError::new(code, s, col, 0, len).unwrap());
        }
        g
    }

    #[test]
    fn round_robin_covers_everything_evenly() {
        let code = StripeCode::build(CodeSpec::Tip, 7).unwrap();
        let g = group(&code, 10);
        let queues = assign_round_robin(&g, 3);
        assert_eq!(queues.len(), 3);
        let mut seen: Vec<usize> = queues.concat();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        let sizes: Vec<usize> = queues.iter().map(|q| q.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn round_robin_more_workers_than_errors() {
        let code = StripeCode::build(CodeSpec::Tip, 7).unwrap();
        let g = group(&code, 2);
        let queues = assign_round_robin(&g, 16);
        assert_eq!(queues.len(), 2);
    }

    #[test]
    fn parallel_generation_matches_serial() {
        let code = StripeCode::build(CodeSpec::TripleStar, 7).unwrap();
        let g = group(&code, 25);
        let serial = generate_schemes_parallel(&code, &g, SchemeKind::FbfCycling, 1).unwrap();
        let parallel = generate_schemes_parallel(&code, &g, SchemeKind::FbfCycling, 4).unwrap();
        assert_eq!(serial, parallel, "scheme generation must be deterministic");
        assert_eq!(serial.len(), 25);
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        let code = StripeCode::build(CodeSpec::Tip, 5).unwrap();
        let g = group(&code, 8);
        let schemes = generate_schemes_parallel(&code, &g, SchemeKind::Typical, 0).unwrap();
        assert_eq!(schemes.len(), 8);
    }

    #[test]
    fn empty_group_yields_no_schemes() {
        let code = StripeCode::build(CodeSpec::Tip, 5).unwrap();
        let schemes =
            generate_schemes_parallel(&code, &ErrorGroup::new(), SchemeKind::Typical, 4).unwrap();
        assert!(schemes.is_empty());
    }
}
