//! Joint-decode repair: the fallback when chain-by-chain repair stalls.
//!
//! Sequential single-chain repair (what the paper's scheme generator
//! produces) is strictly weaker than the code's erasure capability: some
//! multi-column damage patterns — notably on STAR, whose adjuster chains
//! span many columns — admit no ordering in which every repair's chain is
//! fully available, even though the joint GF(2) system is solvable. A real
//! controller then reads every surviving cell the relevant equations touch
//! and solves them *simultaneously*.
//!
//! [`JointRepair`] models exactly that: the read set is the union of the
//! surviving cells of all chains covering any lost cell, the computation is
//! one decoder invocation, and each lost chunk gets a spare write.

use fbf_codes::decode::decode;
use fbf_codes::{Cell, CodeError, Stripe, StripeCode};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A joint-decode plan for one stripe's damage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JointRepair {
    /// The stripe under repair.
    pub stripe: u32,
    /// The lost cells, sorted.
    pub lost: Vec<Cell>,
    /// Surviving cells that must be fetched: every cell of every chain
    /// that covers a lost cell, minus the lost cells themselves. Sorted.
    pub reads: Vec<Cell>,
}

impl JointRepair {
    /// Build the plan for `lost` cells of `stripe`.
    pub fn new(code: &StripeCode, stripe: u32, lost: &[Cell]) -> Self {
        let lost_set: BTreeSet<Cell> = lost.iter().copied().collect();
        let mut reads: BTreeSet<Cell> = BTreeSet::new();
        for &cell in &lost_set {
            for &chain_id in code.chains_of(cell) {
                for c in code.chain(chain_id).all_cells() {
                    if !lost_set.contains(&c) {
                        reads.insert(c);
                    }
                }
            }
        }
        JointRepair {
            stripe,
            lost: lost_set.into_iter().collect(),
            reads: reads.into_iter().collect(),
        }
    }

    /// Number of chunks fetched.
    pub fn read_count(&self) -> usize {
        self.reads.len()
    }

    /// Execute against real payloads: decode the lost cells in place.
    /// (The decoder reads exactly from the chains whose cells this plan
    /// fetches, so the plan's read set is sufficient.)
    pub fn apply(&self, code: &StripeCode, stripe: &mut Stripe) -> Result<(), CodeError> {
        decode(code, stripe, &self.lost).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbf_codes::encode::encode;
    use fbf_codes::CodeSpec;

    #[test]
    fn joint_plan_covers_the_stalling_star_pattern() {
        // STAR p=7, columns {0, 3}, rows 0..4 — chain-by-chain repair is
        // unorderable (see recovery prop tests), joint decode is not.
        let code = StripeCode::build(CodeSpec::Star, 7).unwrap();
        let lost: Vec<Cell> = [0usize, 3]
            .iter()
            .flat_map(|&c| (0..4).map(move |r| Cell::new(r, c)))
            .collect();
        assert!(
            crate::scheme::generate_for_cells(&code, 0, &lost, crate::SchemeKind::FbfCycling)
                .is_err(),
            "precondition: this pattern must actually stall chain repair"
        );

        let plan = JointRepair::new(&code, 0, &lost);
        assert!(plan.read_count() > 0);
        for cell in &plan.reads {
            assert!(!plan.lost.contains(cell));
        }

        let mut pristine = Stripe::patterned(code.layout(), 32);
        encode(&code, &mut pristine).unwrap();
        let mut damaged = pristine.clone();
        for &c in &lost {
            damaged.erase(code.layout(), c);
        }
        plan.apply(&code, &mut damaged).unwrap();
        for &c in &lost {
            assert_eq!(
                damaged.get(code.layout(), c),
                pristine.get(code.layout(), c)
            );
        }
    }

    #[test]
    fn read_set_is_union_of_covering_chains() {
        let code = StripeCode::build(CodeSpec::Tip, 5).unwrap();
        let lost = vec![Cell::new(0, 0)];
        let plan = JointRepair::new(&code, 0, &lost);
        let mut expect: BTreeSet<Cell> = BTreeSet::new();
        for &id in code.chains_of(Cell::new(0, 0)) {
            expect.extend(code.chain(id).all_cells());
        }
        expect.remove(&Cell::new(0, 0));
        assert_eq!(plan.reads, expect.into_iter().collect::<Vec<_>>());
    }
}
