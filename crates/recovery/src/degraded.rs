//! Degraded reads: serving application I/O that hits a lost chunk.
//!
//! While partial stripe errors await (or undergo) repair, applications
//! keep reading the array. A read that lands on a lost chunk cannot be
//! served from disk — the controller synthesizes it on the fly: fan out
//! reads for the cheapest repair chain, XOR, return. This is the
//! degraded-read path of Khan et al. (the paper's reference \[36\]) and the
//! second reason FBF holds favorable blocks: "the application can access
//! these chunks during partial stripe reconstruction" (§III-A-1). A warm
//! favorable block turns part of the fan-out into cache hits and cuts the
//! degraded read's latency.

use crate::error::ErrorGroup;
use crate::priority::PriorityDictionary;
use fbf_codes::repair::usable_repair_options;
use fbf_codes::{Cell, ChunkId, StripeCode};
use fbf_disksim::{Op, SimTime, WorkerScript};
use std::collections::HashMap;

/// Lost-chunk lookup for a campaign: stripe → lost cells.
#[derive(Debug, Clone, Default)]
pub struct LostMap {
    lost: HashMap<u32, Vec<Cell>>,
}

impl LostMap {
    /// Index an error campaign.
    pub fn from_group(group: &ErrorGroup) -> Self {
        let mut lost: HashMap<u32, Vec<Cell>> = HashMap::new();
        for e in &group.errors {
            lost.entry(e.stripe).or_default().extend(e.cells());
        }
        LostMap { lost }
    }

    /// Is the chunk currently lost?
    pub fn is_lost(&self, chunk: &ChunkId) -> bool {
        self.lost
            .get(&chunk.stripe)
            .is_some_and(|cells| cells.contains(&chunk.cell))
    }

    /// The lost cells of a stripe (empty slice when undamaged).
    pub fn lost_cells(&self, stripe: u32) -> &[Cell] {
        self.lost.get(&stripe).map_or(&[], |v| v.as_slice())
    }

    /// Total lost chunks indexed.
    pub fn len(&self) -> usize {
        self.lost.values().map(|v| v.len()).sum()
    }

    /// No damage indexed?
    pub fn is_empty(&self) -> bool {
        self.lost.is_empty()
    }
}

/// Rewrite an application read stream into its *degraded* form: reads of
/// healthy chunks pass through; reads of lost chunks become a parallel
/// fan-out of the cheapest usable repair chain plus an XOR compute step.
///
/// Returns the degraded script and the number of reads that were
/// degraded. Priorities for fan-out chunks come from `dictionary`, so a
/// concurrently running FBF reconstruction keeps its favorable blocks hot
/// for exactly these fan-outs.
pub fn degrade_script(
    code: &StripeCode,
    app: &WorkerScript,
    lost: &LostMap,
    dictionary: &PriorityDictionary,
    xor_time_per_chunk: SimTime,
) -> (WorkerScript, usize) {
    // Degraded reads are still application reads — keep the app stream's
    // request class so latency attribution does not misfile them as
    // recovery traffic.
    let mut out = WorkerScript {
        class: app.class,
        ..Default::default()
    };
    let mut degraded = 0usize;
    for op in &app.ops {
        match *op {
            Op::Read { chunk, priority } if lost.is_lost(&chunk) => {
                degraded += 1;
                let lost_cells = lost.lost_cells(chunk.stripe);
                let options = usable_repair_options(code, chunk.cell, lost_cells);
                let Some(best) = options.first() else {
                    // Unrepairable on the fly (should not happen for
                    // single-column damage); fall back to a plain read —
                    // the simulator treats it as served from the spare.
                    out.ops.push(Op::Read { chunk, priority });
                    continue;
                };
                let fan_out: Vec<(ChunkId, u8)> = best
                    .reads
                    .iter()
                    .map(|&cell| {
                        let id = ChunkId::new(chunk.stripe, cell);
                        (id, dictionary.priority_of(&id))
                    })
                    .collect();
                let n = fan_out.len() as u64;
                out.push_gather(fan_out);
                out.ops.push(Op::Compute {
                    duration: SimTime::from_nanos(xor_time_per_chunk.as_nanos() * n),
                });
            }
            other => out.ops.push(other),
        }
    }
    (out, degraded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::PartialStripeError;
    use fbf_codes::CodeSpec;

    fn setup() -> (StripeCode, ErrorGroup) {
        let code = StripeCode::build(CodeSpec::Tip, 7).unwrap();
        let mut group = ErrorGroup::new();
        group.push(PartialStripeError::new(&code, 3, 0, 0, 4).unwrap());
        group.push(PartialStripeError::new(&code, 9, 2, 1, 2).unwrap());
        (code, group)
    }

    #[test]
    fn lost_map_indexes_campaign() {
        let (code, group) = setup();
        let lost = LostMap::from_group(&group);
        assert_eq!(lost.len(), 6);
        assert!(lost.is_lost(&ChunkId::new(3, Cell::new(0, 0))));
        assert!(lost.is_lost(&ChunkId::new(9, Cell::new(2, 2))));
        assert!(!lost.is_lost(&ChunkId::new(3, Cell::new(0, 1))));
        assert!(!lost.is_lost(&ChunkId::new(4, Cell::new(0, 0))));
        let _ = code;
    }

    #[test]
    fn healthy_reads_pass_through() {
        let (code, group) = setup();
        let lost = LostMap::from_group(&group);
        let app = WorkerScript {
            ops: vec![Op::Read {
                chunk: ChunkId::new(5, Cell::new(1, 1)),
                priority: 1,
            }],
            ..Default::default()
        };
        let (out, degraded) = degrade_script(
            &code,
            &app,
            &lost,
            &PriorityDictionary::new(),
            SimTime::from_micros(8),
        );
        assert_eq!(degraded, 0);
        assert_eq!(out.ops, app.ops);
    }

    #[test]
    fn lost_reads_become_gathers() {
        let (code, group) = setup();
        let lost = LostMap::from_group(&group);
        let target = ChunkId::new(3, Cell::new(1, 0));
        let app = WorkerScript {
            ops: vec![Op::Read {
                chunk: target,
                priority: 1,
            }],
            ..Default::default()
        };
        let (out, degraded) = degrade_script(
            &code,
            &app,
            &lost,
            &PriorityDictionary::new(),
            SimTime::from_micros(8),
        );
        assert_eq!(degraded, 1);
        assert_eq!(out.gathers.len(), 1);
        // The fan-out avoids other lost cells of the stripe.
        for (chunk, _) in &out.gathers[0].chunks {
            assert!(!lost.is_lost(chunk), "fan-out reads a lost chunk: {chunk}");
        }
        // Followed by an XOR compute step.
        assert!(matches!(out.ops[1], Op::Compute { .. }));
    }

    #[test]
    fn degraded_fan_out_has_chain_length() {
        let (code, group) = setup();
        let lost = LostMap::from_group(&group);
        let target = ChunkId::new(9, Cell::new(1, 2));
        let app = WorkerScript {
            ops: vec![Op::Read {
                chunk: target,
                priority: 1,
            }],
            ..Default::default()
        };
        let (out, _) = degrade_script(
            &code,
            &app,
            &lost,
            &PriorityDictionary::new(),
            SimTime::ZERO,
        );
        // Cheapest chain for a TIP(p=7) data cell has >= 4 surviving cells.
        assert!(out.gathers[0].chunks.len() >= 4);
    }
}
