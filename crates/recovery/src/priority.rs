//! The priority dictionary (§III-A-1, Table II).
//!
//! After the recovery scheme is fixed, every chunk it will fetch gets a
//! priority equal to the number of chosen parity chains referencing it,
//! saturated at 3:
//!
//! | Priority | Shared by | Reduced I/Os |
//! |---------:|-----------|--------------|
//! | 3        | ≥ 3 chains | ≤ 2          |
//! | 2        | 2 chains   | ≤ 1          |
//! | 1        | 1 chain    | 0            |
//!
//! The dictionary is consulted by the RAID controller when a fetched chunk
//! is inserted into the FBF cache. Chunks outside any scheme (e.g.
//! application reads during recovery) default to priority 1.

use crate::scheme::RecoveryScheme;
use fbf_codes::hash::FxHashMap;
use fbf_codes::{Cell, ChunkId};
use serde::{Deserialize, Serialize};

/// Priorities for every chunk the schemes will touch.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PriorityDictionary {
    map: FxHashMap<ChunkId, u8>,
}

impl PriorityDictionary {
    /// Empty dictionary (everything priority 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from one scheme.
    pub fn from_scheme(scheme: &RecoveryScheme) -> Self {
        let mut d = Self::new();
        d.add_scheme(scheme);
        d
    }

    /// Build from a whole campaign of schemes.
    pub fn from_schemes<'a>(schemes: impl IntoIterator<Item = &'a RecoveryScheme>) -> Self {
        let mut d = Self::new();
        for s in schemes {
            d.add_scheme(s);
        }
        d
    }

    /// Merge one scheme's share counts in.
    pub fn add_scheme(&mut self, scheme: &RecoveryScheme) {
        for (cell, count) in scheme.share_count_list() {
            let chunk = ChunkId::new(scheme.stripe, cell);
            let prio = priority_for_count(count);
            // A chunk shared across schemes keeps its highest priority.
            let entry = self.map.entry(chunk).or_insert(1);
            *entry = (*entry).max(prio);
        }
    }

    /// Priority of a chunk; 1 when unknown.
    pub fn priority_of(&self, chunk: &ChunkId) -> u8 {
        self.map.get(chunk).copied().unwrap_or(1)
    }

    /// Chunks holding a given priority, unordered. Used by reports and the
    /// Table III reproduction example.
    pub fn chunks_with_priority(&self, prio: u8) -> Vec<ChunkId> {
        self.map
            .iter()
            .filter(|&(_, &p)| p == prio)
            .map(|(&k, _)| k)
            .collect()
    }

    /// Cells (within `stripe`) holding a given priority, sorted — matches
    /// the paper's Table III presentation.
    pub fn cells_with_priority(&self, stripe: u32, prio: u8) -> Vec<Cell> {
        let mut v: Vec<Cell> = self
            .map
            .iter()
            .filter(|&(k, &p)| k.stripe == stripe && p == prio)
            .map(|(k, _)| k.cell)
            .collect();
        v.sort_unstable();
        v
    }

    /// Number of known chunks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the dictionary empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Table II's mapping from share count to priority.
pub fn priority_for_count(count: usize) -> u8 {
    match count {
        0 | 1 => 1,
        2 => 2,
        _ => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::PartialStripeError;
    use crate::scheme::{generate, SchemeKind};
    use fbf_codes::{CodeSpec, StripeCode};

    #[test]
    fn table2_mapping() {
        assert_eq!(priority_for_count(0), 1);
        assert_eq!(priority_for_count(1), 1);
        assert_eq!(priority_for_count(2), 2);
        assert_eq!(priority_for_count(3), 3);
        assert_eq!(priority_for_count(7), 3);
    }

    #[test]
    fn dictionary_matches_brute_force_counts() {
        let code = StripeCode::build(CodeSpec::Tip, 7).unwrap();
        let e = PartialStripeError::new(&code, 0, 0, 0, 5).unwrap();
        let s = generate(&code, &e, SchemeKind::FbfCycling).unwrap();
        let d = PriorityDictionary::from_scheme(&s);
        for (cell, count) in s.share_counts() {
            let chunk = ChunkId::new(0, cell);
            assert_eq!(d.priority_of(&chunk), priority_for_count(count), "{cell}");
        }
    }

    #[test]
    fn unknown_chunks_default_to_one() {
        let d = PriorityDictionary::new();
        assert_eq!(d.priority_of(&ChunkId::new(9, Cell::new(0, 0))), 1);
    }

    #[test]
    fn cross_scheme_chunks_keep_highest_priority() {
        let code = StripeCode::build(CodeSpec::Tip, 7).unwrap();
        let e = PartialStripeError::new(&code, 0, 0, 0, 5).unwrap();
        let s = generate(&code, &e, SchemeKind::FbfCycling).unwrap();
        let mut d = PriorityDictionary::from_scheme(&s);
        let before: Vec<(ChunkId, u8)> = s
            .share_counts()
            .keys()
            .map(|&c| {
                let id = ChunkId::new(0, c);
                (id, d.priority_of(&id))
            })
            .collect();
        // Adding the same scheme again must not lower any priority.
        d.add_scheme(&s);
        for (id, p) in before {
            assert!(d.priority_of(&id) >= p);
        }
    }

    #[test]
    fn fbf_scheme_produces_multilevel_priorities() {
        // The Fig. 3 scenario shape: a 5-chunk error on disk 0 of TIP(p=7)
        // yields chunks at more than one priority level.
        let code = StripeCode::build(CodeSpec::Tip, 7).unwrap();
        let e = PartialStripeError::new(&code, 0, 0, 0, 5).unwrap();
        let s = generate(&code, &e, SchemeKind::FbfCycling).unwrap();
        let d = PriorityDictionary::from_scheme(&s);
        let p1 = d.cells_with_priority(0, 1).len();
        let p2plus = d.cells_with_priority(0, 2).len() + d.cells_with_priority(0, 3).len();
        assert!(p1 > 0, "some single-reference chunks");
        assert!(p2plus > 0, "some shared chunks (Table III shape)");
    }

    #[test]
    fn typical_scheme_is_all_priority_one() {
        let code = StripeCode::build(CodeSpec::Tip, 7).unwrap();
        let e = PartialStripeError::new(&code, 0, 0, 0, 5).unwrap();
        let s = generate(&code, &e, SchemeKind::Typical).unwrap();
        let d = PriorityDictionary::from_scheme(&s);
        assert!(d.cells_with_priority(0, 2).is_empty());
        assert!(d.cells_with_priority(0, 3).is_empty());
        assert_eq!(d.cells_with_priority(0, 1).len(), d.len());
    }
}
