//! Background scrubbing: detecting and locating *silent* corruption.
//!
//! §II-C of the paper motivates partial-stripe repair with software errors
//! that no disk-level CRC catches — misdirected/torn writes, data-path
//! corruption, parity pollution ("8.5% of SATA disks would develop silent
//! corruptions, and 13% of them are even missed by background
//! verification"). A partial stripe error can only be repaired once it is
//! *found*, and a scrubber is how arrays find them.
//!
//! The scrubber works from chain *syndromes*: for every parity chain, the
//! XOR of all its cells (members ⊕ parity) must be zero. A corrupted cell
//! flips exactly the chains that cover it, so the *violation pattern* is a
//! fingerprint:
//!
//! * compute the violated chain set;
//! * a candidate corruption set is any small set of cells whose combined
//!   (symmetric-difference) coverage equals the violated set;
//! * if the location is unambiguous, repair = erase the located cells and
//!   run the ordinary erasure decoder.
//!
//! Location is exact for single corrupted cells whose coverage fingerprint
//! is unique (the common case) and enumerates candidates for pairs.

use fbf_codes::decode::decode;
use fbf_codes::{Cell, ChainId, Stripe, StripeCode};
use std::collections::BTreeSet;

/// Result of a scrub pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScrubOutcome {
    /// Every chain syndrome was zero.
    Clean,
    /// Corruption detected, located unambiguously, repaired and
    /// re-verified.
    Repaired(Vec<Cell>),
    /// Corruption detected but the violation pattern matches several
    /// candidate cell sets — repair refused, candidates reported.
    Ambiguous(Vec<Vec<Cell>>),
    /// Corruption detected and no candidate within the search bound
    /// explains the pattern (more cells corrupted than the scrubber
    /// searches for).
    Unlocatable,
}

/// Chains whose XOR equation does not hold for this stripe.
pub fn violated_chains(code: &StripeCode, stripe: &Stripe) -> BTreeSet<ChainId> {
    fbf_codes::encode::verify(code, stripe)
        .into_iter()
        .collect()
}

/// Candidate corruption sets of size ≤ `max_cells` whose combined coverage
/// equals `violated`. Sorted smallest-first, so single-cell explanations
/// precede pair explanations.
pub fn locate(code: &StripeCode, violated: &BTreeSet<ChainId>, max_cells: usize) -> Vec<Vec<Cell>> {
    if violated.is_empty() {
        return Vec::new();
    }
    let mut candidates = Vec::new();
    let cells: Vec<Cell> = code.layout().cells().collect();

    // Size 1: coverage must equal the violated set exactly.
    for &cell in &cells {
        let cover: BTreeSet<ChainId> = code.chains_of(cell).iter().copied().collect();
        if !cover.is_empty() && cover == *violated {
            candidates.push(vec![cell]);
        }
    }
    if max_cells >= 2 && candidates.is_empty() {
        // Size 2: symmetric difference of the two coverages (a chain
        // covering both cells sees both corruptions cancel only if the
        // corrupting XOR deltas are equal — generically they are not, so
        // we use the union for shared chains; to stay conservative we
        // accept both the symmetric-difference and union interpretations).
        for i in 0..cells.len() {
            let ca: BTreeSet<ChainId> = code.chains_of(cells[i]).iter().copied().collect();
            if ca.is_empty() {
                continue;
            }
            for j in i + 1..cells.len() {
                let cb: BTreeSet<ChainId> = code.chains_of(cells[j]).iter().copied().collect();
                if cb.is_empty() {
                    continue;
                }
                let union: BTreeSet<ChainId> = ca.union(&cb).copied().collect();
                let symdiff: BTreeSet<ChainId> = ca.symmetric_difference(&cb).copied().collect();
                if union == *violated || symdiff == *violated {
                    candidates.push(vec![cells[i], cells[j]]);
                }
            }
        }
    }
    candidates
}

/// One full scrub pass: verify, locate, repair, re-verify.
///
/// `max_cells` bounds the located corruption size (2 covers the spatially
/// correlated double-corruption case the LSE studies describe).
pub fn scrub(code: &StripeCode, stripe: &mut Stripe, max_cells: usize) -> ScrubOutcome {
    let violated = violated_chains(code, stripe);
    if violated.is_empty() {
        return ScrubOutcome::Clean;
    }
    let candidates = locate(code, &violated, max_cells);
    match candidates.len() {
        0 => ScrubOutcome::Unlocatable,
        1 => {
            let cells = candidates.into_iter().next().expect("len checked");
            // Treat the located cells as erasures and decode.
            if decode(code, stripe, &cells).is_err() {
                return ScrubOutcome::Unlocatable;
            }
            if violated_chains(code, stripe).is_empty() {
                ScrubOutcome::Repaired(cells)
            } else {
                ScrubOutcome::Unlocatable
            }
        }
        _ => ScrubOutcome::Ambiguous(candidates),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbf_codes::encode::encode;
    use fbf_codes::CodeSpec;

    fn encoded(spec: CodeSpec, p: usize) -> (StripeCode, Stripe) {
        let code = StripeCode::build(spec, p).unwrap();
        let mut stripe = Stripe::patterned(code.layout(), 32);
        encode(&code, &mut stripe).unwrap();
        (code, stripe)
    }

    fn corrupt(code: &StripeCode, stripe: &mut Stripe, cell: Cell) {
        let mut buf = stripe.get(code.layout(), cell).to_vec();
        buf[0] ^= 0x5A;
        buf[7] ^= 0xFF;
        stripe.set(code.layout(), cell, bytes::Bytes::from(buf));
    }

    #[test]
    fn clean_stripe_is_clean() {
        let (code, mut stripe) = encoded(CodeSpec::Tip, 7);
        assert_eq!(scrub(&code, &mut stripe, 2), ScrubOutcome::Clean);
    }

    #[test]
    fn single_corruption_located_and_repaired() {
        for spec in CodeSpec::ALL {
            let (code, pristine) = encoded(spec, 7);
            let mut repaired = 0;
            for cell in code.layout().cells().collect::<Vec<_>>() {
                let mut s = pristine.clone();
                corrupt(&code, &mut s, cell);
                match scrub(&code, &mut s, 1) {
                    ScrubOutcome::Repaired(located) => {
                        assert_eq!(located, vec![cell], "{spec:?} {cell}");
                        assert_eq!(
                            s.get(code.layout(), cell),
                            pristine.get(code.layout(), cell)
                        );
                        repaired += 1;
                    }
                    ScrubOutcome::Ambiguous(_) => {
                        // Some cells share a coverage fingerprint (possible
                        // for parity-only cells); ambiguity is honest.
                    }
                    other => panic!("{spec:?} {cell}: unexpected {other:?}"),
                }
            }
            assert!(
                repaired * 10 >= code.layout().len() * 8,
                "{spec:?}: at least 80% of cells must have unique fingerprints, got {repaired}/{}",
                code.layout().len()
            );
        }
    }

    #[test]
    fn violated_chains_match_coverage() {
        let (code, mut stripe) = encoded(CodeSpec::TripleStar, 7);
        let cell = Cell::new(2, 3);
        corrupt(&code, &mut stripe, cell);
        let violated = violated_chains(&code, &stripe);
        let cover: BTreeSet<ChainId> = code.chains_of(cell).iter().copied().collect();
        assert_eq!(violated, cover);
    }

    #[test]
    fn unlocatable_when_too_many_corruptions() {
        let (code, mut stripe) = encoded(CodeSpec::Tip, 7);
        // Corrupt four cells: beyond the max_cells=1 search bound; the
        // combined pattern should not be explainable by a single cell.
        for cell in [
            Cell::new(0, 1),
            Cell::new(2, 3),
            Cell::new(4, 2),
            Cell::new(5, 4),
        ] {
            corrupt(&code, &mut stripe, cell);
        }
        match scrub(&code, &mut stripe, 1) {
            ScrubOutcome::Unlocatable | ScrubOutcome::Ambiguous(_) => {}
            other => panic!("expected failure to locate, got {other:?}"),
        }
    }

    #[test]
    fn repair_then_clean() {
        let (code, mut stripe) = encoded(CodeSpec::Star, 5);
        corrupt(&code, &mut stripe, Cell::new(1, 2));
        match scrub(&code, &mut stripe, 1) {
            ScrubOutcome::Repaired(_) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(scrub(&code, &mut stripe, 1), ScrubOutcome::Clean);
    }
}
