//! Reconstruction execution: schemes → simulator scripts, and scheme
//! application on real payloads.
//!
//! [`build_scripts`] lowers a campaign of recovery schemes into
//! [`WorkerScript`]s for the simulator: every repair becomes its read
//! burst (through the buffer cache, carrying FBF priorities), an XOR
//! compute step, and a spare-area write. Stripes are distributed over SOR
//! workers round-robin.
//!
//! [`apply_scheme`] executes a scheme against actual stripe bytes so the
//! integration tests can assert that the recovered payloads equal the
//! originals — the schemes are not just plausible, they are *correct*.

use crate::controller::StripePlan;
use crate::error::ErrorGroup;
use crate::priority::PriorityDictionary;
use crate::scheme::RecoveryScheme;
use fbf_codes::{ChunkId, CodeError, Stripe, StripeCode};
use fbf_disksim::{Op, RequestClass, SimTime, WorkerScript};
use serde::{Deserialize, Serialize};

/// Execution-shaping parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExecConfig {
    /// Number of SOR reconstruction workers (the paper runs 128).
    pub workers: usize,
    /// XOR cost charged per chunk participating in a repair.
    pub xor_time_per_chunk: SimTime,
    /// Request class stamped on every lowered script — recovery traffic
    /// by default; escalation rounds lower with [`RequestClass::Replan`]
    /// so the latency attribution separates first-pass repair from
    /// re-planned retries.
    pub class: RequestClass,
    /// Stripes decoded per data-plane batch round (`run_planned_on`
    /// gathers all of a batch's chunk reads, then runs one XOR kernel pass
    /// per stripe). Script lowering ignores it — the engine charges XOR as
    /// virtual [`Op::Compute`] time either way — but it rides along here
    /// so the executor and the simulator are shaped by one config.
    pub decode_batch: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            workers: 128,
            // 32 KB XOR at a conservative 4 GB/s.
            xor_time_per_chunk: SimTime::from_micros(8),
            class: RequestClass::Recovery,
            decode_batch: 8,
        }
    }
}

/// Worker count actually used for a campaign of `stripes` stripes: capped
/// at the stripe count (extra workers would sit idle) but never silently
/// promoted from zero — `workers == 0` is a configuration bug the caller
/// must reject up front (`ExperimentConfig::validate` returns
/// `ConfigError::ZeroWorkers`), not a value to paper over.
fn effective_workers(config: &ExecConfig, stripes: usize) -> usize {
    assert!(
        config.workers > 0,
        "ExecConfig.workers must be positive (validate the config first)"
    );
    config.workers.min(stripes.max(1))
}

/// Lower a campaign into per-worker scripts.
///
/// Scheme `i` (one stripe) goes to worker `i % workers` — SOR's
/// stripe-oriented partitioning; each worker repairs its stripes strictly
/// in order.
pub fn build_scripts(
    schemes: &[RecoveryScheme],
    dictionary: &PriorityDictionary,
    config: &ExecConfig,
) -> Vec<WorkerScript> {
    let workers = effective_workers(config, schemes.len());
    let mut scripts = vec![
        WorkerScript {
            class: config.class,
            ..Default::default()
        };
        workers
    ];
    for (i, scheme) in schemes.iter().enumerate() {
        let script = &mut scripts[i % workers];
        for repair in &scheme.repairs {
            for &cell in &repair.option.reads {
                let chunk = ChunkId::new(scheme.stripe, cell);
                script.ops.push(Op::Read {
                    chunk,
                    priority: dictionary.priority_of(&chunk),
                });
            }
            let xor_chunks = repair.option.reads.len() as u64;
            script.ops.push(Op::Compute {
                duration: SimTime::from_nanos(config.xor_time_per_chunk.as_nanos() * xor_chunks),
            });
            script.ops.push(Op::Write {
                chunk: ChunkId::new(scheme.stripe, repair.target),
            });
        }
    }
    scripts
}

/// Lower a campaign of [`StripePlan`]s (chained + joint fallbacks) into
/// per-worker scripts. Chained plans lower exactly as [`build_scripts`];
/// joint plans become one parallel fan-out of the whole read set, a decode
/// computation, and the spare writes.
pub fn build_scripts_from_plans(
    plans: &[StripePlan],
    dictionary: &PriorityDictionary,
    config: &ExecConfig,
) -> Vec<WorkerScript> {
    let workers = effective_workers(config, plans.len());
    let mut scripts = vec![
        WorkerScript {
            class: config.class,
            ..Default::default()
        };
        workers
    ];
    for (i, plan) in plans.iter().enumerate() {
        let script = &mut scripts[i % workers];
        match plan {
            StripePlan::Chained(scheme) => {
                for repair in &scheme.repairs {
                    for &cell in &repair.option.reads {
                        let chunk = ChunkId::new(scheme.stripe, cell);
                        script.ops.push(Op::Read {
                            chunk,
                            priority: dictionary.priority_of(&chunk),
                        });
                    }
                    let xor_chunks = repair.option.reads.len() as u64;
                    script.ops.push(Op::Compute {
                        duration: SimTime::from_nanos(
                            config.xor_time_per_chunk.as_nanos() * xor_chunks,
                        ),
                    });
                    script.ops.push(Op::Write {
                        chunk: ChunkId::new(scheme.stripe, repair.target),
                    });
                }
            }
            StripePlan::Joint(joint) => {
                let fan_out: Vec<(ChunkId, u8)> = joint
                    .reads
                    .iter()
                    .map(|&cell| {
                        let id = ChunkId::new(joint.stripe, cell);
                        (id, dictionary.priority_of(&id))
                    })
                    .collect();
                let n = fan_out.len() as u64;
                script.push_gather(fan_out);
                // Joint decode costs roughly one XOR pass per equation row
                // touched — charge reads + lost as a conservative bound.
                script.ops.push(Op::Compute {
                    duration: SimTime::from_nanos(
                        config.xor_time_per_chunk.as_nanos() * (n + joint.lost.len() as u64),
                    ),
                });
                for &cell in &joint.lost {
                    script.ops.push(Op::Write {
                        chunk: ChunkId::new(joint.stripe, cell),
                    });
                }
            }
        }
    }
    scripts
}

/// Apply a scheme to real stripe payloads: for each repair, XOR the read
/// cells into the target. The caller is expected to have erased (or
/// corrupted) the lost cells; on return they hold the recovered bytes.
pub fn apply_scheme(
    code: &StripeCode,
    stripe: &mut Stripe,
    scheme: &RecoveryScheme,
) -> Result<(), CodeError> {
    for repair in &scheme.repairs {
        let recovered = stripe.xor_cells(code.layout(), &repair.option.reads);
        stripe.set(code.layout(), repair.target, recovered);
    }
    Ok(())
}

/// Total chunk-read references a campaign will issue (cache-independent).
pub fn total_read_refs(schemes: &[RecoveryScheme]) -> usize {
    schemes.iter().map(|s| s.total_read_slots()).sum()
}

/// Helper: campaign statistics for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignShape {
    /// Number of stripes under repair.
    pub stripes: usize,
    /// Total lost chunks.
    pub lost_chunks: usize,
    /// Total read references.
    pub read_refs: usize,
    /// Distinct chunks fetched.
    pub unique_reads: usize,
}

/// Summarise a campaign.
pub fn campaign_shape(group: &ErrorGroup, schemes: &[RecoveryScheme]) -> CampaignShape {
    CampaignShape {
        stripes: schemes.len(),
        lost_chunks: group.total_lost_chunks(),
        read_refs: total_read_refs(schemes),
        unique_reads: schemes.iter().map(|s| s.unique_reads()).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::PartialStripeError;
    use crate::scheme::{generate, SchemeKind};
    use fbf_codes::encode::encode;
    use fbf_codes::CodeSpec;

    fn setup() -> (StripeCode, Stripe) {
        let code = StripeCode::build(CodeSpec::Tip, 7).unwrap();
        let mut stripe = Stripe::patterned(code.layout(), 64);
        encode(&code, &mut stripe).unwrap();
        (code, stripe)
    }

    #[test]
    fn apply_scheme_recovers_exact_bytes() {
        for kind in SchemeKind::ALL {
            let (code, original) = setup();
            let e = PartialStripeError::new(&code, 0, 0, 1, 5).unwrap();
            let scheme = generate(&code, &e, kind).unwrap();
            let mut damaged = original.clone();
            for cell in e.cells() {
                damaged.erase(code.layout(), cell);
            }
            apply_scheme(&code, &mut damaged, &scheme).unwrap();
            for cell in e.cells() {
                assert_eq!(
                    damaged.get(code.layout(), cell),
                    original.get(code.layout(), cell),
                    "{kind}: {cell} not recovered"
                );
            }
        }
    }

    #[test]
    fn apply_scheme_recovers_every_code_and_column() {
        for spec in CodeSpec::ALL {
            let code = StripeCode::build(spec, 5).unwrap();
            let mut original = Stripe::patterned(code.layout(), 32);
            encode(&code, &mut original).unwrap();
            for col in 0..code.cols() {
                let e = PartialStripeError::new(&code, 0, col, 0, code.rows() - 1).unwrap();
                let scheme = generate(&code, &e, SchemeKind::FbfCycling).unwrap();
                let mut damaged = original.clone();
                for cell in e.cells() {
                    damaged.erase(code.layout(), cell);
                }
                apply_scheme(&code, &mut damaged, &scheme).unwrap();
                for cell in e.cells() {
                    assert_eq!(
                        damaged.get(code.layout(), cell),
                        original.get(code.layout(), cell),
                        "{spec:?} col {col} {cell}"
                    );
                }
            }
        }
    }

    #[test]
    fn scripts_cover_all_repairs() {
        let (code, _) = setup();
        let e = PartialStripeError::new(&code, 0, 0, 0, 5).unwrap();
        let scheme = generate(&code, &e, SchemeKind::FbfCycling).unwrap();
        let dict = PriorityDictionary::from_scheme(&scheme);
        let scripts = build_scripts(
            std::slice::from_ref(&scheme),
            &dict,
            &ExecConfig {
                workers: 4,
                ..Default::default()
            },
        );
        // One stripe → one busy worker.
        let busy: Vec<&WorkerScript> = scripts.iter().filter(|s| !s.ops.is_empty()).collect();
        assert_eq!(busy.len(), 1);
        let reads = busy[0].reads();
        assert_eq!(reads, scheme.total_read_slots());
        let writes = busy[0]
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Write { .. }))
            .count();
        assert_eq!(writes, 5);
    }

    #[test]
    fn scripts_carry_dictionary_priorities() {
        let (code, _) = setup();
        let e = PartialStripeError::new(&code, 0, 0, 0, 5).unwrap();
        let scheme = generate(&code, &e, SchemeKind::FbfCycling).unwrap();
        let dict = PriorityDictionary::from_scheme(&scheme);
        let scripts = build_scripts(
            std::slice::from_ref(&scheme),
            &dict,
            &ExecConfig {
                workers: 1,
                ..Default::default()
            },
        );
        for op in &scripts[0].ops {
            if let Op::Read { chunk, priority } = op {
                assert_eq!(*priority, dict.priority_of(chunk));
            }
        }
    }

    #[test]
    fn stripes_distribute_round_robin() {
        let (code, _) = setup();
        let schemes: Vec<RecoveryScheme> = (0..6)
            .map(|s| {
                let e = PartialStripeError::new(&code, s, 0, 0, 3).unwrap();
                generate(&code, &e, SchemeKind::Typical).unwrap()
            })
            .collect();
        let dict = PriorityDictionary::from_schemes(&schemes);
        let scripts = build_scripts(
            &schemes,
            &dict,
            &ExecConfig {
                workers: 3,
                ..Default::default()
            },
        );
        assert_eq!(scripts.len(), 3);
        for s in &scripts {
            assert!(!s.ops.is_empty(), "every worker gets stripes");
        }
    }

    #[test]
    fn worker_count_capped_by_stripes() {
        let (code, _) = setup();
        let e = PartialStripeError::new(&code, 0, 0, 0, 2).unwrap();
        let scheme = generate(&code, &e, SchemeKind::Typical).unwrap();
        let dict = PriorityDictionary::from_scheme(&scheme);
        let scripts = build_scripts(
            std::slice::from_ref(&scheme),
            &dict,
            &ExecConfig {
                workers: 128,
                ..Default::default()
            },
        );
        assert_eq!(scripts.len(), 1, "no point in more workers than stripes");
    }

    #[test]
    #[should_panic(expected = "workers must be positive")]
    fn zero_workers_is_a_programmer_error() {
        let (code, _) = setup();
        let e = PartialStripeError::new(&code, 0, 0, 0, 2).unwrap();
        let scheme = generate(&code, &e, SchemeKind::Typical).unwrap();
        let dict = PriorityDictionary::from_scheme(&scheme);
        build_scripts(
            std::slice::from_ref(&scheme),
            &dict,
            &ExecConfig {
                workers: 0,
                ..Default::default()
            },
        );
    }

    #[test]
    fn campaign_shape_sums() {
        let (code, _) = setup();
        let mut group = ErrorGroup::new();
        let mut schemes = Vec::new();
        for s in 0..3 {
            let e = PartialStripeError::new(&code, s, 0, 0, 4).unwrap();
            group.push(e);
            schemes.push(generate(&code, &e, SchemeKind::FbfCycling).unwrap());
        }
        let shape = campaign_shape(&group, &schemes);
        assert_eq!(shape.stripes, 3);
        assert_eq!(shape.lost_chunks, 12);
        assert_eq!(shape.read_refs, total_read_refs(&schemes));
        assert!(shape.unique_reads <= shape.read_refs);
    }
}
