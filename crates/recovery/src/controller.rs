//! The Recovery Method Generator of the paper's Fig. 4, as a service.
//!
//! The RAID controller receives partial-stripe error notifications and
//! must produce, per stripe: a recovery scheme, the priority dictionary
//! entries, and the worker script. §III-A-1 points out that the expensive
//! part — scheme generation — only depends on the error's *format* (which
//! column, which rows), not on the stripe number: "these priorities can
//! be enumerated once a same format of partial stripe error is detected
//! again, and no more calculation is required".
//!
//! [`RecoveryController`] implements exactly that: schemes are memoised by
//! damage format and restamped per stripe, which turns the per-stripe
//! planning cost into a hash lookup for recurring formats (most formats
//! recur heavily in a campaign — there are only `O(cols · rows²)` of
//! them). The `table4_overhead` bench measures the effect.

use crate::error::{ErrorGroup, StripeDamage};
use crate::joint::JointRepair;
use crate::priority::PriorityDictionary;
use crate::scheme::{generate_for_cells, RecoveryScheme, SchemeError, SchemeKind};
use fbf_codes::hash::FxHashMap;
use fbf_codes::{Cell, StripeCode};
use std::borrow::Borrow;

/// One stripe's repair plan: chain-by-chain (the normal case) or a joint
/// decode (fallback when no chain ordering exists — see [`crate::joint`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StripePlan {
    /// Ordered single-chain repairs.
    Chained(RecoveryScheme),
    /// Fetch-everything-and-solve fallback.
    Joint(JointRepair),
}

impl StripePlan {
    /// The stripe this plan repairs.
    pub fn stripe(&self) -> u32 {
        match self {
            StripePlan::Chained(s) => s.stripe,
            StripePlan::Joint(j) => j.stripe,
        }
    }
}

/// Damage format: the stripe-independent shape of a lost-cell set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Format(Vec<Cell>);

/// Lets the memo be probed with a borrowed cell slice, so the hit path —
/// the common case in a campaign — allocates nothing. Sound because
/// `Vec<Cell>` hashes and compares exactly as its slice does.
impl Borrow<[Cell]> for Format {
    fn borrow(&self) -> &[Cell] {
        &self.0
    }
}

/// Scheme generator with format memoisation.
pub struct RecoveryController<'a> {
    code: &'a StripeCode,
    kind: SchemeKind,
    memo: FxHashMap<Format, RecoveryScheme>,
    hits: usize,
    misses: usize,
}

impl<'a> RecoveryController<'a> {
    /// A controller for `code` using the `kind` scheme generator.
    pub fn new(code: &'a StripeCode, kind: SchemeKind) -> Self {
        RecoveryController {
            code,
            kind,
            memo: FxHashMap::default(),
            hits: 0,
            misses: 0,
        }
    }

    /// Scheme for one stripe's damage, memoised by format.
    pub fn scheme_for(&mut self, damage: &StripeDamage) -> Result<RecoveryScheme, SchemeError> {
        if let Some(template) = self.memo.get(damage.cells.as_slice()) {
            self.hits += 1;
            return Ok(RecoveryScheme {
                stripe: damage.stripe,
                kind: template.kind,
                repairs: template.repairs.clone(),
            });
        }
        self.misses += 1;
        let scheme = generate_for_cells(self.code, damage.stripe, &damage.cells, self.kind)?;
        self.memo.insert(
            Format(damage.cells.clone()),
            RecoveryScheme {
                stripe: 0, // template; restamped on reuse
                kind: scheme.kind,
                repairs: scheme.repairs.clone(),
            },
        );
        Ok(scheme)
    }

    /// Plan a whole campaign: schemes (stripe order) plus the merged
    /// priority dictionary.
    pub fn plan_campaign(
        &mut self,
        group: &ErrorGroup,
    ) -> Result<(Vec<RecoveryScheme>, PriorityDictionary), SchemeError> {
        let mut schemes = Vec::new();
        for damage in group.damage_by_stripe() {
            schemes.push(self.scheme_for(&damage)?);
        }
        let dictionary = PriorityDictionary::from_schemes(&schemes);
        Ok((schemes, dictionary))
    }

    /// Plan a campaign with joint-decode fallback: stripes whose damage
    /// cannot be ordered chain-by-chain (possible for multi-column damage
    /// on STAR) become [`StripePlan::Joint`] instead of failing the whole
    /// campaign. Returns the plans (stripe order) and the dictionary built
    /// from the chained schemes (joint reads carry no chain-share
    /// structure, so they default to priority 1).
    pub fn plan_campaign_with_fallback(
        &mut self,
        group: &ErrorGroup,
    ) -> (Vec<StripePlan>, PriorityDictionary) {
        let mut plans = Vec::new();
        let mut chained = Vec::new();
        for damage in group.damage_by_stripe() {
            match self.scheme_for(&damage) {
                Ok(scheme) => {
                    chained.push(scheme.clone());
                    plans.push(StripePlan::Chained(scheme));
                }
                Err(SchemeError::Unschedulable(_)) => {
                    plans.push(StripePlan::Joint(JointRepair::new(
                        self.code,
                        damage.stripe,
                        &damage.cells,
                    )));
                }
            }
        }
        let dictionary = PriorityDictionary::from_schemes(&chained);
        (plans, dictionary)
    }

    /// (memo hits, memo misses) — misses are the only full generations.
    pub fn memo_stats(&self) -> (usize, usize) {
        (self.hits, self.misses)
    }

    /// Distinct formats planned so far.
    pub fn formats(&self) -> usize {
        self.memo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::PartialStripeError;
    use fbf_codes::CodeSpec;

    fn code() -> StripeCode {
        StripeCode::build(CodeSpec::Tip, 7).unwrap()
    }

    #[test]
    fn identical_formats_hit_the_memo() {
        let code = code();
        let mut ctl = RecoveryController::new(&code, SchemeKind::FbfCycling);
        let mut group = ErrorGroup::new();
        for stripe in 0..20 {
            group.push(PartialStripeError::new(&code, stripe, 0, 1, 3).unwrap());
        }
        let (schemes, _) = ctl.plan_campaign(&group).unwrap();
        assert_eq!(schemes.len(), 20);
        let (hits, misses) = ctl.memo_stats();
        assert_eq!(misses, 1, "one format, one generation");
        assert_eq!(hits, 19);
        // Restamping is correct.
        for (i, s) in schemes.iter().enumerate() {
            assert_eq!(s.stripe, i as u32);
        }
        assert_eq!(schemes[0].repairs, schemes[19].repairs);
    }

    #[test]
    fn memoised_schemes_equal_direct_generation() {
        let code = code();
        let mut ctl = RecoveryController::new(&code, SchemeKind::Greedy);
        let mut group = ErrorGroup::new();
        for stripe in 0..10 {
            let col = (stripe as usize) % code.cols();
            group.push(PartialStripeError::new(&code, stripe, col, 0, 4).unwrap());
        }
        let (schemes, dict) = ctl.plan_campaign(&group).unwrap();
        let direct =
            crate::parallel::generate_schemes_parallel(&code, &group, SchemeKind::Greedy, 1)
                .unwrap();
        assert_eq!(schemes, direct);
        let direct_dict = PriorityDictionary::from_schemes(&direct);
        assert_eq!(dict, direct_dict);
    }

    #[test]
    fn distinct_formats_generate_separately() {
        let code = code();
        let mut ctl = RecoveryController::new(&code, SchemeKind::FbfCycling);
        let mut group = ErrorGroup::new();
        group.push(PartialStripeError::new(&code, 0, 0, 0, 2).unwrap());
        group.push(PartialStripeError::new(&code, 1, 0, 0, 3).unwrap());
        group.push(PartialStripeError::new(&code, 2, 1, 0, 2).unwrap());
        ctl.plan_campaign(&group).unwrap();
        assert_eq!(ctl.formats(), 3);
    }
}
