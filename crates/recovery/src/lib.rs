//! # fbf-recovery — partial-stripe recovery for 3DFT arrays
//!
//! Everything between "a partial stripe error was detected" and "worker
//! scripts ready for the simulator":
//!
//! * [`error`] — the failure model: runs of 1..p-1 bad chunks on one disk
//!   of a stripe ([`PartialStripeError`]), grouped into campaigns;
//! * [`scheme`] — recovery-scheme generation. The *typical* scheme repairs
//!   every lost chunk through its horizontal chain (§II, Fig. 2(a)); the
//!   *FBF* scheme cycles the three chain directions to maximise shared
//!   chunks (§III-A-1, Fig. 2(b)/Fig. 3); a *greedy* overlap-maximising
//!   variant is included for ablation;
//! * [`priority`] — the [`PriorityDictionary`]: each chunk's priority is
//!   the number of chosen chains that reference it (Table II), consumed by
//!   the FBF cache policy at insert time;
//! * [`exec`] — turns schemes into [`fbf_disksim::WorkerScript`]s (reads,
//!   XOR compute, spare writes) and can also *apply* a scheme to real
//!   stripe payloads so tests verify recovered bytes;
//! * [`parallel`] — SOR-style partitioning of a campaign across workers,
//!   plus multi-threaded scheme generation using crossbeam scoped threads;
//! * [`scrub`] — background verification: chain-syndrome computation,
//!   silent-corruption location, and repair (§II-C's motivation);
//! * [`degraded`] — on-the-fly repair of application reads that hit lost
//!   chunks (fan-out gathers through the buffer cache);
//! * [`disk_rebuild`] — whole-disk failure as full-column errors, with the
//!   hybrid-chain read-ratio analysis of the paper's reference \[22\].

pub mod controller;
pub mod degraded;
pub mod disk_rebuild;
pub mod error;
pub mod escalate;
pub mod exec;
pub mod joint;
pub mod parallel;
pub mod priority;
pub mod rebuild;
pub mod scheme;
pub mod scrub;

pub use controller::{RecoveryController, StripePlan};
pub use degraded::{degrade_script, LostMap};
pub use disk_rebuild::{rebuild_campaign, rebuild_read_ratio, rebuild_schemes};
pub use error::{ErrorGroup, PartialStripeError, StripeDamage};
pub use escalate::{Absorbed, DataLoss, Escalator};
pub use exec::{apply_scheme, build_scripts, build_scripts_from_plans, ExecConfig};
pub use joint::JointRepair;
pub use parallel::{assign_round_robin, generate_schemes_parallel};
pub use priority::PriorityDictionary;
pub use rebuild::{Fairness, RebuildItem, RebuildScheduler};
pub use scheme::{ChunkRepair, RecoveryScheme, SchemeError, SchemeKind};
pub use scrub::{scrub, ScrubOutcome};
