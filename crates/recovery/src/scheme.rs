//! Recovery-scheme generation: which chain repairs which lost chunk.
//!
//! Three generators:
//!
//! * [`SchemeKind::Typical`] — the conventional scheme (§II, Fig. 2(a)):
//!   every lost chunk is rebuilt through its horizontal parity chain.
//!   Chunks that have no horizontal chain (vertical-parity cells) fall back
//!   to their own chain family.
//! * [`SchemeKind::FbfCycling`] — the paper's scheme (§III-A-1): "we
//!   generate parity chains by simply looping parity chains of three
//!   directions". Lost chunks, in row order, take horizontal, diagonal,
//!   anti-diagonal, horizontal, ... so that neighbouring repairs cross and
//!   share surviving chunks (Fig. 2(b), Fig. 3).
//! * [`SchemeKind::Greedy`] — an ablation upper bound: each repair picks
//!   the chain adding the fewest *new* chunks to the accumulated read set.
//!
//! All generators only select repairs whose read sets avoid still-lost
//! cells; when damage makes that impossible for some target, repairs are
//! ordered so that previously-recovered chunks may be read (they are warm
//! in the buffer by then).

use crate::error::PartialStripeError;
use fbf_codes::hash::FxHashSet;
use fbf_codes::repair::{best_per_direction, RepairOption};
use fbf_codes::{Cell, Direction, StripeCode};
use serde::{Deserialize, Serialize};

/// Which scheme generator to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Horizontal-chains-only (the baseline recovery method).
    Typical,
    /// The paper's direction-cycling FBF scheme.
    FbfCycling,
    /// Greedy overlap maximisation (ablation).
    Greedy,
}

impl SchemeKind {
    /// All generators, for sweeps.
    pub const ALL: [SchemeKind; 3] = [
        SchemeKind::Typical,
        SchemeKind::FbfCycling,
        SchemeKind::Greedy,
    ];

    /// Name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchemeKind::Typical => "typical",
            SchemeKind::FbfCycling => "fbf",
            SchemeKind::Greedy => "greedy",
        }
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Scheme generation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeError {
    /// A lost chunk has no chain whose other cells are all available, even
    /// allowing reads of previously-recovered chunks.
    Unschedulable(Cell),
}

impl std::fmt::Display for SchemeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemeError::Unschedulable(c) => write!(f, "no usable repair chain for {c}"),
        }
    }
}

impl std::error::Error for SchemeError {}

/// One scheduled repair: rebuild `target` by XOR-ing `option.reads`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkRepair {
    /// The lost cell.
    pub target: Cell,
    /// The chosen chain and its read set.
    pub option: RepairOption,
}

/// The ordered repair plan for one partial stripe error.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryScheme {
    /// Stripe this scheme repairs.
    pub stripe: u32,
    /// Generator that produced it.
    pub kind: SchemeKind,
    /// Repairs in execution order (later repairs may read earlier targets).
    pub repairs: Vec<ChunkRepair>,
}

impl RecoveryScheme {
    /// How many times each surviving cell is read across all repairs — the
    /// share counts that become FBF priorities.
    pub fn share_counts(&self) -> std::collections::HashMap<Cell, usize> {
        self.share_count_list().into_iter().collect()
    }

    /// [`share_counts`](Self::share_counts) as a vector in first-read
    /// order. A scheme touches a few dozen cells at most, so a linear-scan
    /// count beats a hash map and allocates once; the priority dictionary
    /// merges thousands of these per campaign.
    pub fn share_count_list(&self) -> Vec<(Cell, usize)> {
        let mut counts: Vec<(Cell, usize)> = Vec::new();
        for repair in &self.repairs {
            for &cell in &repair.option.reads {
                match counts.iter_mut().find(|(c, _)| *c == cell) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((cell, 1)),
                }
            }
        }
        counts
    }

    /// Number of *distinct* chunks the scheme fetches (what an ideal
    /// infinite cache would read from disk).
    pub fn unique_reads(&self) -> usize {
        self.share_count_list().len()
    }

    /// Total read references including re-reads of shared chunks (what a
    /// cacheless executor would issue).
    pub fn total_read_slots(&self) -> usize {
        self.repairs.iter().map(|r| r.option.reads.len()).sum()
    }

    /// Reads saved by sharing relative to fetching every slot from disk.
    pub fn shared_savings(&self) -> usize {
        self.total_read_slots() - self.unique_reads()
    }
}

/// Generate a recovery scheme for one error.
pub fn generate(
    code: &StripeCode,
    error: &PartialStripeError,
    kind: SchemeKind,
) -> Result<RecoveryScheme, SchemeError> {
    generate_for_cells(code, error.stripe, &error.cells(), kind)
}

/// Generate a recovery scheme for an arbitrary lost-cell set of one stripe
/// (merged multi-disk damage; see [`crate::error::StripeDamage`]).
pub fn generate_for_cells(
    code: &StripeCode,
    stripe: u32,
    lost: &[Cell],
    kind: SchemeKind,
) -> Result<RecoveryScheme, SchemeError> {
    let repairs = match kind {
        SchemeKind::Typical => plan(code, lost, |i, menu, _| {
            // Horizontal if available, else first available family.
            let _ = i;
            pick_in_order(
                menu,
                [
                    Direction::Horizontal,
                    Direction::Diagonal,
                    Direction::AntiDiagonal,
                ],
            )
        }),
        SchemeKind::FbfCycling => plan(code, lost, |i, menu, _| {
            // Cycle H, D, A by position within the error run.
            let start = i % 3;
            let order = [
                Direction::ALL[start],
                Direction::ALL[(start + 1) % 3],
                Direction::ALL[(start + 2) % 3],
            ];
            pick_in_order(menu, order)
        }),
        SchemeKind::Greedy => plan(code, lost, |_, menu, scheduled| {
            // Fewest new chunks beyond what is already scheduled for read.
            menu.iter()
                .flatten()
                .min_by_key(|opt| {
                    let new = opt.reads.iter().filter(|c| !scheduled.contains(*c)).count();
                    (new, opt.reads.len(), opt.direction)
                })
                .cloned()
        }),
    }?;
    Ok(RecoveryScheme {
        stripe,
        kind,
        repairs,
    })
}

/// Shared planning loop: repeatedly pick a repair for the first still-lost
/// cell that has a usable option, allowing reads of already-repaired cells.
///
/// `chooser(position, menu, scheduled_reads)` selects among the per-
/// direction best options; `position` is the index of the target within the
/// original error run (drives FBF's direction cycling).
fn plan<F>(
    code: &StripeCode,
    lost: &[Cell],
    mut chooser: F,
) -> Result<Vec<ChunkRepair>, SchemeError>
where
    F: FnMut(usize, &[Option<RepairOption>; 3], &FxHashSet<Cell>) -> Option<RepairOption>,
{
    let mut remaining: Vec<(usize, Cell)> = lost.iter().copied().enumerate().collect();
    let mut repairs = Vec::with_capacity(lost.len());
    let mut scheduled: FxHashSet<Cell> = FxHashSet::default();
    let mut still_lost: Vec<Cell> = Vec::with_capacity(lost.len());

    while !remaining.is_empty() {
        // The still-lost set is fixed for the round; build it once instead
        // of per candidate.
        still_lost.clear();
        still_lost.extend(remaining.iter().map(|&(_, c)| c));
        let mut picked: Option<(usize, ChunkRepair)> = None;
        for (slot, &(pos, target)) in remaining.iter().enumerate() {
            let menu = best_per_direction(code, target, &still_lost);
            if let Some(option) = chooser(pos, &menu, &scheduled) {
                picked = Some((slot, ChunkRepair { target, option }));
                break;
            }
        }
        let Some((slot, repair)) = picked else {
            return Err(SchemeError::Unschedulable(remaining[0].1));
        };
        scheduled.extend(repair.option.reads.iter().copied());
        repairs.push(repair);
        remaining.remove(slot);
    }
    Ok(repairs)
}

/// First available option in the given direction preference order.
fn pick_in_order(menu: &[Option<RepairOption>; 3], order: [Direction; 3]) -> Option<RepairOption> {
    order.into_iter().find_map(|d| menu[d.index()].clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbf_codes::CodeSpec;

    fn code(spec: CodeSpec, p: usize) -> StripeCode {
        StripeCode::build(spec, p).unwrap()
    }

    fn error(code: &StripeCode, col: usize, first: usize, len: usize) -> PartialStripeError {
        PartialStripeError::new(code, 0, col, first, len).unwrap()
    }

    #[test]
    fn typical_uses_horizontal_for_data_cells() {
        let c = code(CodeSpec::Tip, 7);
        let e = error(&c, 0, 0, 5);
        let s = generate(&c, &e, SchemeKind::Typical).unwrap();
        assert_eq!(s.repairs.len(), 5);
        for r in &s.repairs {
            assert_eq!(r.option.direction, Direction::Horizontal, "{:?}", r.target);
        }
    }

    #[test]
    fn fbf_cycles_directions() {
        let c = code(CodeSpec::Tip, 7);
        let e = error(&c, 0, 0, 5);
        let s = generate(&c, &e, SchemeKind::FbfCycling).unwrap();
        assert_eq!(s.repairs.len(), 5);
        let dirs: std::collections::HashSet<Direction> =
            s.repairs.iter().map(|r| r.option.direction).collect();
        assert!(
            dirs.len() >= 2,
            "cycling must use multiple directions: {dirs:?}"
        );
    }

    #[test]
    fn fbf_reads_fewer_unique_chunks_than_typical() {
        // The headline structural claim (Fig. 2): intelligent chain
        // selection shares chunks and shrinks the fetch set.
        for spec in [CodeSpec::Tip, CodeSpec::Hdd1, CodeSpec::TripleStar] {
            let c = code(spec, 7);
            let e = error(&c, 0, 0, 5);
            let typical = generate(&c, &e, SchemeKind::Typical).unwrap();
            let fbf = generate(&c, &e, SchemeKind::FbfCycling).unwrap();
            assert!(
                fbf.shared_savings() > 0,
                "{spec:?}: FBF scheme must share chunks"
            );
            assert_eq!(
                typical.shared_savings(),
                0,
                "{spec:?}: horizontal chains never overlap"
            );
            assert!(
                fbf.unique_reads() <= typical.unique_reads() + fbf.shared_savings(),
                "{spec:?}"
            );
        }
    }

    #[test]
    fn greedy_is_at_least_as_shared_as_cycling() {
        let c = code(CodeSpec::Tip, 11);
        let e = error(&c, 0, 0, 8);
        let fbf = generate(&c, &e, SchemeKind::FbfCycling).unwrap();
        let greedy = generate(&c, &e, SchemeKind::Greedy).unwrap();
        assert!(greedy.unique_reads() <= fbf.unique_reads());
    }

    #[test]
    fn no_repair_reads_a_lost_cell_unless_repaired_earlier() {
        for kind in SchemeKind::ALL {
            let c = code(CodeSpec::TripleStar, 7);
            let e = error(&c, 2, 1, 5);
            let s = generate(&c, &e, kind).unwrap();
            let mut recovered: FxHashSet<Cell> = FxHashSet::default();
            let lost: FxHashSet<Cell> = e.cells().into_iter().collect();
            for r in &s.repairs {
                for read in &r.option.reads {
                    assert!(
                        !lost.contains(read) || recovered.contains(read),
                        "{kind}: repair of {:?} reads unrecovered lost cell {read}",
                        r.target
                    );
                }
                recovered.insert(r.target);
            }
        }
    }

    #[test]
    fn parity_column_errors_are_schedulable() {
        for kind in SchemeKind::ALL {
            for spec in CodeSpec::ALL {
                let c = code(spec, 7);
                for col in 0..c.cols() {
                    let e = error(&c, col, 0, c.rows() - 1);
                    let s = generate(&c, &e, kind)
                        .unwrap_or_else(|err| panic!("{spec:?} {kind} col {col}: {err}"));
                    assert_eq!(s.repairs.len(), c.rows() - 1);
                }
            }
        }
    }

    #[test]
    fn single_chunk_error_trivially_schedulable() {
        let c = code(CodeSpec::Star, 5);
        let e = error(&c, 0, 2, 1);
        let s = generate(&c, &e, SchemeKind::FbfCycling).unwrap();
        assert_eq!(s.repairs.len(), 1);
        assert_eq!(s.repairs[0].target, Cell::new(2, 0));
    }

    #[test]
    fn share_counts_consistency() {
        let c = code(CodeSpec::Tip, 7);
        let e = error(&c, 0, 0, 5);
        let s = generate(&c, &e, SchemeKind::FbfCycling).unwrap();
        let counts = s.share_counts();
        let total: usize = counts.values().sum();
        assert_eq!(total, s.total_read_slots());
        assert_eq!(counts.len(), s.unique_reads());
    }
}
