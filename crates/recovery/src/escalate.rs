//! Mid-recovery failure escalation: unreadable chunks become erasures.
//!
//! When a recovery read fails hard (latent sector error, exhausted
//! retries, dead disk), the chunk the repair wanted to *read* is itself
//! lost. The controller's answer is the same as for the original damage:
//! fold the chunk into the stripe's damage set and re-plan the stripe
//! against the enlarged pattern — the new plan never reads a known-lost
//! cell, so a given chunk can fail at most once. Escalation therefore
//! terminates: damage grows strictly per round and is bounded by the
//! stripe's geometry.
//!
//! A 3DFT code tolerates any damage confined to at most
//! [`fault_tolerance`](fbf_codes::CodeSpec::fault_tolerance) columns. The
//! moment a stripe's accumulated damage spans more columns, no plan
//! exists; the stripe is reported as a typed [`DataLoss`] — never a
//! panic — and dropped from further rounds.

use crate::controller::{RecoveryController, StripePlan};
use crate::error::{ErrorGroup, PartialStripeError, StripeDamage};
use crate::priority::PriorityDictionary;
use crate::scheme::SchemeKind;
use fbf_codes::{Cell, StripeCode};
use fbf_disksim::FailedRead;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A stripe whose accumulated damage exceeds the code's fault tolerance:
/// unrecoverable, reported instead of repaired.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataLoss {
    /// The unrecoverable stripe.
    pub stripe: u32,
    /// Distinct damaged columns at the moment of loss (exceeds the code's
    /// fault tolerance by construction).
    pub columns: usize,
    /// The full damage set at the moment of loss.
    pub cells: Vec<Cell>,
}

/// Result of absorbing one engine round's hard failures.
#[derive(Debug)]
pub struct Absorbed {
    /// Fresh plans for every still-recoverable stripe that grew damage
    /// this round, in stripe order.
    pub replans: Vec<StripePlan>,
    /// Priority dictionary of the re-planned chained schemes.
    pub dictionary: PriorityDictionary,
    /// Stripes that crossed the fault-tolerance line this round.
    pub data_loss: Vec<DataLoss>,
}

/// The escalation state machine: per-stripe accumulated damage plus a
/// memoised re-planner.
pub struct Escalator<'a> {
    code: &'a StripeCode,
    controller: RecoveryController<'a>,
    /// Accumulated damage per stripe (initial campaign + every escalated
    /// read failure).
    damage: BTreeMap<u32, BTreeSet<Cell>>,
    /// Stripes already declared unrecoverable.
    lost: BTreeSet<u32>,
    tolerance: usize,
    replans: u64,
    rounds: u64,
}

impl<'a> Escalator<'a> {
    /// Start from a campaign's initial damage.
    pub fn new(code: &'a StripeCode, kind: SchemeKind, group: &ErrorGroup) -> Self {
        let mut damage: BTreeMap<u32, BTreeSet<Cell>> = BTreeMap::new();
        for d in group.damage_by_stripe() {
            damage.insert(d.stripe, d.cells.into_iter().collect());
        }
        Escalator {
            tolerance: code.spec().fault_tolerance(),
            code,
            controller: RecoveryController::new(code, kind),
            damage,
            lost: BTreeSet::new(),
            replans: 0,
            rounds: 0,
        }
    }

    /// Fold one round of hard read failures into the damage sets and
    /// produce replacement plans (or [`DataLoss`] verdicts) for every
    /// affected stripe. Deterministic: failures arrive in the engine's
    /// replay-exact order and all internal state is ordered.
    pub fn absorb(&mut self, failures: &[FailedRead]) -> Absorbed {
        self.rounds += 1;
        let mut touched: BTreeSet<u32> = BTreeSet::new();
        for f in failures {
            let stripe = f.chunk.stripe;
            if self.lost.contains(&stripe) {
                continue;
            }
            let cells = self.damage.entry(stripe).or_default();
            match f.kind {
                // A dead disk loses the whole column for this stripe (all
                // rows of a stripe-column live on one disk); marking it
                // now spares one futile round per remaining row.
                fbf_disksim::ReadFailure::DeadDisk => {
                    let col = f.chunk.cell.c();
                    for r in 0..self.code.rows() {
                        cells.insert(Cell::new(r, col));
                    }
                }
                _ => {
                    cells.insert(f.chunk.cell);
                }
            }
            touched.insert(stripe);
        }

        let mut replan_group = ErrorGroup::new();
        let mut data_loss = Vec::new();
        for &stripe in &touched {
            let cells = &self.damage[&stripe];
            let columns = cells.iter().map(|c| c.c()).collect::<BTreeSet<_>>().len();
            if columns > self.tolerance {
                self.lost.insert(stripe);
                data_loss.push(DataLoss {
                    stripe,
                    columns,
                    cells: cells.iter().copied().collect(),
                });
            } else {
                // One len-1 error per cell; `damage_by_stripe` re-merges
                // them, so non-contiguous escalated damage is fine.
                for cell in cells {
                    let e = PartialStripeError::new(self.code, stripe, cell.c(), cell.r(), 1)
                        .expect("damage cells are in-geometry");
                    replan_group.push(e);
                }
            }
        }
        let (replans, dictionary) = self.controller.plan_campaign_with_fallback(&replan_group);
        self.replans += replans.len() as u64;
        Absorbed {
            replans,
            dictionary,
            data_loss,
        }
    }

    /// Final damage of every stripe that is *not* lost, in stripe order —
    /// what a surviving stripe's repair must have recovered.
    pub fn surviving_damage(&self) -> Vec<StripeDamage> {
        self.damage
            .iter()
            .filter(|(stripe, _)| !self.lost.contains(stripe))
            .map(|(&stripe, cells)| StripeDamage {
                stripe,
                cells: cells.iter().copied().collect(),
            })
            .collect()
    }

    /// Full damage of the lost stripes, in stripe order.
    pub fn lost_damage(&self) -> Vec<StripeDamage> {
        self.damage
            .iter()
            .filter(|(stripe, _)| self.lost.contains(stripe))
            .map(|(&stripe, cells)| StripeDamage {
                stripe,
                cells: cells.iter().copied().collect(),
            })
            .collect()
    }

    /// Stripes declared unrecoverable so far.
    pub fn lost_stripes(&self) -> usize {
        self.lost.len()
    }

    /// Re-plans issued so far (stripes × rounds, not chunk count).
    pub fn replans(&self) -> u64 {
        self.replans
    }

    /// Escalation rounds absorbed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbf_codes::{ChunkId, CodeSpec};
    use fbf_disksim::ReadFailure;

    fn code() -> StripeCode {
        StripeCode::build(CodeSpec::Tip, 7).unwrap()
    }

    fn failed(stripe: u32, r: usize, c: usize, kind: ReadFailure) -> FailedRead {
        FailedRead {
            chunk: ChunkId::new(stripe, Cell::new(r, c)),
            worker: 0,
            kind,
        }
    }

    fn group(code: &StripeCode, stripes: u32) -> ErrorGroup {
        let mut g = ErrorGroup::new();
        for s in 0..stripes {
            g.push(PartialStripeError::new(code, s, 0, 0, 3).unwrap());
        }
        g
    }

    #[test]
    fn media_failure_enlarges_damage_and_replans() {
        let code = code();
        let mut esc = Escalator::new(&code, SchemeKind::FbfCycling, &group(&code, 4));
        // Stripe 1 loses a read chunk in column 2.
        let out = esc.absorb(&[failed(1, 0, 2, ReadFailure::Media)]);
        assert!(out.data_loss.is_empty());
        assert_eq!(out.replans.len(), 1);
        assert_eq!(out.replans[0].stripe(), 1);
        assert_eq!(esc.replans(), 1);
        // The new plan must not read any damaged cell.
        let damaged: BTreeSet<Cell> = esc.surviving_damage()[1].cells.iter().copied().collect();
        match &out.replans[0] {
            StripePlan::Chained(s) => {
                for repair in &s.repairs {
                    for cell in &repair.option.reads {
                        assert!(!damaged.contains(cell), "plan reads damaged {cell}");
                    }
                }
            }
            StripePlan::Joint(j) => {
                for cell in &j.reads {
                    assert!(!damaged.contains(cell), "plan reads damaged {cell}");
                }
            }
        }
    }

    #[test]
    fn fourth_column_is_data_loss_for_3dft() {
        let code = code();
        // Initial damage in column 0; fail reads in columns 1, 2, 3.
        let mut esc = Escalator::new(&code, SchemeKind::FbfCycling, &group(&code, 1));
        let out = esc.absorb(&[
            failed(0, 0, 1, ReadFailure::Media),
            failed(0, 0, 2, ReadFailure::Media),
            failed(0, 0, 3, ReadFailure::Media),
        ]);
        assert_eq!(out.data_loss.len(), 1, "4 columns beats tolerance 3");
        assert_eq!(out.data_loss[0].stripe, 0);
        assert_eq!(out.data_loss[0].columns, 4);
        assert!(out.replans.is_empty());
        assert_eq!(esc.lost_stripes(), 1);
        assert!(esc.surviving_damage().is_empty());
        assert_eq!(esc.lost_damage().len(), 1);
    }

    #[test]
    fn dead_disk_takes_the_whole_column() {
        let code = code();
        let mut esc = Escalator::new(&code, SchemeKind::FbfCycling, &group(&code, 2));
        let out = esc.absorb(&[failed(0, 2, 4, ReadFailure::DeadDisk)]);
        assert_eq!(out.replans.len(), 1);
        let damage = &esc.surviving_damage()[0];
        let col4 = damage.cells.iter().filter(|c| c.c() == 4).count();
        assert_eq!(col4, code.rows(), "entire column marked lost");
    }

    #[test]
    fn lost_stripes_are_not_replanned_again() {
        let code = code();
        let mut esc = Escalator::new(&code, SchemeKind::FbfCycling, &group(&code, 1));
        esc.absorb(&[
            failed(0, 0, 1, ReadFailure::Media),
            failed(0, 0, 2, ReadFailure::Media),
            failed(0, 0, 3, ReadFailure::Media),
        ]);
        let again = esc.absorb(&[failed(0, 1, 5, ReadFailure::Media)]);
        assert!(again.replans.is_empty());
        assert!(again.data_loss.is_empty(), "already reported, not repeated");
        assert_eq!(esc.rounds(), 2);
    }

    #[test]
    fn absorb_is_deterministic() {
        let code = code();
        let failures = [
            failed(2, 1, 3, ReadFailure::Media),
            failed(0, 0, 5, ReadFailure::RetriesExhausted),
            failed(2, 4, 1, ReadFailure::Media),
        ];
        let run = |fails: &[FailedRead]| {
            let mut esc = Escalator::new(&code, SchemeKind::FbfCycling, &group(&code, 3));
            let out = esc.absorb(fails);
            (
                out.replans
                    .iter()
                    .map(StripePlan::stripe)
                    .collect::<Vec<_>>(),
                out.data_loss.len(),
                esc.surviving_damage(),
            )
        };
        assert_eq!(run(&failures), run(&failures));
    }
}
