//! Property tests for the recovery layer: scheme correctness on arbitrary
//! merged damage, scrubber honesty, controller memoisation equivalence.

use fbf_codes::encode::encode;
use fbf_codes::{Cell, CodeSpec, Stripe, StripeCode};
use fbf_recovery::scheme::generate_for_cells;
use fbf_recovery::scrub::{scrub, ScrubOutcome};
use fbf_recovery::{apply_scheme, ErrorGroup, PartialStripeError, RecoveryController, SchemeKind};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = CodeSpec> {
    prop_oneof![
        Just(CodeSpec::Tip),
        Just(CodeSpec::Hdd1),
        Just(CodeSpec::TripleStar),
        Just(CodeSpec::Star),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-column damage (the paper's scenario) always schedules
    /// chain-by-chain and recovers exact bytes, at any length.
    #[test]
    fn single_column_damage_always_schedules(
        spec in spec_strategy(),
        col in 0usize..32,
        first in 0usize..6,
        len in 1usize..6,
    ) {
        let code = StripeCode::build(spec, 7).unwrap();
        let col = col % code.cols();
        let first = first % code.rows();
        let len = 1 + (len - 1) % (code.rows() - first);
        let lost: Vec<Cell> = (first..first + len).map(|r| Cell::new(r, col)).collect();

        let mut pristine = Stripe::patterned(code.layout(), 16);
        encode(&code, &mut pristine).unwrap();
        let scheme = generate_for_cells(&code, 0, &lost, SchemeKind::FbfCycling).unwrap();
        let mut damaged = pristine.clone();
        for &cell in &lost {
            damaged.erase(code.layout(), cell);
        }
        apply_scheme(&code, &mut damaged, &scheme).unwrap();
        for &cell in &lost {
            prop_assert_eq!(damaged.get(code.layout(), cell), pristine.get(code.layout(), cell));
        }
    }

    /// Multi-column damage (2–3 columns, within the codes' tolerance)
    /// either schedules chain-by-chain (and then recovers exact bytes) or
    /// honestly reports Unschedulable — in which case the joint GF(2)
    /// decoder must still recover it. Sequential single-chain repair is
    /// strictly weaker than joint decoding (STAR's adjuster chains make
    /// even some two-column patterns unorderable), so "defer to the
    /// decoder" is the correct controller behaviour, not a failure.
    #[test]
    fn multi_column_damage_schedules_or_defers(
        spec in spec_strategy(),
        cols in proptest::collection::btree_set(0usize..32, 2..4),
        first in 0usize..6,
        len in 1usize..6,
    ) {
        let code = StripeCode::build(spec, 7).unwrap();
        let cols: Vec<usize> = cols.into_iter().map(|c| c % code.cols())
            .collect::<std::collections::BTreeSet<_>>().into_iter().collect();
        let first = first % code.rows();
        let len = 1 + (len - 1) % (code.rows() - first);
        let mut lost: Vec<Cell> = cols
            .iter()
            .flat_map(|&c| (first..first + len).map(move |r| Cell::new(r, c)))
            .collect();
        lost.sort_unstable();
        lost.dedup();

        let mut pristine = Stripe::patterned(code.layout(), 16);
        encode(&code, &mut pristine).unwrap();
        let mut damaged = pristine.clone();
        for &cell in &lost {
            damaged.erase(code.layout(), cell);
        }
        match generate_for_cells(&code, 0, &lost, SchemeKind::FbfCycling) {
            Ok(scheme) => {
                apply_scheme(&code, &mut damaged, &scheme).unwrap();
                for &cell in &lost {
                    prop_assert_eq!(
                        damaged.get(code.layout(), cell),
                        pristine.get(code.layout(), cell)
                    );
                }
            }
            Err(_) => {
                // Chain-at-a-time repair is stuck; the decoder must not be.
                fbf_codes::decode::decode(&code, &mut damaged, &lost).unwrap();
                for &cell in &lost {
                    prop_assert_eq!(
                        damaged.get(code.layout(), cell),
                        pristine.get(code.layout(), cell)
                    );
                }
            }
        }
    }

    /// Scrubber honesty: whatever the outcome, it never *mis-repairs* —
    /// after a `Repaired` outcome every chain verifies and non-corrupted
    /// cells are untouched.
    #[test]
    fn scrub_never_misrepairs(
        spec in spec_strategy(),
        cell_r in 0usize..6,
        cell_c in 0usize..10,
        flip in 1u8..=255,
    ) {
        let code = StripeCode::build(spec, 7).unwrap();
        let victim = Cell::new(cell_r % code.rows(), cell_c % code.cols());
        let mut pristine = Stripe::patterned(code.layout(), 16);
        encode(&code, &mut pristine).unwrap();
        let mut s = pristine.clone();
        let mut buf = s.get(code.layout(), victim).to_vec();
        buf[0] ^= flip;
        s.set(code.layout(), victim, buf.into());

        match scrub(&code, &mut s, 1) {
            ScrubOutcome::Repaired(located) => {
                prop_assert_eq!(&located, &vec![victim]);
                // Full stripe equals the pristine original.
                for cell in code.layout().cells() {
                    prop_assert_eq!(
                        s.get(code.layout(), cell),
                        pristine.get(code.layout(), cell),
                        "{} modified", cell
                    );
                }
            }
            ScrubOutcome::Ambiguous(cands) => {
                // The true location must be among the candidates.
                prop_assert!(cands.iter().any(|c| c.contains(&victim)));
            }
            ScrubOutcome::Clean => {
                prop_assert!(false, "corruption missed entirely");
            }
            ScrubOutcome::Unlocatable => {
                // Acceptable only if the cell's fingerprint is shared;
                // never for data cells (3 chains → unique by test above).
            }
        }
    }

    /// Controller memoisation: a campaign planned through the memo equals
    /// one planned from scratch, for random formats.
    #[test]
    fn controller_memo_equivalence(
        stripes in proptest::collection::vec((0usize..8, 0usize..4, 1usize..4), 1..30),
    ) {
        let code = StripeCode::build(CodeSpec::Tip, 7).unwrap();
        let mut group = ErrorGroup::new();
        for (i, (col, first, len)) in stripes.iter().enumerate() {
            let col = col % code.cols();
            let first = first % code.rows();
            let len = 1 + (len - 1) % (code.rows() - first);
            group.push(PartialStripeError::new(&code, i as u32, col, first, len).unwrap());
        }
        let mut ctl = RecoveryController::new(&code, SchemeKind::FbfCycling);
        let (memo_schemes, memo_dict) = ctl.plan_campaign(&group).unwrap();
        let direct = fbf_recovery::generate_schemes_parallel(
            &code, &group, SchemeKind::FbfCycling, 1,
        ).unwrap();
        // gen_threads=1 path also memoises inside run_experiment, so
        // compare against the explicitly parallel (non-memo) path too.
        let parallel = fbf_recovery::generate_schemes_parallel(
            &code, &group, SchemeKind::FbfCycling, 4,
        ).unwrap();
        prop_assert_eq!(&memo_schemes, &direct);
        prop_assert_eq!(&memo_schemes, &parallel);
        let direct_dict = fbf_recovery::PriorityDictionary::from_schemes(&direct);
        prop_assert_eq!(memo_dict, direct_dict);
    }
}
