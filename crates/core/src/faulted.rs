//! Multi-round faulted execution: run, absorb hard failures, re-plan,
//! run again.
//!
//! When a [`FaultPlan`](fbf_disksim::FaultPlan) injects read faults, one
//! engine pass is no longer the whole story: a hard failure (media error,
//! exhausted retries, dead disk) abandons its stripe mid-repair, and the
//! controller must fold the unreadable chunk into the stripe's damage and
//! try again with a fresh plan. This module drives that loop:
//!
//! 1. **Round 0** executes the campaign's original scripts under the
//!    configured fault plan.
//! 2. Each round's [`FailedRead`](fbf_disksim::FailedRead)s feed the
//!    [`Escalator`], which enlarges damage, declares [`DataLoss`] for
//!    stripes past the code's fault tolerance, and re-plans the rest.
//! 3. The re-plans become fresh worker scripts and run as the next round.
//!    From round 1 on, a scheduled disk kill is moved to time zero — the
//!    disk died in round 0 and stays dead.
//!
//! The loop terminates because damage grows strictly (a re-plan never
//! reads a known-lost cell, so a chunk can fail at most once) and is
//! bounded by stripe geometry; [`MAX_ROUNDS`] is a belt-and-braces cap.
//! Every step is deterministic in the config's seeds, so two runs of the
//! same faulted config produce identical merged reports.
//!
//! Each round starts with cold caches — conservative (round 0's survivors
//! could seed round 1) but honest: the re-plan happens on the host after
//! failure *detection*, and the simulator does not model cache retention
//! across that host round-trip.

use crate::config::ExperimentConfig;
use crate::plan::PlannedCampaign;
use crate::progress::Progress;
use fbf_codes::StripeCode;
use fbf_disksim::{
    ArrayMapping, Engine, EngineConfig, EngineScratch, FaultPlan, RunReport, SimTime, WorkerScript,
};
use fbf_recovery::{
    build_scripts_from_plans, DataLoss, Escalator, ExecConfig, StripeDamage, StripePlan,
};
use std::collections::BTreeMap;

/// Hard cap on escalation rounds. Unreachable in practice (damage is
/// bounded by geometry long before this); it exists so a logic bug can
/// never spin the driver forever.
pub const MAX_ROUNDS: u64 = 32;

/// Everything a faulted multi-round execution produced: the merged engine
/// report plus the escalation verdicts needed for metrics and byte-exact
/// verification.
#[derive(Debug)]
pub struct FaultedOutcome {
    /// All rounds merged: makespans summed (rounds run back-to-back),
    /// counters and distributions merged, write completions offset into
    /// the combined timeline.
    pub report: RunReport,
    /// Stripe re-plans issued across all rounds.
    pub replans: u64,
    /// Escalation rounds absorbed (0 = no hard failures).
    pub rounds: u64,
    /// Stripes whose accumulated damage exceeded the code's fault
    /// tolerance — typed, reported, never a panic.
    pub data_loss: Vec<DataLoss>,
    /// Final accumulated damage of every surviving stripe, in stripe
    /// order — what the repair must have recovered.
    pub surviving_damage: Vec<StripeDamage>,
    /// The plan that ultimately repaired each surviving stripe (the
    /// original scheme, or the last re-plan).
    pub final_plans: BTreeMap<u32, StripePlan>,
    /// Surviving stripes (repaired despite faults).
    pub stripes_repaired: usize,
    /// Chunks of surviving stripes recovered, counting escalated damage.
    pub chunks_recovered: usize,
    /// The round cap was hit with failures still pending. The affected
    /// stripes are in [`FaultedOutcome::unresolved`] — they are *not*
    /// counted as repaired and *not* typed as data loss, and any caller
    /// treating the campaign as a success must check this flag.
    /// (Regression guard: exhaustion used to exit the loop silently,
    /// reporting partially-repaired stripes as repaired.)
    pub rounds_exhausted: bool,
    /// Damage of stripes left neither repaired nor declared lost when the
    /// round cap hit. Empty unless [`FaultedOutcome::rounds_exhausted`].
    pub unresolved: Vec<StripeDamage>,
}

/// Build the engine configuration for one round of `cfg`'s campaign.
fn engine_config(
    cfg: &ExperimentConfig,
    plan: &PlannedCampaign,
    faults: FaultPlan,
) -> EngineConfig {
    EngineConfig {
        policy: cfg.policy,
        fbf: cfg.fbf,
        victim_map: Some(std::sync::Arc::clone(&plan.victim_map)),
        cache_chunks: cfg.cache_chunks(),
        sharing: cfg.sharing,
        disk_model: cfg.disk_model,
        sched: cfg.disk_sched,
        straggler: cfg.straggler,
        faults,
        cache_hit_time: cfg.cache_hit_time,
        chunk_bytes: cfg.chunk_bytes(),
        mapping: ArrayMapping::new(plan.cols, plan.rows, cfg.code.rotated_placement()),
        data_stripes: cfg.stripes as u64,
        obs: cfg.obs,
    }
}

/// The fault plan for rounds ≥ 1: a disk killed in round 0 stays dead, so
/// its kill instant moves to time zero. Shared with the array-wide
/// rebuild driver, whose waves chain on the virtual clock the same way.
pub(crate) fn later_round_faults(f: FaultPlan) -> FaultPlan {
    let mut later = f;
    if let Some(kill) = later.disk_kill.as_mut() {
        kill.at = SimTime::ZERO;
    }
    later
}

/// Fold one round's report into the running total. Rounds execute
/// back-to-back on the virtual clock, so makespans add and each round's
/// write completions shift by the time already elapsed. Shared with the
/// array-wide rebuild driver, which merges per-wave reports the same way.
pub(crate) fn merge_round(total: &mut RunReport, round: &RunReport) {
    let base = total.makespan;
    total.makespan = base + round.makespan;
    total.cache.merge(&round.cache);
    total.disk_reads += round.disk_reads;
    total.disk_writes += round.disk_writes;
    total.read_response.merge(&round.read_response);
    total.read_latency.merge(&round.read_latency);
    total.write_response.merge(&round.write_response);
    for (t, r) in total.class_latency.iter_mut().zip(&round.class_latency) {
        t.merge(r);
    }
    total
        .write_completions
        .extend(round.write_completions.iter().map(|&t| base + t));
    for (t, r) in total.per_disk.iter_mut().zip(&round.per_disk) {
        t.merge(r);
    }
    for (t, r) in total
        .per_disk_class_reads
        .iter_mut()
        .zip(&round.per_disk_class_reads)
    {
        for (a, b) in t.iter_mut().zip(r) {
            *a += b;
        }
    }
    total.faults.merge(&round.faults);
    total
        .failed_reads
        .extend(round.failed_reads.iter().copied());
}

/// Execute `plan` under `cfg.faults`, escalating hard read failures
/// through re-planning until the campaign settles (or stripes are
/// declared lost).
///
/// The plan must have been generated for `cfg` (the same invariant as
/// [`run_planned`](crate::runner::run_planned)); in particular the code
/// must build, which `cfg.validate()` already guaranteed.
pub fn execute_faulted(
    cfg: &ExperimentConfig,
    plan: &PlannedCampaign,
    scratch: &mut EngineScratch,
) -> FaultedOutcome {
    execute_faulted_observed(cfg, plan, scratch, None)
}

/// [`execute_faulted`] that additionally publishes live round/fault
/// counters into `progress` (the daemon's `stat` reads them mid-job) and
/// emits a `faulted/round` instant per escalation round. A non-empty
/// data-loss verdict triggers a flight-recorder dump
/// ([`fbf_obs::ring::trigger_dump`], reason `data-loss`) so the events
/// leading up to the loss survive for post-mortem without pre-enabled
/// tracing.
pub fn execute_faulted_observed(
    cfg: &ExperimentConfig,
    plan: &PlannedCampaign,
    scratch: &mut EngineScratch,
    progress: Option<&Progress>,
) -> FaultedOutcome {
    execute_faulted_capped(cfg, plan, scratch, progress, MAX_ROUNDS)
}

/// [`execute_faulted_observed`] with an explicit escalation-round cap.
/// Exhaustion — the cap hit with failures still pending — is a typed
/// verdict ([`FaultedOutcome::rounds_exhausted`] +
/// [`FaultedOutcome::unresolved`]), never a silent partial success: the
/// affected stripes are excluded from `stripes_repaired`/`final_plans`.
pub fn execute_faulted_capped(
    cfg: &ExperimentConfig,
    plan: &PlannedCampaign,
    scratch: &mut EngineScratch,
    progress: Option<&Progress>,
    max_rounds: u64,
) -> FaultedOutcome {
    let code = StripeCode::build(cfg.code, cfg.p).expect("plan was built with this code/p");
    let mut escalator = Escalator::new(&code, cfg.scheme, &plan.errors);
    let mut final_plans: BTreeMap<u32, StripePlan> = plan
        .schemes
        .iter()
        .map(|s| (s.stripe, StripePlan::Chained(s.clone())))
        .collect();

    let run = |scripts: &[WorkerScript], faults: FaultPlan, scratch: &mut EngineScratch| {
        Engine::new(engine_config(cfg, plan, faults)).run_with_scratch(scripts, scratch)
    };

    let mut total = run(&plan.scripts, cfg.faults, scratch);
    let mut pending = std::mem::take(&mut total.failed_reads);
    total.failed_reads = pending.clone();

    let later = later_round_faults(cfg.faults);
    // Escalation rounds are re-planned retries, not first-pass recovery —
    // attribute their latency to the replan class.
    let exec_cfg = ExecConfig {
        workers: cfg.workers,
        class: fbf_disksim::RequestClass::Replan,
        decode_batch: cfg.decode_batch,
        ..Default::default()
    };
    let obs = cfg.obs && fbf_obs::enabled();
    let mut data_loss = Vec::new();
    if let Some(p) = progress {
        p.record(0, 0, total.faults.hard_failures(), 0);
    }
    while !pending.is_empty() && escalator.rounds() < max_rounds {
        let absorbed = escalator.absorb(&pending);
        for dl in &absorbed.data_loss {
            final_plans.remove(&dl.stripe);
        }
        data_loss.extend(absorbed.data_loss);
        let publish = |total: &RunReport| {
            if let Some(p) = progress {
                p.record(
                    escalator.rounds(),
                    escalator.replans(),
                    total.faults.hard_failures(),
                    data_loss.len() as u64,
                );
            }
            if obs {
                fbf_obs::instant(
                    "faulted",
                    "round",
                    &[
                        ("round", fbf_obs::Value::U64(escalator.rounds())),
                        ("replans", fbf_obs::Value::U64(escalator.replans())),
                        ("faults", fbf_obs::Value::U64(total.faults.hard_failures())),
                        ("lost", fbf_obs::Value::U64(data_loss.len() as u64)),
                    ],
                );
            }
        };
        if absorbed.replans.is_empty() {
            // Every failure this round was on a stripe now declared (or
            // already) lost — nothing left to retry.
            publish(&total);
            break;
        }
        let scripts = build_scripts_from_plans(&absorbed.replans, &absorbed.dictionary, &exec_cfg);
        for p in absorbed.replans {
            final_plans.insert(p.stripe(), p);
        }
        let round = run(&scripts, later, scratch);
        pending = round.failed_reads.clone();
        merge_round(&mut total, &round);
        publish(&total);
    }
    if !data_loss.is_empty() {
        // Mark the loss in the event stream (so the dump's last events
        // explain themselves), then snapshot the flight recorder.
        if obs {
            fbf_obs::instant(
                "faulted",
                "data-loss",
                &[("stripes", fbf_obs::Value::U64(data_loss.len() as u64))],
            );
        }
        fbf_obs::ring::trigger_dump("data-loss");
    }

    // Exhaustion verdict: failures still pending after the loop whose
    // stripes were never declared lost were neither repaired nor typed —
    // surface them instead of letting them ride in the "repaired" count.
    // (The empty-replans break leaves pending stripes too, but those are
    // all in `data_loss`, so they filter out here.)
    let lost: std::collections::BTreeSet<u32> = data_loss.iter().map(|d| d.stripe).collect();
    let unresolved_stripes: std::collections::BTreeSet<u32> = pending
        .iter()
        .map(|f| f.chunk.stripe)
        .filter(|s| !lost.contains(s))
        .collect();
    let rounds_exhausted = !unresolved_stripes.is_empty();
    if rounds_exhausted {
        for s in &unresolved_stripes {
            final_plans.remove(s);
        }
        if obs {
            fbf_obs::instant(
                "faulted",
                "rounds-exhausted",
                &[
                    ("rounds", fbf_obs::Value::U64(escalator.rounds())),
                    (
                        "unresolved",
                        fbf_obs::Value::U64(unresolved_stripes.len() as u64),
                    ),
                ],
            );
        }
        fbf_obs::ring::trigger_dump("rounds-exhausted");
    }

    let mut surviving_damage = escalator.surviving_damage();
    let unresolved: Vec<StripeDamage> = surviving_damage
        .iter()
        .filter(|d| unresolved_stripes.contains(&d.stripe))
        .cloned()
        .collect();
    surviving_damage.retain(|d| !unresolved_stripes.contains(&d.stripe));
    let chunks_recovered = surviving_damage.iter().map(|d| d.cells.len()).sum();
    FaultedOutcome {
        report: total,
        replans: escalator.replans(),
        rounds: escalator.rounds(),
        data_loss,
        surviving_damage,
        stripes_repaired: final_plans.len(),
        chunks_recovered,
        final_plans,
        rounds_exhausted,
        unresolved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbf_disksim::{DiskKill, RetryPolicy};

    fn faulty(media: u16, kill: Option<u32>) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::builder()
            .stripes(128)
            .error_count(48)
            .workers(8)
            .gen_threads(1)
            .build()
            .unwrap();
        cfg.faults = FaultPlan {
            seed: 99,
            media_per_mille: media,
            retry: RetryPolicy::default(),
            disk_kill: kill.map(|disk| DiskKill {
                disk,
                at: SimTime::from_millis(40),
            }),
            ..FaultPlan::none()
        };
        cfg
    }

    fn outcome(cfg: &ExperimentConfig) -> FaultedOutcome {
        let plan = PlannedCampaign::cold(cfg).unwrap();
        execute_faulted(cfg, &plan, &mut EngineScratch::new())
    }

    #[test]
    fn media_faults_escalate_and_settle() {
        let cfg = faulty(30, None);
        let out = outcome(&cfg);
        assert!(
            out.report.faults.media_errors > 0,
            "30‰ must fire on ~1k reads"
        );
        assert!(out.rounds >= 1);
        assert!(out.replans >= 1);
        assert_eq!(
            out.stripes_repaired + out.data_loss.len(),
            48,
            "every damaged stripe is repaired or typed as lost"
        );
        // Escalated chunks count as recovered on surviving stripes.
        let initial: usize = out.surviving_damage.iter().map(|d| d.cells.len()).sum();
        assert_eq!(out.chunks_recovered, initial);
    }

    #[test]
    fn faulted_execution_is_deterministic() {
        let cfg = faulty(25, Some(3));
        let a = outcome(&cfg);
        let b = outcome(&cfg);
        assert_eq!(a.report.makespan, b.report.makespan);
        assert_eq!(a.report.faults, b.report.faults);
        assert_eq!(a.report.disk_reads, b.report.disk_reads);
        assert_eq!(a.replans, b.replans);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.data_loss, b.data_loss);
        assert_eq!(a.surviving_damage, b.surviving_damage);
    }

    #[test]
    fn disk_kill_keeps_the_disk_dead_in_later_rounds() {
        let cfg = faulty(0, Some(2));
        let out = outcome(&cfg);
        if out.rounds > 0 {
            // Re-planned reads avoid the dead column, so later rounds can
            // only fail on *other* chunks of the killed disk; the merged
            // counters stay consistent either way.
            assert_eq!(
                out.report.faults.hard_failures(),
                out.report.failed_reads.len() as u64
            );
        }
        assert_eq!(out.stripes_repaired + out.data_loss.len(), 48);
    }

    #[test]
    fn no_faults_means_single_round_identity() {
        let mut cfg = faulty(0, None);
        cfg.faults = FaultPlan::none();
        let plan = PlannedCampaign::cold(&cfg).unwrap();
        let out = execute_faulted(&cfg, &plan, &mut EngineScratch::new());
        assert_eq!(out.rounds, 0);
        assert_eq!(out.replans, 0);
        assert!(out.data_loss.is_empty());
        assert_eq!(out.stripes_repaired, 48);
        let direct = Engine::new(engine_config(&cfg, &plan, FaultPlan::none()))
            .run_with_scratch(&plan.scripts, &mut EngineScratch::new());
        assert_eq!(out.report.makespan, direct.makespan);
        assert_eq!(out.report.disk_reads, direct.disk_reads);
    }

    #[test]
    fn replan_rounds_attribute_latency_to_replan_class() {
        use fbf_disksim::RequestClass;
        let cfg = faulty(30, None);
        let out = outcome(&cfg);
        assert!(out.rounds >= 1, "30‰ media errors must force a re-plan");
        let replan = &out.report.class_latency[RequestClass::Replan.index()];
        assert!(replan.count() > 0, "round ≥1 reads carry the replan class");
        // The class digests partition the overall read-latency digest
        // exactly, even across merged rounds.
        let by_class: u64 = out.report.class_latency.iter().map(|h| h.count()).sum();
        assert_eq!(by_class, out.report.read_latency.count());
    }

    #[test]
    fn round_exhaustion_is_a_typed_verdict_not_a_silent_success() {
        // A zero-round cap makes every round-0 failure pathological: no
        // escalation is allowed, so the failed stripes can be neither
        // repaired nor typed as lost. The driver must say so instead of
        // reporting them repaired.
        let cfg = faulty(30, None);
        let plan = PlannedCampaign::cold(&cfg).unwrap();
        let out = execute_faulted_capped(&cfg, &plan, &mut EngineScratch::new(), None, 0);
        assert!(
            !out.report.failed_reads.is_empty(),
            "30‰ media errors must fail reads in round 0"
        );
        assert!(out.rounds_exhausted, "cap hit with pending failures");
        assert!(!out.unresolved.is_empty());
        // Every damaged stripe is accounted for exactly once: repaired,
        // lost, or unresolved — never silently dropped or double-counted.
        assert_eq!(
            out.stripes_repaired + out.data_loss.len() + out.unresolved.len(),
            48
        );
        for d in &out.unresolved {
            assert!(
                !out.final_plans.contains_key(&d.stripe),
                "unresolved stripe {} must not carry a final plan",
                d.stripe
            );
            assert!(
                !out.surviving_damage.iter().any(|s| s.stripe == d.stripe),
                "unresolved stripe {} must not count as recovered damage",
                d.stripe
            );
        }
    }

    #[test]
    fn converged_runs_never_flag_exhaustion() {
        let out = outcome(&faulty(30, None));
        assert!(!out.rounds_exhausted);
        assert!(out.unresolved.is_empty());
        let clean = outcome(&faulty(0, None));
        assert!(!clean.rounds_exhausted);
        assert!(clean.unresolved.is_empty());
    }

    #[test]
    fn per_disk_class_reads_survive_round_merging() {
        use fbf_disksim::RequestClass;
        let out = outcome(&faulty(30, None));
        assert!(out.rounds >= 1, "must merge at least one replan round");
        let per_class_total: u64 = out
            .report
            .per_disk_class_reads
            .iter()
            .flat_map(|c| c.iter())
            .sum();
        assert_eq!(
            per_class_total, out.report.disk_reads,
            "per-disk class reads partition disk_reads exactly across merged rounds"
        );
        let replan: u64 = out
            .report
            .class_reads_per_disk(RequestClass::Replan)
            .iter()
            .sum();
        assert!(replan > 0, "replan rounds attribute their disk reads");
    }

    #[test]
    fn every_survivor_has_a_final_plan_covering_its_damage() {
        let cfg = faulty(35, Some(5));
        let out = outcome(&cfg);
        for damage in &out.surviving_damage {
            let plan = out
                .final_plans
                .get(&damage.stripe)
                .expect("surviving stripe has a plan");
            assert_eq!(plan.stripe(), damage.stripe);
        }
        for dl in &out.data_loss {
            assert!(
                !out.final_plans.contains_key(&dl.stripe),
                "lost stripes carry no plan"
            );
            assert!(dl.columns > 3, "TIP tolerates 3 columns");
        }
    }
}
