//! # fbf-core — experiment runner for the FBF reproduction
//!
//! Wires the whole stack together — codes, workload, recovery, cache,
//! simulator — behind one [`ExperimentConfig`] → [`Metrics`] call, plus
//! sweep drivers and report formatting used by the figure/table binaries
//! in `fbf-bench`.
//!
//! A single experiment is one reconstruction campaign:
//!
//! 1. build the erasure code ([`fbf_codes::StripeCode`]);
//! 2. draw a seeded campaign of partial stripe errors
//!    ([`fbf_workload::generate_errors`]);
//! 3. generate recovery schemes and the priority dictionary
//!    ([`fbf_recovery`]), timing this step — it is the *temporal overhead*
//!    the paper's Table IV reports;
//! 4. lower to worker scripts and run the simulator
//!    ([`fbf_disksim::Engine`]);
//! 5. collect [`Metrics`]: hit ratio, disk reads, average response time,
//!    reconstruction (virtual) time, overhead.
//!
//! ```no_run
//! use fbf_core::{ExperimentConfig, run_experiment};
//! use fbf_codes::CodeSpec;
//! use fbf_cache::PolicyKind;
//!
//! let cfg = ExperimentConfig::builder()
//!     .code(CodeSpec::Tip)
//!     .p(7)
//!     .policy(PolicyKind::Fbf)
//!     .cache_mb(64)
//!     .build()
//!     .unwrap();
//! let metrics = run_experiment(&cfg).unwrap();
//! println!("hit ratio {:.3}", metrics.hit_ratio);
//! ```

pub mod backend_run;
pub mod config;
pub mod daemon;
pub mod faulted;
pub mod json;
pub mod metrics;
pub mod plan;
pub mod progress;
pub mod prom;
pub mod rebuild;
pub mod reliability;
pub mod report;
pub mod runner;
pub mod sweep;
pub mod verify;

pub use backend_run::{file_backend_for, run_experiment_on, run_planned_on, sim_backend_for};
pub use config::{
    code_from_name, policy_from_name, scheme_from_name, ClassSlo, ConfigError, ExperimentConfig,
    ExperimentConfigBuilder, SloSpec,
};
pub use daemon::{
    serve, ClientStream, DaemonClient, DaemonHandle, DaemonOptions, JobState, ServerAddr,
};
pub use faulted::{
    execute_faulted, execute_faulted_capped, execute_faulted_observed, FaultedOutcome, MAX_ROUNDS,
};
pub use json::{Json, JsonError};
pub use metrics::{ClassLatency, ClassVerdict, Metrics, SloVerdict, METRICS_SCHEMA_VERSION};
pub use plan::{PlanKey, PlanSource, PlanStore, PlanStoreStats, PlannedCampaign};
pub use progress::{Progress, ProgressSnapshot};
pub use prom::prometheus_snapshot;
pub use rebuild::{execute_rebuild, run_rebuild, RebuildOutcome, RebuildSpec};
pub use reliability::{mttdl_gain, mttdl_hours, mttdl_years, ReliabilityParams};
pub use report::Table;
pub use runner::{
    run_experiment, run_experiment_with_errors, run_planned, run_planned_observed, RunError,
};
pub use sweep::{sweep, sweep_with_progress, sweep_with_store, SweepPoint, SweepProgress};
pub use verify::{verify_campaign, verify_campaign_faulted, FaultedVerifyReport, VerifyReport};
