//! One experiment end to end.

use crate::config::ExperimentConfig;
use crate::metrics::Metrics;
use fbf_codes::{CodeError, StripeCode};
use fbf_disksim::{ArrayMapping, Engine, EngineConfig};
use fbf_recovery::{
    build_scripts, generate_schemes_parallel, ExecConfig, PriorityDictionary, RecoveryController,
    SchemeError,
};
use fbf_workload::{generate_errors, ErrorGenConfig};
use std::time::Instant;

/// Failures a run can hit.
#[derive(Debug)]
pub enum RunError {
    /// The code could not be built (bad prime).
    Code(CodeError),
    /// Scheme generation failed (unschedulable damage).
    Scheme(SchemeError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Code(e) => write!(f, "code construction failed: {e}"),
            RunError::Scheme(e) => write!(f, "scheme generation failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<CodeError> for RunError {
    fn from(e: CodeError) -> Self {
        RunError::Code(e)
    }
}

impl From<SchemeError> for RunError {
    fn from(e: SchemeError) -> Self {
        RunError::Scheme(e)
    }
}

/// Run one reconstruction experiment and return its metrics.
pub fn run_experiment(cfg: &ExperimentConfig) -> Result<Metrics, RunError> {
    let code = StripeCode::build(cfg.code, cfg.p)?;

    // 1. Draw the error campaign.
    let errors = generate_errors(
        &code,
        &ErrorGenConfig::paper_default(cfg.stripes, cfg.error_count, cfg.seed),
    );

    // 2. Recovery schemes + priority dictionary. This is FBF's "extra
    //    calculation" — wall-clock it for Table IV. gen_threads == 1 uses
    //    the memoised RecoveryController (the paper's format-reuse
    //    optimisation, §III-A-1); larger values fan the generation out.
    let t0 = Instant::now();
    let (schemes, dictionary) = if cfg.gen_threads == 1 {
        let mut ctl = RecoveryController::new(&code, cfg.scheme);
        ctl.plan_campaign(&errors)?
    } else {
        let schemes = generate_schemes_parallel(&code, &errors, cfg.scheme, cfg.gen_threads)?;
        let dictionary = PriorityDictionary::from_schemes(&schemes);
        (schemes, dictionary)
    };
    let overhead = t0.elapsed();

    // 3. Lower to SOR worker scripts.
    let scripts = build_scripts(
        &schemes,
        &dictionary,
        &ExecConfig { workers: cfg.workers, ..Default::default() },
    );

    // 4. Simulate.
    let mapping = ArrayMapping::new(code.cols(), code.rows(), cfg.code.rotated_placement());
    // VDF's victim map: the stripes under repair and their damaged column.
    let victim_map: std::collections::HashMap<u32, u16> = errors
        .errors
        .iter()
        .map(|e| (e.stripe, e.col as u16))
        .collect();

    let engine = Engine::new(EngineConfig {
        policy: cfg.policy,
        fbf: cfg.fbf,
        victim_map: Some(std::sync::Arc::new(victim_map)),
        cache_chunks: cfg.cache_chunks(),
        sharing: cfg.sharing,
        disk_model: cfg.disk_model,
        sched: cfg.disk_sched,
        straggler: cfg.straggler,
        cache_hit_time: cfg.cache_hit_time,
        chunk_bytes: cfg.chunk_bytes(),
        mapping,
        data_stripes: cfg.stripes as u64,
    });
    let report = engine.run(&scripts);

    let recovered: usize = errors.damage_by_stripe().iter().map(|d| d.cells.len()).sum();
    Ok(Metrics::from_run(&report, overhead, schemes.len(), recovered))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbf_cache::PolicyKind;
    

    fn small(policy: PolicyKind, cache_mb: usize) -> ExperimentConfig {
        ExperimentConfig {
            policy,
            cache_mb,
            stripes: 256,
            error_count: 64,
            workers: 8,
            gen_threads: 1,
            ..Default::default()
        }
    }

    #[test]
    fn runs_and_recovers_everything() {
        let m = run_experiment(&small(PolicyKind::Fbf, 16)).unwrap();
        assert_eq!(m.stripes_repaired, 64);
        assert_eq!(m.disk_writes as usize, m.chunks_recovered, "one spare write per lost chunk");
        assert!(m.disk_reads > 0);
        assert!(m.reconstruction_s > 0.0);
    }

    #[test]
    fn deterministic_for_same_config() {
        let cfg = small(PolicyKind::Arc, 8);
        let a = run_experiment(&cfg).unwrap();
        let b = run_experiment(&cfg).unwrap();
        assert_eq!(a.hit_ratio, b.hit_ratio);
        assert_eq!(a.disk_reads, b.disk_reads);
        assert_eq!(a.reconstruction_s, b.reconstruction_s);
    }

    #[test]
    fn fbf_beats_lru_with_tight_cache() {
        // The paper's headline: when cache is limited, FBF hits more and
        // reads less than LRU under the same campaign.
        let fbf = run_experiment(&small(PolicyKind::Fbf, 2)).unwrap();
        let lru = run_experiment(&small(PolicyKind::Lru, 2)).unwrap();
        assert!(
            fbf.hit_ratio >= lru.hit_ratio,
            "FBF {:.4} vs LRU {:.4}",
            fbf.hit_ratio,
            lru.hit_ratio
        );
        assert!(fbf.disk_reads <= lru.disk_reads);
    }

    #[test]
    fn bigger_cache_never_reads_more() {
        let small_cache = run_experiment(&small(PolicyKind::Lru, 1)).unwrap();
        let big_cache = run_experiment(&small(PolicyKind::Lru, 64)).unwrap();
        assert!(big_cache.disk_reads <= small_cache.disk_reads);
        assert!(big_cache.hit_ratio >= small_cache.hit_ratio);
    }

    #[test]
    fn bad_prime_is_reported() {
        let cfg = ExperimentConfig { p: 8, ..small(PolicyKind::Lru, 4) };
        assert!(matches!(run_experiment(&cfg), Err(RunError::Code(_))));
    }
}
