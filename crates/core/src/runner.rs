//! One experiment end to end.
//!
//! [`run_experiment`] is the standalone entry point: validate, plan cold,
//! simulate. Sweeps instead plan through a
//! [`PlanStore`](crate::plan::PlanStore) and call [`run_planned`] with the
//! shared campaign, so scheme generation happens once per distinct
//! [`PlanKey`](crate::plan::PlanKey) instead of once per point.

use crate::config::{ConfigError, ExperimentConfig};
use crate::metrics::Metrics;
use crate::plan::{PlanKey, PlanSource, PlannedCampaign};
use fbf_codes::CodeError;
use fbf_disksim::{ArrayMapping, Engine, EngineConfig, EngineScratch};
use fbf_recovery::SchemeError;

/// Failures a run can hit.
#[derive(Debug)]
pub enum RunError {
    /// The configuration is invalid (caught before any work).
    Config(ConfigError),
    /// The code could not be built (bad prime).
    Code(CodeError),
    /// Scheme generation failed (unschedulable damage).
    Scheme(SchemeError),
    /// A storage backend refused or failed an operation (I/O error,
    /// geometry/chunk-size mismatch, damaged read) — the data-plane
    /// execution paths ([`crate::backend_run`]) only.
    Backend(fbf_disksim::BackendError),
    /// A sweep worker died; the payload is the panic message. Unlike the
    /// other variants this indicates a bug, but it is reported as an error
    /// so one poisoned point cannot abort a whole campaign's process.
    Worker(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Config(e) => write!(f, "invalid configuration: {e}"),
            RunError::Code(e) => write!(f, "code construction failed: {e}"),
            RunError::Scheme(e) => write!(f, "scheme generation failed: {e}"),
            RunError::Backend(e) => write!(f, "storage backend failed: {e}"),
            RunError::Worker(msg) => write!(f, "sweep worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> Self {
        RunError::Config(e)
    }
}

impl From<CodeError> for RunError {
    fn from(e: CodeError) -> Self {
        RunError::Code(e)
    }
}

impl From<SchemeError> for RunError {
    fn from(e: SchemeError) -> Self {
        RunError::Scheme(e)
    }
}

/// Run one reconstruction experiment and return its metrics.
///
/// Plans the campaign cold; to amortise planning across many related
/// experiments, use [`sweep`](crate::sweep::sweep) or a
/// [`PlanStore`](crate::plan::PlanStore) plus [`run_planned`] directly.
pub fn run_experiment(cfg: &ExperimentConfig) -> Result<Metrics, RunError> {
    cfg.validate()?;
    let plan = PlannedCampaign::cold(cfg)?;
    Ok(run_planned(cfg, &plan, PlanSource::Cold))
}

/// [`run_experiment`] with a caller-supplied error campaign instead of the
/// seeded synthetic one — the trace-replay path (`fbf --trace-in`).
///
/// The errors must already be validated against the config's geometry
/// (see [`fbf_workload::validate_against`]); planning and simulation are
/// then byte-identical to a synthetic run that drew the same campaign.
pub fn run_experiment_with_errors(
    cfg: &ExperimentConfig,
    errors: fbf_recovery::ErrorGroup,
) -> Result<Metrics, RunError> {
    cfg.validate()?;
    let plan = PlannedCampaign::cold_with_errors(cfg, errors)?;
    Ok(run_planned(cfg, &plan, PlanSource::Cold))
}

/// Simulate one experiment against an already-planned campaign.
///
/// The plan must have been generated for `cfg`'s [`PlanKey`] (debug-checked)
/// — the remaining fields (policy, cache geometry, disk model…) are free to
/// differ between experiments sharing one plan; that is the point.
pub fn run_planned(cfg: &ExperimentConfig, plan: &PlannedCampaign, source: PlanSource) -> Metrics {
    run_planned_with_scratch(cfg, plan, source, &mut EngineScratch::new())
}

/// [`run_planned`] against caller-owned [`EngineScratch`], so the engine's
/// event heap and per-worker vectors are reused across the many points a
/// sweep worker thread executes instead of re-allocated per point.
pub fn run_planned_with_scratch(
    cfg: &ExperimentConfig,
    plan: &PlannedCampaign,
    source: PlanSource,
    scratch: &mut EngineScratch,
) -> Metrics {
    run_planned_observed(cfg, plan, source, scratch, None)
}

/// [`run_planned_with_scratch`] that additionally publishes live
/// escalation counters into `progress` while a faulted campaign runs —
/// the daemon threads each job's [`Progress`](crate::progress::Progress)
/// through here so `stat`/`top` can report rounds/replans/faults-so-far
/// mid-job.
pub fn run_planned_observed(
    cfg: &ExperimentConfig,
    plan: &PlannedCampaign,
    source: PlanSource,
    scratch: &mut EngineScratch,
    progress: Option<&crate::progress::Progress>,
) -> Metrics {
    debug_assert_eq!(plan.key, PlanKey::of(cfg), "plan/config key mismatch");

    let obs = cfg.obs && fbf_obs::enabled();
    let sim_span = if obs {
        Some(fbf_obs::span("runner", "simulate"))
    } else {
        None
    };
    // A fault plan that can fail reads needs the multi-round escalation
    // driver; everything else (including straggler-only plans, which slow
    // reads but never fail them) stays on the single-pass fast path.
    let mut metrics = if cfg.faults.injects_read_faults() {
        let outcome = crate::faulted::execute_faulted_observed(cfg, plan, scratch, progress);
        Metrics::from_faulted(&outcome, plan.generation, source)
    } else {
        let mapping = ArrayMapping::new(plan.cols, plan.rows, cfg.code.rotated_placement());
        let engine = Engine::new(EngineConfig {
            policy: cfg.policy,
            fbf: cfg.fbf,
            victim_map: Some(std::sync::Arc::clone(&plan.victim_map)),
            cache_chunks: cfg.cache_chunks(),
            sharing: cfg.sharing,
            disk_model: cfg.disk_model,
            sched: cfg.disk_sched,
            straggler: cfg.straggler,
            faults: cfg.faults,
            cache_hit_time: cfg.cache_hit_time,
            chunk_bytes: cfg.chunk_bytes(),
            mapping,
            data_stripes: cfg.stripes as u64,
            obs: cfg.obs,
        });
        let report = engine.run_with_scratch(&plan.scripts, scratch);
        Metrics::from_run(
            &report,
            plan.generation,
            plan.schemes.len(),
            plan.chunks_lost,
            source,
        )
    };
    metrics.evaluate_slo(&cfg.slo);

    if let Some(span) = sim_span {
        span.end_with(&[
            ("policy", fbf_obs::Value::Str(cfg.policy.name())),
            ("cache_mb", fbf_obs::Value::U64(cfg.cache_mb as u64)),
            ("plan", fbf_obs::Value::Str(source.name())),
        ]);
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanStore;
    use fbf_cache::PolicyKind;

    fn small(policy: PolicyKind, cache_mb: usize) -> ExperimentConfig {
        ExperimentConfig::builder()
            .policy(policy)
            .cache_mb(cache_mb)
            .stripes(256)
            .error_count(64)
            .workers(8)
            .gen_threads(1)
            .build()
            .unwrap()
    }

    #[test]
    fn runs_and_recovers_everything() {
        let m = run_experiment(&small(PolicyKind::Fbf, 16)).unwrap();
        assert_eq!(m.stripes_repaired, 64);
        assert_eq!(
            m.disk_writes as usize, m.chunks_recovered,
            "one spare write per lost chunk"
        );
        assert!(m.disk_reads > 0);
        assert!(m.reconstruction_s > 0.0);
        assert_eq!(m.plan_source, PlanSource::Cold);
    }

    #[test]
    fn deterministic_for_same_config() {
        let cfg = small(PolicyKind::Arc, 8);
        let a = run_experiment(&cfg).unwrap();
        let b = run_experiment(&cfg).unwrap();
        assert_eq!(a.hit_ratio, b.hit_ratio);
        assert_eq!(a.disk_reads, b.disk_reads);
        assert_eq!(a.reconstruction_s, b.reconstruction_s);
    }

    #[test]
    fn fbf_beats_lru_with_tight_cache() {
        // The paper's headline: when cache is limited, FBF hits more and
        // reads less than LRU under the same campaign.
        let fbf = run_experiment(&small(PolicyKind::Fbf, 2)).unwrap();
        let lru = run_experiment(&small(PolicyKind::Lru, 2)).unwrap();
        assert!(
            fbf.hit_ratio >= lru.hit_ratio,
            "FBF {:.4} vs LRU {:.4}",
            fbf.hit_ratio,
            lru.hit_ratio
        );
        assert!(fbf.disk_reads <= lru.disk_reads);
    }

    #[test]
    fn bigger_cache_never_reads_more() {
        let small_cache = run_experiment(&small(PolicyKind::Lru, 1)).unwrap();
        let big_cache = run_experiment(&small(PolicyKind::Lru, 64)).unwrap();
        assert!(big_cache.disk_reads <= small_cache.disk_reads);
        assert!(big_cache.hit_ratio >= small_cache.hit_ratio);
    }

    #[test]
    fn bad_prime_is_reported() {
        // Bypass the builder deliberately: struct-update still compiles
        // (back-compat), and the runner's own validation must catch it.
        let cfg = ExperimentConfig {
            p: 8,
            ..small(PolicyKind::Lru, 4)
        };
        assert!(matches!(
            run_experiment(&cfg),
            Err(RunError::Config(ConfigError::NonPrimeP(8)))
        ));
    }

    #[test]
    fn zero_workers_reported_not_panicking() {
        let cfg = ExperimentConfig {
            workers: 0,
            ..small(PolicyKind::Lru, 4)
        };
        assert!(matches!(
            run_experiment(&cfg),
            Err(RunError::Config(ConfigError::ZeroWorkers))
        ));
    }

    #[test]
    fn runner_evaluates_slo_from_config() {
        use crate::config::SloSpec;
        use fbf_disksim::RequestClass;
        // Recovery reads wait behind 10 ms disk accesses — a 1 ms
        // zero-allowance objective cannot hold; a lenient one must.
        let mut cfg = small(PolicyKind::Fbf, 16);
        cfg.slo = SloSpec::none().class(RequestClass::Recovery, 1.0, 0.0);
        let strict = run_experiment(&cfg).unwrap();
        assert!(strict.slo.evaluated);
        assert!(!strict.slo.pass);
        cfg.slo = SloSpec::none().class(RequestClass::Recovery, 1e6, 0.0);
        let lenient = run_experiment(&cfg).unwrap();
        assert!(lenient.slo.evaluated && lenient.slo.pass);
        // The verdict covers every recovery read.
        let v = lenient.slo.classes[RequestClass::Recovery.index()];
        assert_eq!(
            v.total,
            lenient.class_latency[RequestClass::Recovery.index()].count
        );
    }

    #[test]
    fn warm_plan_reproduces_cold_metrics() {
        let cfg = small(PolicyKind::Fbf, 8);
        let cold = run_experiment(&cfg).unwrap();
        let store = PlanStore::new();
        store.plan(&cfg).unwrap();
        let (plan, source) = store.plan(&cfg).unwrap();
        assert_eq!(source, PlanSource::Warm);
        let warm = run_planned(&cfg, &plan, source);
        assert_eq!(warm.hit_ratio, cold.hit_ratio);
        assert_eq!(warm.disk_reads, cold.disk_reads);
        assert_eq!(warm.reconstruction_s, cold.reconstruction_s);
        assert_eq!(warm.plan_source, PlanSource::Warm);
    }
}
