//! Execute a planned campaign against a [`StorageBackend`] data plane.
//!
//! Where [`run_planned`](crate::runner::run_planned) moves chunk
//! *identities* on the simulator's virtual clock, [`run_planned_on`]
//! moves actual payload bytes: every repair reads its source chunks
//! through the same per-worker buffer-cache slices the engine would
//! build ([`fbf_disksim::build_caches`]), XORs them, and writes the
//! recovered chunk to the backend's spare area.
//!
//! # What matches the simulator, and what cannot
//!
//! Under [`CacheSharing::Partitioned`] (the default) each worker's cache
//! slice sees exactly that worker's accesses in script order, so hit /
//! miss accounting — and therefore `disk_reads` — reproduces the engine
//! *by construction*: same caches, same access sequence. The backend
//! conformance suite pins this. Under [`CacheSharing::Shared`] the
//! engine interleaves workers on virtual time while this executor runs
//! them sequentially, so shared-cache hit counts may legitimately
//! differ.
//!
//! Latency figures are **host wall-clock** (recorded as [`SimTime`]
//! nanoseconds), not simulated disk time; they describe the backend's
//! real I/O, not the paper's disk model. Fault classification reuses the
//! deterministic per-chunk draw, but escalation stays single-pass: a
//! hard failure abandons the stripe (counted in
//! [`FaultCounters::skipped_ops`] and surfaced via `failed_reads`)
//! instead of entering the simulator's multi-round re-planning, which
//! needs a virtual clock to be meaningful.

use crate::config::ExperimentConfig;
use crate::metrics::Metrics;
use crate::plan::{PlanKey, PlanSource, PlannedCampaign};
use crate::runner::RunError;
use fbf_cache::FxHashMap;
use fbf_codes::ChunkId;
use fbf_disksim::{
    build_caches, ArrayMapping, BackendError, CacheSharing, DiskStats, EngineConfig, FailedRead,
    FaultDraw, FileBackend, Lookup, ReadFailure, RunReport, SimBackend, SimTime, StorageBackend,
};
use std::path::Path;
use std::time::Instant;

/// Run one experiment end to end on `backend`: validate, plan cold,
/// execute the data plane. The backend-flavoured counterpart of
/// [`run_experiment`](crate::runner::run_experiment).
pub fn run_experiment_on(
    cfg: &ExperimentConfig,
    backend: &mut dyn StorageBackend,
) -> Result<Metrics, RunError> {
    cfg.validate()?;
    let plan = PlannedCampaign::cold(cfg)?;
    run_planned_on(cfg, &plan, PlanSource::Cold, backend)
}

/// Execute an already-planned campaign's data plane on `backend`.
///
/// The backend must match the plan's geometry and the config's chunk
/// size; mismatches are reported as [`RunError::Backend`], never
/// silently truncated.
pub fn run_planned_on(
    cfg: &ExperimentConfig,
    plan: &PlannedCampaign,
    source: PlanSource,
    backend: &mut dyn StorageBackend,
) -> Result<Metrics, RunError> {
    debug_assert_eq!(plan.key, PlanKey::of(cfg), "plan/config key mismatch");
    let mapping = backend.mapping();
    if (mapping.disks, mapping.rows) != (plan.cols, plan.rows) {
        return Err(RunError::Backend(BackendError::Geometry {
            expected: (plan.cols, plan.rows),
            got: (mapping.disks, mapping.rows),
        }));
    }
    let chunk_bytes = cfg.chunk_bytes() as usize;
    if backend.chunk_bytes() != chunk_bytes {
        return Err(RunError::Backend(BackendError::SizeMismatch {
            expected: chunk_bytes,
            got: backend.chunk_bytes(),
        }));
    }

    let workers = plan.scripts.len();
    let ecfg = engine_config(cfg, plan, mapping);
    let mut caches = build_caches(&ecfg, workers);
    // The cache tracks identities; the data plane must also hold the
    // resident payloads. One mirror per slice, kept in lockstep with the
    // cache via insert()'s evicted key.
    let mut payloads: Vec<FxHashMap<ChunkId, Vec<u8>>> = vec![FxHashMap::default(); caches.len()];

    let mut report = RunReport {
        per_disk: vec![DiskStats::default(); mapping.disks],
        ..Default::default()
    };
    let mut stripes_repaired = 0usize;
    let mut chunks_recovered = 0usize;
    let started = Instant::now();
    let mut acc = vec![0u8; chunk_bytes];
    let mut chunk_buf = vec![0u8; chunk_bytes];

    // Scheme i runs on worker i % workers — the same round-robin
    // `build_scripts` lowered the plan's scripts with, so each cache
    // slice replays its script's access sequence exactly.
    for (i, scheme) in plan.schemes.iter().enumerate() {
        let worker = i % workers;
        let slice = match cfg.sharing {
            CacheSharing::Shared => 0,
            CacheSharing::Partitioned => worker,
        };
        let class = plan.scripts[worker].class;
        let mut abandoned = false;
        for (done, repair) in scheme.repairs.iter().enumerate() {
            if abandoned {
                // Mirror the engine: every op of a failed stripe's
                // remaining repairs is skipped (reads + compute + write).
                report.faults.skipped_ops += repair.option.reads.len() as u64 + 2;
                continue;
            }
            acc.fill(0);
            let mut read_idx = 0usize;
            for &cell in &repair.option.reads {
                let chunk = ChunkId::new(scheme.stripe, cell);
                let t0 = Instant::now();
                let served = match caches[slice].access(chunk) {
                    Lookup::Hit => {
                        let bytes = payloads[slice]
                            .get(&chunk)
                            .expect("cache hit without mirrored payload");
                        fbf_codes::xor::xor_into(&mut acc, bytes);
                        true
                    }
                    Lookup::Miss => match classify(backend, chunk, &mut report) {
                        Some(kind) => {
                            report.failed_reads.push(FailedRead {
                                chunk,
                                worker: worker as u32,
                                kind,
                            });
                            false
                        }
                        None => {
                            backend
                                .read_chunk(chunk, &mut chunk_buf)
                                .map_err(RunError::Backend)?;
                            report.disk_reads += 1;
                            let priority = plan.dictionary.priority_of(&chunk);
                            if let Some(evicted) = caches[slice].insert(chunk, priority) {
                                payloads[slice].remove(&evicted);
                            }
                            if caches[slice].contains(&chunk) {
                                payloads[slice].insert(chunk, chunk_buf.clone());
                            }
                            fbf_codes::xor::xor_into(&mut acc, &chunk_buf);
                            true
                        }
                    },
                };
                let elapsed = SimTime::from_nanos(t0.elapsed().as_nanos() as u64);
                report.read_response.record(elapsed);
                report.read_latency.record(elapsed);
                report.class_latency[class.index()].record(elapsed);
                read_idx += 1;
                if !served {
                    // Hard failure: abandon the stripe. Remaining ops of
                    // this repair (unread sources + compute + write) are
                    // skipped, like the engine's failed-stripe fast path.
                    report.faults.skipped_ops += (repair.option.reads.len() - read_idx) as u64 + 2;
                    abandoned = true;
                    break;
                }
            }
            if abandoned {
                // Repairs this stripe *did* finish before failing still
                // count as recovered chunks (their spare writes landed).
                chunks_recovered += done;
                continue;
            }
            let t0 = Instant::now();
            backend
                .write_spare(ChunkId::new(scheme.stripe, repair.target), &acc)
                .map_err(RunError::Backend)?;
            let elapsed = SimTime::from_nanos(t0.elapsed().as_nanos() as u64);
            report.disk_writes += 1;
            report.write_response.record(elapsed);
            report
                .write_completions
                .push(SimTime::from_nanos(started.elapsed().as_nanos() as u64));
        }
        if !abandoned {
            stripes_repaired += 1;
            chunks_recovered += scheme.repairs.len();
        }
    }
    backend.flush().map_err(RunError::Backend)?;
    report.makespan = SimTime::from_nanos(started.elapsed().as_nanos() as u64);
    for cache in &caches {
        report.cache.merge(&cache.stats());
    }
    for (disk, stats) in backend.disk_stats().iter().enumerate() {
        if let Some(d) = report.per_disk.get_mut(disk) {
            d.reads += stats.reads;
            d.writes += stats.writes;
        }
    }

    let mut metrics = Metrics::from_run(
        &report,
        plan.generation,
        stripes_repaired,
        chunks_recovered,
        source,
    );
    metrics.evaluate_slo(&cfg.slo);
    Ok(metrics)
}

/// Pre-read fault classification, mirroring the engine's order: a dead
/// disk swallows the read before any media/transient draw.
fn classify(
    backend: &dyn StorageBackend,
    chunk: ChunkId,
    report: &mut RunReport,
) -> Option<ReadFailure> {
    let disk = backend.mapping().disk_of(chunk);
    if backend.disk_dead(disk) {
        report.faults.dead_disk_reads += 1;
        return Some(ReadFailure::DeadDisk);
    }
    match backend.classify_read(chunk) {
        FaultDraw::Ok => None,
        FaultDraw::Media => {
            report.faults.media_errors += 1;
            Some(ReadFailure::Media)
        }
        FaultDraw::Transient { stalls } => {
            let max = backend.fault_plan().retry.max_retries;
            if stalls <= max {
                report.faults.transient_faults += 1;
                report.faults.retries += u64::from(stalls);
                None
            } else {
                report.faults.retries += u64::from(max);
                report.faults.retries_exhausted += 1;
                Some(ReadFailure::RetriesExhausted)
            }
        }
    }
}

/// The engine-config slice the executor shares with the simulator path:
/// only the cache-construction fields matter here, but building the full
/// struct keeps the two paths from drifting.
fn engine_config(
    cfg: &ExperimentConfig,
    plan: &PlannedCampaign,
    mapping: ArrayMapping,
) -> EngineConfig {
    EngineConfig {
        policy: cfg.policy,
        fbf: cfg.fbf,
        victim_map: Some(std::sync::Arc::clone(&plan.victim_map)),
        cache_chunks: cfg.cache_chunks(),
        sharing: cfg.sharing,
        disk_model: cfg.disk_model,
        sched: cfg.disk_sched,
        straggler: cfg.straggler,
        faults: cfg.faults,
        cache_hit_time: cfg.cache_hit_time,
        chunk_bytes: cfg.chunk_bytes(),
        mapping,
        data_stripes: cfg.stripes as u64,
        obs: cfg.obs,
    }
}

/// A [`SimBackend`] matching `cfg`'s geometry with `plan`'s damage set —
/// the in-memory data plane every campaign can run against with no
/// setup cost.
pub fn sim_backend_for(
    cfg: &ExperimentConfig,
    plan: &PlannedCampaign,
) -> Result<SimBackend, RunError> {
    let code = fbf_codes::StripeCode::build(cfg.code, cfg.p)?;
    Ok(SimBackend::new(
        code,
        cfg.chunk_bytes() as usize,
        cfg.stripes as u64,
        damaged_chunks(plan),
        cfg.faults,
    ))
}

/// A freshly formatted [`FileBackend`] under `dir` holding exactly the
/// stripes `plan` touches (the rest of the per-disk files stay sparse),
/// with `plan`'s damaged cells left unwritten.
pub fn file_backend_for(
    cfg: &ExperimentConfig,
    plan: &PlannedCampaign,
    dir: &Path,
) -> Result<FileBackend, RunError> {
    let code = fbf_codes::StripeCode::build(cfg.code, cfg.p)?;
    let stripes: Vec<u32> = plan
        .errors
        .damage_by_stripe()
        .iter()
        .map(|d| d.stripe)
        .collect();
    let damaged: Vec<ChunkId> = damaged_chunks(plan);
    FileBackend::format(
        dir,
        &code,
        cfg.chunk_bytes() as usize,
        cfg.stripes as u64,
        &stripes,
        &damaged,
        cfg.faults,
    )
    .map_err(RunError::Backend)
}

/// Every lost chunk of the campaign, as chunk ids.
fn damaged_chunks(plan: &PlannedCampaign) -> Vec<ChunkId> {
    plan.errors
        .damage_by_stripe()
        .iter()
        .flat_map(|d| d.cells.iter().map(|&c| ChunkId::new(d.stripe, c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_experiment;
    use fbf_cache::PolicyKind;

    fn small(policy: PolicyKind) -> ExperimentConfig {
        ExperimentConfig::builder()
            .policy(policy)
            .cache_mb(1)
            .chunk_kb(1)
            .stripes(128)
            .error_count(32)
            .workers(8)
            .gen_threads(1)
            .build()
            .unwrap()
    }

    #[test]
    fn sim_backend_reproduces_engine_disk_reads() {
        for policy in [PolicyKind::Fbf, PolicyKind::Lru, PolicyKind::Arc] {
            let cfg = small(policy);
            let engine = run_experiment(&cfg).unwrap();
            let plan = PlannedCampaign::cold(&cfg).unwrap();
            let mut backend = sim_backend_for(&cfg, &plan).unwrap();
            let data = run_planned_on(&cfg, &plan, PlanSource::Cold, &mut backend).unwrap();
            assert_eq!(
                data.disk_reads, engine.disk_reads,
                "{policy:?}: data plane must replay the engine's misses"
            );
            assert_eq!(data.disk_writes, engine.disk_writes);
            assert_eq!(data.hit_ratio, engine.hit_ratio);
            assert_eq!(data.stripes_repaired, engine.stripes_repaired);
            assert_eq!(data.chunks_recovered, engine.chunks_recovered);
        }
    }

    #[test]
    fn repaired_bytes_verify_against_pristine_payloads() {
        let cfg = small(PolicyKind::Fbf);
        let plan = PlannedCampaign::cold(&cfg).unwrap();
        let mut backend = sim_backend_for(&cfg, &plan).unwrap();
        run_planned_on(&cfg, &plan, PlanSource::Cold, &mut backend).unwrap();
        let code = fbf_codes::StripeCode::build(cfg.code, cfg.p).unwrap();
        let mut buf = vec![0u8; cfg.chunk_bytes() as usize];
        for damage in plan.errors.damage_by_stripe() {
            let mut pristine = fbf_codes::Stripe::patterned_seeded(
                code.layout(),
                cfg.chunk_bytes() as usize,
                damage.stripe as u64,
            );
            fbf_codes::encode::encode(&code, &mut pristine).unwrap();
            for &cell in &damage.cells {
                let chunk = ChunkId::new(damage.stripe, cell);
                assert!(backend.is_repaired(chunk));
                backend.read_chunk(chunk, &mut buf).unwrap();
                assert_eq!(
                    &buf[..],
                    &pristine.get(code.layout(), cell)[..],
                    "stripe {} cell ({},{})",
                    damage.stripe,
                    cell.r(),
                    cell.c()
                );
            }
        }
    }

    #[test]
    fn geometry_mismatch_is_reported() {
        let cfg = small(PolicyKind::Lru);
        let plan = PlannedCampaign::cold(&cfg).unwrap();
        let other = ExperimentConfig {
            p: 11,
            ..small(PolicyKind::Lru)
        };
        let mut backend = {
            let code = fbf_codes::StripeCode::build(other.code, other.p).unwrap();
            SimBackend::new(
                code,
                other.chunk_bytes() as usize,
                other.stripes as u64,
                [],
                other.faults,
            )
        };
        assert!(matches!(
            run_planned_on(&cfg, &plan, PlanSource::Cold, &mut backend),
            Err(RunError::Backend(BackendError::Geometry { .. }))
        ));
    }
}
