//! Execute a planned campaign against a [`StorageBackend`] data plane.
//!
//! Where [`run_planned`](crate::runner::run_planned) moves chunk
//! *identities* on the simulator's virtual clock, [`run_planned_on`]
//! moves actual payload bytes: every repair reads its source chunks
//! through the same per-worker buffer-cache slices the engine would
//! build ([`fbf_disksim::build_caches`]), XORs them, and writes the
//! recovered chunk to the backend's spare area.
//!
//! # What matches the simulator, and what cannot
//!
//! Under [`CacheSharing::Partitioned`] (the default) each worker's cache
//! slice sees exactly that worker's accesses in script order, so hit /
//! miss accounting — and therefore `disk_reads` — reproduces the engine
//! *by construction*: same caches, same access sequence. Batched decode
//! (`decode_batch` consecutive schemes gathered per round, one XOR
//! kernel pass per stripe) preserves that property because a batch never
//! holds two schemes of the same slice; the backend conformance suite
//! pins conformance across batch sizes. Under [`CacheSharing::Shared`]
//! the engine interleaves workers on virtual time while this executor
//! runs them sequentially, so shared-cache hit counts may legitimately
//! differ — batching is disabled there (batch of 1).
//!
//! Latency figures are **host wall-clock** (recorded as [`SimTime`]
//! nanoseconds), not simulated disk time; they describe the backend's
//! real I/O, not the paper's disk model. Fault classification reuses the
//! deterministic per-chunk draw, but escalation stays single-pass: a
//! hard failure abandons the stripe (counted in
//! [`FaultCounters::skipped_ops`] and surfaced via `failed_reads`)
//! instead of entering the simulator's multi-round re-planning, which
//! needs a virtual clock to be meaningful.

use crate::config::ExperimentConfig;
use crate::metrics::Metrics;
use crate::plan::{PlanKey, PlanSource, PlannedCampaign};
use crate::runner::RunError;
use fbf_cache::FxHashMap;
use fbf_codes::ChunkId;
use fbf_disksim::{
    build_caches, ArrayMapping, BackendError, CacheSharing, DiskStats, EngineConfig, FailedRead,
    FaultDraw, FileBackend, Lookup, ReadFailure, RunReport, SimBackend, SimTime, StorageBackend,
};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Run one experiment end to end on `backend`: validate, plan cold,
/// execute the data plane. The backend-flavoured counterpart of
/// [`run_experiment`](crate::runner::run_experiment).
pub fn run_experiment_on(
    cfg: &ExperimentConfig,
    backend: &mut dyn StorageBackend,
) -> Result<Metrics, RunError> {
    cfg.validate()?;
    let plan = PlannedCampaign::cold(cfg)?;
    run_planned_on(cfg, &plan, PlanSource::Cold, backend)
}

/// Execute an already-planned campaign's data plane on `backend`.
///
/// The backend must match the plan's geometry and the config's chunk
/// size; mismatches are reported as [`RunError::Backend`], never
/// silently truncated.
pub fn run_planned_on(
    cfg: &ExperimentConfig,
    plan: &PlannedCampaign,
    source: PlanSource,
    backend: &mut dyn StorageBackend,
) -> Result<Metrics, RunError> {
    debug_assert_eq!(plan.key, PlanKey::of(cfg), "plan/config key mismatch");
    let mapping = backend.mapping();
    if (mapping.disks, mapping.rows) != (plan.cols, plan.rows) {
        return Err(RunError::Backend(BackendError::Geometry {
            expected: (plan.cols, plan.rows),
            got: (mapping.disks, mapping.rows),
        }));
    }
    let chunk_bytes = cfg.chunk_bytes() as usize;
    if backend.chunk_bytes() != chunk_bytes {
        return Err(RunError::Backend(BackendError::SizeMismatch {
            expected: chunk_bytes,
            got: backend.chunk_bytes(),
        }));
    }

    let workers = plan.scripts.len();
    let ecfg = engine_config(cfg, plan, mapping);
    let mut caches = build_caches(&ecfg, workers);
    // The cache tracks identities; the data plane must also hold the
    // resident payloads. One mirror per slice, kept in lockstep with the
    // cache via insert()'s evicted key. `Arc` so sources gathered for a
    // deferred batch decode survive an eviction in the same round.
    let mut payloads: Vec<FxHashMap<ChunkId, Arc<Vec<u8>>>> =
        vec![FxHashMap::default(); caches.len()];

    let mut report = RunReport {
        per_disk: vec![DiskStats::default(); mapping.disks],
        per_disk_class_reads: vec![[0; fbf_obs::RequestClass::COUNT]; mapping.disks],
        ..Default::default()
    };
    let mut stripes_repaired = 0usize;
    let mut chunks_recovered = 0usize;
    let started = Instant::now();
    let mut chunk_buf = vec![0u8; chunk_bytes];

    // Batched decode: a batch is up to `decode_batch` *consecutive*
    // schemes. Consecutive schemes land on consecutive workers (scheme i
    // runs on worker i % workers, the same round-robin `build_scripts`
    // lowered the scripts with), so a batch capped at `workers` touches
    // each cache slice at most once — per-slice access order, and with it
    // hit/miss accounting, is exactly the sequential executor's, which is
    // what keeps the engine-conformance pins green at any batch size.
    // A shared cache serializes everything through slice 0, so batching
    // would reorder its accesses: force a batch of 1 there.
    let batch_size = match cfg.sharing {
        CacheSharing::Shared => 1,
        CacheSharing::Partitioned => cfg.decode_batch.clamp(1, workers),
    };
    let obs = cfg.obs && fbf_obs::enabled();
    let mut batches = 0u64;
    let mut accs: Vec<Vec<u8>> = vec![vec![0u8; chunk_bytes]; batch_size];
    let mut sources: Vec<Vec<Arc<Vec<u8>>>> = vec![Vec::new(); batch_size];
    // Per-scheme batch state: (abandoned, repairs completed).
    let mut states: Vec<(bool, usize)> = vec![(false, 0); batch_size];

    for (base, batch) in plan.schemes.chunks(batch_size).enumerate() {
        let span = if obs {
            Some(fbf_obs::span("data_plane", "decode_batch"))
        } else {
            None
        };
        batches += 1;
        for st in states.iter_mut() {
            *st = (false, 0);
        }
        let rounds = batch.iter().map(|s| s.repairs.len()).max().unwrap_or(0);
        // Round r handles repair #r of every scheme in the batch: gather
        // every source chunk (cache hit or backend read), then one XOR
        // kernel pass per stripe, then the spare writes. Chained repairs
        // stay correct because a repair only ever reads chunks recovered
        // by *earlier* rounds of its own scheme — written to the spare
        // area before this round's gathers run — never by a batch peer
        // (peers are different stripes).
        for round in 0..rounds {
            // Gather.
            for (j, scheme) in batch.iter().enumerate() {
                let worker = (base * batch_size + j) % workers;
                let slice = match cfg.sharing {
                    CacheSharing::Shared => 0,
                    CacheSharing::Partitioned => worker,
                };
                let class = plan.scripts[worker].class;
                let Some(repair) = scheme.repairs.get(round) else {
                    continue;
                };
                let (abandoned, done) = &mut states[j];
                if *abandoned {
                    // Mirror the engine: every op of a failed stripe's
                    // remaining repairs is skipped (reads + compute +
                    // write).
                    report.faults.skipped_ops += repair.option.reads.len() as u64 + 2;
                    continue;
                }
                sources[j].clear();
                let mut read_idx = 0usize;
                for &cell in &repair.option.reads {
                    let chunk = ChunkId::new(scheme.stripe, cell);
                    let t0 = Instant::now();
                    let served = match caches[slice].access(chunk) {
                        Lookup::Hit => {
                            let bytes = payloads[slice]
                                .get(&chunk)
                                .expect("cache hit without mirrored payload");
                            sources[j].push(Arc::clone(bytes));
                            true
                        }
                        Lookup::Miss => match classify(backend, chunk, &mut report) {
                            Some(kind) => {
                                report.failed_reads.push(FailedRead {
                                    chunk,
                                    worker: worker as u32,
                                    kind,
                                });
                                false
                            }
                            None => {
                                backend
                                    .read_chunk(chunk, &mut chunk_buf)
                                    .map_err(RunError::Backend)?;
                                report.disk_reads += 1;
                                report.per_disk_class_reads[mapping.disk_of(chunk)]
                                    [class.index()] += 1;
                                let bytes = Arc::new(chunk_buf.clone());
                                let priority = plan.dictionary.priority_of(&chunk);
                                if let Some(evicted) = caches[slice].insert(chunk, priority) {
                                    payloads[slice].remove(&evicted);
                                }
                                if caches[slice].contains(&chunk) {
                                    payloads[slice].insert(chunk, Arc::clone(&bytes));
                                }
                                sources[j].push(bytes);
                                true
                            }
                        },
                    };
                    let elapsed = SimTime::from_nanos(t0.elapsed().as_nanos() as u64);
                    report.read_response.record(elapsed);
                    report.read_latency.record(elapsed);
                    report.class_latency[class.index()].record(elapsed);
                    read_idx += 1;
                    if !served {
                        // Hard failure: abandon the stripe. Remaining ops
                        // of this repair (unread sources + compute +
                        // write) are skipped, like the engine's
                        // failed-stripe fast path. Repairs that *did*
                        // finish still count as recovered chunks (their
                        // spare writes landed).
                        report.faults.skipped_ops +=
                            (repair.option.reads.len() - read_idx) as u64 + 2;
                        *abandoned = true;
                        chunks_recovered += *done;
                        sources[j].clear();
                        break;
                    }
                }
            }
            // Decode: one multi-source kernel pass per gathered stripe.
            for (j, scheme) in batch.iter().enumerate() {
                if states[j].0 || scheme.repairs.get(round).is_none() {
                    continue;
                }
                let refs: Vec<&[u8]> = sources[j].iter().map(|a| a.as_slice()).collect();
                fbf_codes::xor::xor_many(&mut accs[j], &refs);
            }
            // Write the recovered chunks to the spare area.
            for (j, scheme) in batch.iter().enumerate() {
                let Some(repair) = scheme.repairs.get(round) else {
                    continue;
                };
                if states[j].0 {
                    continue;
                }
                let t0 = Instant::now();
                backend
                    .write_spare(ChunkId::new(scheme.stripe, repair.target), &accs[j])
                    .map_err(RunError::Backend)?;
                let elapsed = SimTime::from_nanos(t0.elapsed().as_nanos() as u64);
                report.disk_writes += 1;
                report.write_response.record(elapsed);
                report
                    .write_completions
                    .push(SimTime::from_nanos(started.elapsed().as_nanos() as u64));
                states[j].1 += 1;
            }
        }
        for (j, scheme) in batch.iter().enumerate() {
            if !states[j].0 {
                stripes_repaired += 1;
                chunks_recovered += scheme.repairs.len();
            }
        }
        if let Some(span) = span {
            span.end_with(&[
                ("stripes", fbf_obs::Value::U64(batch.len() as u64)),
                ("rounds", fbf_obs::Value::U64(rounds as u64)),
            ]);
        }
    }
    if obs {
        fbf_obs::counter(
            "data_plane",
            "decode",
            &[
                ("batches", fbf_obs::Value::U64(batches)),
                ("batch_size", fbf_obs::Value::U64(batch_size as u64)),
            ],
        );
    }
    backend.flush().map_err(RunError::Backend)?;
    report.makespan = SimTime::from_nanos(started.elapsed().as_nanos() as u64);
    for cache in &caches {
        report.cache.merge(&cache.stats());
    }
    for (disk, stats) in backend.disk_stats().iter().enumerate() {
        if let Some(d) = report.per_disk.get_mut(disk) {
            d.reads += stats.reads;
            d.writes += stats.writes;
        }
    }

    let mut metrics = Metrics::from_run(
        &report,
        plan.generation,
        stripes_repaired,
        chunks_recovered,
        source,
    );
    metrics.evaluate_slo(&cfg.slo);
    Ok(metrics)
}

/// Pre-read fault classification, mirroring the engine's order: a dead
/// disk swallows the read before any media/transient draw.
fn classify(
    backend: &dyn StorageBackend,
    chunk: ChunkId,
    report: &mut RunReport,
) -> Option<ReadFailure> {
    let disk = backend.mapping().disk_of(chunk);
    if backend.disk_dead(disk) {
        report.faults.dead_disk_reads += 1;
        return Some(ReadFailure::DeadDisk);
    }
    match backend.classify_read(chunk) {
        FaultDraw::Ok => None,
        FaultDraw::Media => {
            report.faults.media_errors += 1;
            Some(ReadFailure::Media)
        }
        FaultDraw::Transient { stalls } => {
            let max = backend.fault_plan().retry.max_retries;
            if stalls <= max {
                report.faults.transient_faults += 1;
                report.faults.retries += u64::from(stalls);
                None
            } else {
                report.faults.retries += u64::from(max);
                report.faults.retries_exhausted += 1;
                Some(ReadFailure::RetriesExhausted)
            }
        }
    }
}

/// The engine-config slice the executor shares with the simulator path:
/// only the cache-construction fields matter here, but building the full
/// struct keeps the two paths from drifting.
fn engine_config(
    cfg: &ExperimentConfig,
    plan: &PlannedCampaign,
    mapping: ArrayMapping,
) -> EngineConfig {
    EngineConfig {
        policy: cfg.policy,
        fbf: cfg.fbf,
        victim_map: Some(std::sync::Arc::clone(&plan.victim_map)),
        cache_chunks: cfg.cache_chunks(),
        sharing: cfg.sharing,
        disk_model: cfg.disk_model,
        sched: cfg.disk_sched,
        straggler: cfg.straggler,
        faults: cfg.faults,
        cache_hit_time: cfg.cache_hit_time,
        chunk_bytes: cfg.chunk_bytes(),
        mapping,
        data_stripes: cfg.stripes as u64,
        obs: cfg.obs,
    }
}

/// A [`SimBackend`] matching `cfg`'s geometry with `plan`'s damage set —
/// the in-memory data plane every campaign can run against with no
/// setup cost.
pub fn sim_backend_for(
    cfg: &ExperimentConfig,
    plan: &PlannedCampaign,
) -> Result<SimBackend, RunError> {
    let code = fbf_codes::StripeCode::build(cfg.code, cfg.p)?;
    Ok(SimBackend::new(
        code,
        cfg.chunk_bytes() as usize,
        cfg.stripes as u64,
        damaged_chunks(plan),
        cfg.faults,
    ))
}

/// A freshly formatted [`FileBackend`] under `dir` holding exactly the
/// stripes `plan` touches (the rest of the per-disk files stay sparse),
/// with `plan`'s damaged cells left unwritten.
pub fn file_backend_for(
    cfg: &ExperimentConfig,
    plan: &PlannedCampaign,
    dir: &Path,
) -> Result<FileBackend, RunError> {
    let code = fbf_codes::StripeCode::build(cfg.code, cfg.p)?;
    let stripes: Vec<u32> = plan
        .errors
        .damage_by_stripe()
        .iter()
        .map(|d| d.stripe)
        .collect();
    let damaged: Vec<ChunkId> = damaged_chunks(plan);
    FileBackend::format(
        dir,
        &code,
        cfg.chunk_bytes() as usize,
        cfg.stripes as u64,
        &stripes,
        &damaged,
        cfg.faults,
    )
    .map_err(RunError::Backend)
}

/// Every lost chunk of the campaign, as chunk ids.
fn damaged_chunks(plan: &PlannedCampaign) -> Vec<ChunkId> {
    plan.errors
        .damage_by_stripe()
        .iter()
        .flat_map(|d| d.cells.iter().map(|&c| ChunkId::new(d.stripe, c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_experiment;
    use fbf_cache::PolicyKind;

    fn small(policy: PolicyKind) -> ExperimentConfig {
        ExperimentConfig::builder()
            .policy(policy)
            .cache_mb(1)
            .chunk_kb(1)
            .stripes(128)
            .error_count(32)
            .workers(8)
            .gen_threads(1)
            .build()
            .unwrap()
    }

    #[test]
    fn sim_backend_reproduces_engine_disk_reads() {
        for policy in [PolicyKind::Fbf, PolicyKind::Lru, PolicyKind::Arc] {
            let cfg = small(policy);
            let engine = run_experiment(&cfg).unwrap();
            let plan = PlannedCampaign::cold(&cfg).unwrap();
            let mut backend = sim_backend_for(&cfg, &plan).unwrap();
            let data = run_planned_on(&cfg, &plan, PlanSource::Cold, &mut backend).unwrap();
            assert_eq!(
                data.disk_reads, engine.disk_reads,
                "{policy:?}: data plane must replay the engine's misses"
            );
            assert_eq!(data.disk_writes, engine.disk_writes);
            assert_eq!(data.hit_ratio, engine.hit_ratio);
            assert_eq!(data.stripes_repaired, engine.stripes_repaired);
            assert_eq!(data.chunks_recovered, engine.chunks_recovered);
        }
    }

    #[test]
    fn repaired_bytes_verify_against_pristine_payloads() {
        let cfg = small(PolicyKind::Fbf);
        let plan = PlannedCampaign::cold(&cfg).unwrap();
        let mut backend = sim_backend_for(&cfg, &plan).unwrap();
        run_planned_on(&cfg, &plan, PlanSource::Cold, &mut backend).unwrap();
        let code = fbf_codes::StripeCode::build(cfg.code, cfg.p).unwrap();
        let mut buf = vec![0u8; cfg.chunk_bytes() as usize];
        for damage in plan.errors.damage_by_stripe() {
            let mut pristine = fbf_codes::Stripe::patterned_seeded(
                code.layout(),
                cfg.chunk_bytes() as usize,
                damage.stripe as u64,
            );
            fbf_codes::encode::encode(&code, &mut pristine).unwrap();
            for &cell in &damage.cells {
                let chunk = ChunkId::new(damage.stripe, cell);
                assert!(backend.is_repaired(chunk));
                backend.read_chunk(chunk, &mut buf).unwrap();
                assert_eq!(
                    &buf[..],
                    &pristine.get(code.layout(), cell)[..],
                    "stripe {} cell ({},{})",
                    damage.stripe,
                    cell.r(),
                    cell.c()
                );
            }
        }
    }

    #[test]
    fn geometry_mismatch_is_reported() {
        let cfg = small(PolicyKind::Lru);
        let plan = PlannedCampaign::cold(&cfg).unwrap();
        let other = ExperimentConfig {
            p: 11,
            ..small(PolicyKind::Lru)
        };
        let mut backend = {
            let code = fbf_codes::StripeCode::build(other.code, other.p).unwrap();
            SimBackend::new(
                code,
                other.chunk_bytes() as usize,
                other.stripes as u64,
                [],
                other.faults,
            )
        };
        assert!(matches!(
            run_planned_on(&cfg, &plan, PlanSource::Cold, &mut backend),
            Err(RunError::Backend(BackendError::Geometry { .. }))
        ));
    }
}
