//! The four evaluation metrics of §IV-A, plus FBF's overhead (Table IV)
//! and — when a fault plan is active — the fault/escalation counters.

use crate::config::SloSpec;
use crate::faulted::FaultedOutcome;
use crate::plan::PlanSource;
use fbf_cache::CacheStats;
use fbf_disksim::{FaultCounters, Histogram, RequestClass, RunReport, SimTime};
use fbf_recovery::DataLoss;
use serde::{Deserialize, Serialize};

/// Schema revision of every metrics JSON document this workspace emits
/// ([`Metrics::to_json`], `BENCH_*.json` snapshots, daemon replies).
/// Bump when a key is renamed, removed, or changes meaning — consumers
/// ([`fbf-bench`'s gate, `scripts/check_trace.py`) reject documents whose
/// version they do not understand instead of misreading them.
pub const METRICS_SCHEMA_VERSION: u64 = 1;

/// Tail summary of one request class's read latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassLatency {
    /// Reads attributed to the class.
    pub count: u64,
    /// Median, ms (0 when the class saw no reads).
    pub p50_ms: f64,
    /// 90th percentile, ms.
    pub p90_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// 99.9th percentile, ms.
    pub p999_ms: f64,
}

impl ClassLatency {
    /// Tail summary of a latency histogram (the daemon's `stat` command
    /// renders digests merged across jobs through this too).
    pub fn from_histogram(h: &Histogram) -> Self {
        let ms = |q: Option<SimTime>| q.map_or(0.0, |t| t.as_millis_f64());
        ClassLatency {
            count: h.count(),
            p50_ms: ms(h.p50()),
            p90_ms: ms(h.p90()),
            p99_ms: ms(h.p99()),
            p999_ms: ms(h.p999()),
        }
    }
}

/// One class's SLO evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassVerdict {
    /// Did the spec carry a threshold for this class?
    pub active: bool,
    /// The threshold evaluated against, ms (0 when inactive).
    pub threshold_ms: f64,
    /// Reads over the threshold (conservative, bucket-resolution).
    pub violations: u64,
    /// Reads the class saw in total.
    pub total: u64,
    /// Violation fraction stayed within the allowance? Inactive classes
    /// pass vacuously.
    pub pass: bool,
}

impl ClassVerdict {
    /// Observed violation fraction (0 when the class saw no reads).
    pub fn violation_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.violations as f64 / self.total as f64
        }
    }
}

/// Typed outcome of evaluating an [`SloSpec`] against a run's per-class
/// latency digests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SloVerdict {
    /// Was any objective active? `false` means `pass` is vacuous.
    pub evaluated: bool,
    /// Every active class within its allowance?
    pub pass: bool,
    /// Per-class detail, indexed by [`RequestClass::index`].
    pub classes: [ClassVerdict; RequestClass::COUNT],
}

impl SloVerdict {
    /// The verdict of a run evaluated against an empty spec.
    pub fn vacuous() -> Self {
        SloVerdict {
            evaluated: false,
            pass: true,
            classes: [ClassVerdict {
                pass: true,
                ..Default::default()
            }; RequestClass::COUNT],
        }
    }
}

/// Everything measured over one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Metric 1 — buffer-cache hit ratio during reconstruction.
    pub hit_ratio: f64,
    /// Metric 2 — total disk reads issued during recovery.
    pub disk_reads: u64,
    /// Metric 3 — mean response time of chunk read requests, ms.
    pub avg_response_ms: f64,
    /// Median read latency, ms.
    pub p50_response_ms: f64,
    /// 95th-percentile read latency, ms.
    pub p95_response_ms: f64,
    /// 99th-percentile read latency, ms — the tail the mean hides.
    pub p99_response_ms: f64,
    /// Metric 4 — total (virtual) reconstruction time, seconds.
    pub reconstruction_s: f64,
    /// Repair progress: time by which half of the lost chunks were
    /// rewritten (window-of-vulnerability midpoint), seconds.
    pub repair_p50_s: f64,
    /// Time by which 90% of the lost chunks were rewritten, seconds.
    pub repair_p90_s: f64,
    /// Table IV — host time spent generating schemes + priorities,
    /// averaged per stripe, ms.
    pub overhead_per_stripe_ms: f64,
    /// Table IV — total overhead as a percentage of reconstruction time.
    pub overhead_pct: f64,
    /// Spare-area writes (sanity: equals lost chunks).
    pub disk_writes: u64,
    /// Raw cache counters.
    pub cache: CacheStats,
    /// Stripes repaired.
    pub stripes_repaired: usize,
    /// Chunks recovered.
    pub chunks_recovered: usize,
    /// Whether this run generated its plan (`Cold`) or reused a shared one
    /// (`Warm`). The overhead figures always report the *cold* generation
    /// cost; this field records their provenance.
    pub plan_source: PlanSource,
    /// Fault-path counters (all zero when the fault plan is inactive).
    pub faults: FaultCounters,
    /// Stripe re-plans issued by failure escalation.
    pub replans: u64,
    /// Escalation rounds executed (0 = no hard failures).
    pub replan_rounds: u64,
    /// Stripes whose damage exceeded the code's fault tolerance.
    pub stripes_lost: usize,
    /// Stripes left neither repaired nor typed lost because the
    /// escalation round cap hit ([`FaultedOutcome::rounds_exhausted`]).
    /// Non-zero means the campaign did NOT converge.
    pub stripes_unresolved: usize,
    /// Per-stripe data-loss verdicts (empty unless faults destroyed data).
    pub data_loss: Vec<DataLoss>,
    /// Per-class read-latency tail summaries, indexed by
    /// [`RequestClass::index`]. Counts partition `read_latency` exactly.
    pub class_latency: [ClassLatency; RequestClass::COUNT],
    /// The per-class digests themselves (mergeable; Prometheus exposition
    /// and SLO evaluation read these).
    pub class_digests: [Histogram; RequestClass::COUNT],
    /// Deepest any disk queue got during the run (high-water, merged via
    /// max across rounds and workers).
    pub queue_depth_max: u64,
    /// Declustering uniformity: busiest disk's reads over the per-disk
    /// mean (1.0 = perfectly balanced; 0 = no reads).
    pub read_balance: f64,
    /// SLO evaluation outcome (vacuous pass until
    /// [`evaluate_slo`](Self::evaluate_slo) runs with an active spec).
    pub slo: SloVerdict,
}

impl Metrics {
    /// Assemble from an engine report plus campaign bookkeeping.
    pub fn from_run(
        report: &RunReport,
        overhead_host: std::time::Duration,
        stripes_repaired: usize,
        chunks_recovered: usize,
        plan_source: PlanSource,
    ) -> Self {
        let recon = report.makespan;
        let overhead_ms = overhead_host.as_secs_f64() * 1e3;
        Metrics {
            hit_ratio: report.cache.hit_ratio(),
            disk_reads: report.disk_reads,
            avg_response_ms: report.read_response.avg_millis(),
            p50_response_ms: report.read_latency.p50().map_or(0.0, |t| t.as_millis_f64()),
            p95_response_ms: report.read_latency.p95().map_or(0.0, |t| t.as_millis_f64()),
            p99_response_ms: report.read_latency.p99().map_or(0.0, |t| t.as_millis_f64()),
            reconstruction_s: recon.as_secs_f64(),
            repair_p50_s: completion_quantile(&report.write_completions, 0.50),
            repair_p90_s: completion_quantile(&report.write_completions, 0.90),
            overhead_per_stripe_ms: if stripes_repaired == 0 {
                0.0
            } else {
                overhead_ms / stripes_repaired as f64
            },
            overhead_pct: if recon == SimTime::ZERO {
                0.0
            } else {
                100.0 * overhead_ms / recon.as_millis_f64()
            },
            disk_writes: report.disk_writes,
            cache: report.cache,
            stripes_repaired,
            chunks_recovered,
            plan_source,
            faults: report.faults,
            replans: 0,
            replan_rounds: 0,
            stripes_lost: 0,
            stripes_unresolved: 0,
            data_loss: Vec::new(),
            class_latency: std::array::from_fn(|i| {
                ClassLatency::from_histogram(&report.class_latency[i])
            }),
            class_digests: report.class_latency.clone(),
            queue_depth_max: report.queue_depth_max(),
            read_balance: report.read_balance(),
            slo: SloVerdict::vacuous(),
        }
    }

    /// Evaluate `spec` against the run's per-class digests, storing the
    /// typed verdict in `self.slo`. Violation counting is conservative at
    /// bucket resolution (see [`ClassSlo`](crate::ClassSlo)): a read
    /// counts against the threshold when its bucket's upper edge exceeds
    /// it.
    pub fn evaluate_slo(&mut self, spec: &SloSpec) {
        let mut verdict = SloVerdict::vacuous();
        verdict.evaluated = spec.is_active();
        for class in RequestClass::ALL {
            let slot = &mut verdict.classes[class.index()];
            let Some(threshold_ms) = spec.get(class).threshold_ms else {
                continue;
            };
            let digest = self.class_digests[class.index()].digest();
            let threshold_ns = (threshold_ms * 1e6).max(0.0) as u64;
            slot.active = true;
            slot.threshold_ms = threshold_ms;
            slot.total = digest.count();
            slot.violations = digest.count_over_ns(threshold_ns);
            slot.pass = slot.violation_fraction() <= spec.get(class).allowed_violation_fraction;
            verdict.pass &= slot.pass;
        }
        if verdict.evaluated && !verdict.pass {
            // A breached objective is a post-mortem moment: snapshot the
            // flight recorder (no-op unless one is installed).
            fbf_obs::ring::trigger_dump("slo-breach");
        }
        self.slo = verdict;
    }

    /// Assemble from a multi-round faulted execution: the merged report's
    /// figures plus the escalation verdicts.
    pub fn from_faulted(
        outcome: &FaultedOutcome,
        overhead_host: std::time::Duration,
        plan_source: PlanSource,
    ) -> Self {
        let mut m = Metrics::from_run(
            &outcome.report,
            overhead_host,
            outcome.stripes_repaired,
            outcome.chunks_recovered,
            plan_source,
        );
        m.replans = outcome.replans;
        m.replan_rounds = outcome.rounds;
        m.stripes_lost = outcome.data_loss.len();
        m.stripes_unresolved = outcome.unresolved.len();
        m.data_loss = outcome.data_loss.clone();
        m
    }

    /// Hand-rolled JSON object of the scalar metrics (the vendored serde
    /// is an offline stub, so reports serialise by hand like the bench
    /// binaries do). Stable key order; data-loss stripes as an array.
    pub fn to_json(&self) -> String {
        let loss: Vec<String> = self
            .data_loss
            .iter()
            .map(|d| format!("{{\"stripe\":{},\"columns\":{}}}", d.stripe, d.columns))
            .collect();
        let classes: Vec<String> = RequestClass::ALL
            .iter()
            .map(|c| {
                let l = &self.class_latency[c.index()];
                format!(
                    concat!(
                        "\"{}\":{{\"count\":{},\"p50_ms\":{:.6},\"p90_ms\":{:.6},",
                        "\"p99_ms\":{:.6},\"p999_ms\":{:.6}}}"
                    ),
                    c.name(),
                    l.count,
                    l.p50_ms,
                    l.p90_ms,
                    l.p99_ms,
                    l.p999_ms
                )
            })
            .collect();
        let slo_classes: Vec<String> = RequestClass::ALL
            .iter()
            .map(|c| {
                let v = &self.slo.classes[c.index()];
                format!(
                    concat!(
                        "\"{}\":{{\"active\":{},\"threshold_ms\":{:.6},",
                        "\"violations\":{},\"total\":{},\"pass\":{}}}"
                    ),
                    c.name(),
                    v.active,
                    v.threshold_ms,
                    v.violations,
                    v.total,
                    v.pass
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"schema_version\":{},",
                "\"hit_ratio\":{:.6},\"disk_reads\":{},\"disk_writes\":{},",
                "\"avg_response_ms\":{:.6},\"p99_response_ms\":{:.6},",
                "\"reconstruction_s\":{:.6},\"stripes_repaired\":{},",
                "\"chunks_recovered\":{},\"media_errors\":{},",
                "\"transient_faults\":{},\"retries\":{},\"retries_exhausted\":{},",
                "\"dead_disk_reads\":{},\"skipped_ops\":{},\"replans\":{},",
                "\"replan_rounds\":{},\"stripes_lost\":{},\"stripes_unresolved\":{},",
                "\"data_loss\":[{}],",
                "\"queue_depth_max\":{},\"read_balance\":{:.6},",
                "\"classes\":{{{}}},",
                "\"slo\":{{\"evaluated\":{},\"pass\":{},\"classes\":{{{}}}}}}}"
            ),
            METRICS_SCHEMA_VERSION,
            self.hit_ratio,
            self.disk_reads,
            self.disk_writes,
            self.avg_response_ms,
            self.p99_response_ms,
            self.reconstruction_s,
            self.stripes_repaired,
            self.chunks_recovered,
            self.faults.media_errors,
            self.faults.transient_faults,
            self.faults.retries,
            self.faults.retries_exhausted,
            self.faults.dead_disk_reads,
            self.faults.skipped_ops,
            self.replans,
            self.replan_rounds,
            self.stripes_lost,
            self.stripes_unresolved,
            loss.join(","),
            self.queue_depth_max,
            self.read_balance,
            classes.join(","),
            self.slo.evaluated,
            self.slo.pass,
            slo_classes.join(",")
        )
    }
}

/// The completion instant (seconds) by which fraction `q` of the writes
/// had landed; 0 when no writes were recorded. Completion order is already
/// sorted by construction (events fire in time order).
fn completion_quantile(completions: &[SimTime], q: f64) -> f64 {
    if completions.is_empty() {
        return 0.0;
    }
    let rank = ((completions.len() as f64 * q).ceil() as usize).clamp(1, completions.len());
    completions[rank - 1].as_secs_f64()
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hit={:.4} reads={} resp={:.3}ms recon={:.3}s overhead={:.4}ms/stripe ({:.2}%)",
            self.hit_ratio,
            self.disk_reads,
            self.avg_response_ms,
            self.reconstruction_s,
            self.overhead_per_stripe_ms,
            self.overhead_pct
        )?;
        if !self.faults.is_empty() || self.stripes_lost > 0 {
            write!(
                f,
                " faults[hard={} retries={} replans={} rounds={} lost={}]",
                self.faults.hard_failures(),
                self.faults.retries,
                self.replans,
                self.replan_rounds,
                self.stripes_lost
            )?;
        }
        if self.stripes_unresolved > 0 {
            write!(f, " UNRESOLVED[stripes={}]", self.stripes_unresolved)?;
        }
        for class in RequestClass::ALL {
            let l = &self.class_latency[class.index()];
            if l.count > 0 {
                write!(f, " {}[n={} p99={:.2}ms]", class.name(), l.count, l.p99_ms)?;
            }
        }
        if self.slo.evaluated {
            write!(f, " slo={}", if self.slo.pass { "PASS" } else { "FAIL" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbf_disksim::ResponseStats;

    fn report() -> RunReport {
        let cache = CacheStats {
            hits: 30,
            misses: 70,
            ..Default::default()
        };
        let mut read_response = ResponseStats::default();
        for _ in 0..10 {
            read_response.merge(&ResponseStats {
                count: 1,
                total: SimTime::from_millis(5),
                max: SimTime::from_millis(5),
            });
        }
        RunReport {
            makespan: SimTime::from_secs(2),
            cache,
            disk_reads: 70,
            disk_writes: 12,
            read_response,
            ..Default::default()
        }
    }

    #[test]
    fn from_run_maps_fields() {
        let m = Metrics::from_run(
            &report(),
            std::time::Duration::from_millis(20),
            10,
            12,
            PlanSource::Cold,
        );
        assert!((m.hit_ratio - 0.3).abs() < 1e-12);
        assert_eq!(m.disk_reads, 70);
        assert!((m.avg_response_ms - 5.0).abs() < 1e-9);
        assert!((m.reconstruction_s - 2.0).abs() < 1e-12);
        assert!((m.overhead_per_stripe_ms - 2.0).abs() < 1e-9);
        assert!((m.overhead_pct - 1.0).abs() < 1e-9);
        assert_eq!(m.disk_writes, 12);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let r = RunReport::default();
        let m = Metrics::from_run(&r, std::time::Duration::ZERO, 0, 0, PlanSource::Cold);
        assert_eq!(m.overhead_per_stripe_ms, 0.0);
        assert_eq!(m.overhead_pct, 0.0);
        assert_eq!(m.hit_ratio, 0.0);
    }

    #[test]
    fn repair_progress_quantiles() {
        let mut r = report();
        r.write_completions = (1..=10).map(SimTime::from_secs).collect();
        let m = Metrics::from_run(&r, std::time::Duration::ZERO, 10, 10, PlanSource::Cold);
        assert!((m.repair_p50_s - 5.0).abs() < 1e-9);
        assert!((m.repair_p90_s - 9.0).abs() < 1e-9);
    }

    #[test]
    fn repair_progress_empty_is_zero() {
        let m = Metrics::from_run(
            &RunReport::default(),
            std::time::Duration::ZERO,
            0,
            0,
            PlanSource::Cold,
        );
        assert_eq!(m.repair_p50_s, 0.0);
        assert_eq!(m.repair_p90_s, 0.0);
    }

    #[test]
    fn class_summaries_and_balance_map_from_report() {
        use fbf_disksim::DiskStats;
        let mut r = report();
        for _ in 0..90 {
            r.class_latency[RequestClass::App.index()].record(SimTime::from_millis(2));
        }
        for _ in 0..10 {
            r.class_latency[RequestClass::Recovery.index()].record(SimTime::from_millis(40));
        }
        r.per_disk = vec![
            DiskStats {
                reads: 30,
                max_queue: 4,
                ..Default::default()
            },
            DiskStats {
                reads: 10,
                max_queue: 9,
                ..Default::default()
            },
        ];
        let m = Metrics::from_run(&r, std::time::Duration::ZERO, 1, 1, PlanSource::Cold);
        assert_eq!(m.class_latency[RequestClass::App.index()].count, 90);
        assert_eq!(m.class_latency[RequestClass::Recovery.index()].count, 10);
        assert!(m.class_latency[RequestClass::App.index()].p99_ms < 3.0);
        assert!(m.class_latency[RequestClass::Recovery.index()].p99_ms > 30.0);
        assert_eq!(m.queue_depth_max, 9, "high-water is a max over disks");
        // 30 reads on the busiest of two disks, mean 20 → balance 1.5.
        assert!((m.read_balance - 1.5).abs() < 1e-12);
    }

    #[test]
    fn slo_verdict_passes_and_fails_per_class() {
        let mut r = report();
        for _ in 0..99 {
            r.class_latency[RequestClass::App.index()].record(SimTime::from_millis(2));
        }
        r.class_latency[RequestClass::App.index()].record(SimTime::from_millis(100));
        let mut m = Metrics::from_run(&r, std::time::Duration::ZERO, 1, 1, PlanSource::Cold);
        assert!(m.slo.pass && !m.slo.evaluated, "vacuous until evaluated");

        // 1% of reads at 100 ms: a 25 ms threshold with 2% allowance passes.
        m.evaluate_slo(&SloSpec::none().class(RequestClass::App, 25.0, 0.02));
        assert!(m.slo.evaluated);
        assert!(m.slo.pass, "{:?}", m.slo.classes[RequestClass::App.index()]);
        let v = m.slo.classes[RequestClass::App.index()];
        assert!(v.active);
        assert_eq!(v.total, 100);
        assert_eq!(v.violations, 1);

        // Zero allowance fails on the same tail.
        m.evaluate_slo(&SloSpec::none().class(RequestClass::App, 25.0, 0.0));
        assert!(!m.slo.pass);
        // A class with no traffic passes vacuously even at zero allowance.
        m.evaluate_slo(&SloSpec::none().class(RequestClass::Scrub, 1.0, 0.0));
        assert!(m.slo.pass);
        assert_eq!(m.slo.classes[RequestClass::Scrub.index()].total, 0);
    }

    #[test]
    fn json_carries_classes_and_slo() {
        let mut r = report();
        r.class_latency[RequestClass::App.index()].record(SimTime::from_millis(2));
        let mut m = Metrics::from_run(&r, std::time::Duration::ZERO, 1, 1, PlanSource::Cold);
        m.evaluate_slo(&SloSpec::none().class(RequestClass::App, 25.0, 0.0));
        let json = m.to_json();
        assert!(json.starts_with("{\"schema_version\":1,"));
        assert!(json.contains("\"queue_depth_max\":"));
        assert!(json.contains("\"read_balance\":"));
        assert!(json.contains("\"app\":{\"count\":1,"));
        assert!(json.contains("\"slo\":{\"evaluated\":true,\"pass\":true,"));
    }

    #[test]
    fn display_mentions_busy_classes_and_verdict() {
        let mut r = report();
        r.class_latency[RequestClass::Recovery.index()].record(SimTime::from_millis(5));
        let mut m = Metrics::from_run(&r, std::time::Duration::ZERO, 1, 1, PlanSource::Cold);
        m.evaluate_slo(&SloSpec::none().class(RequestClass::Recovery, 50.0, 0.0));
        let s = m.to_string();
        assert!(s.contains("recovery[n=1"), "{s}");
        assert!(s.contains("slo=PASS"), "{s}");
        assert!(!s.contains("scrub["), "idle classes stay out of the line");
    }

    #[test]
    fn display_is_compact() {
        let m = Metrics::from_run(
            &report(),
            std::time::Duration::from_millis(20),
            10,
            12,
            PlanSource::Cold,
        );
        let s = m.to_string();
        assert!(s.contains("hit=0.3000"));
        assert!(s.contains("reads=70"));
    }
}
