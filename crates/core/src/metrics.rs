//! The four evaluation metrics of §IV-A, plus FBF's overhead (Table IV)
//! and — when a fault plan is active — the fault/escalation counters.

use crate::faulted::FaultedOutcome;
use crate::plan::PlanSource;
use fbf_cache::CacheStats;
use fbf_disksim::{FaultCounters, RunReport, SimTime};
use fbf_recovery::DataLoss;
use serde::{Deserialize, Serialize};

/// Everything measured over one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Metric 1 — buffer-cache hit ratio during reconstruction.
    pub hit_ratio: f64,
    /// Metric 2 — total disk reads issued during recovery.
    pub disk_reads: u64,
    /// Metric 3 — mean response time of chunk read requests, ms.
    pub avg_response_ms: f64,
    /// Median read latency, ms.
    pub p50_response_ms: f64,
    /// 95th-percentile read latency, ms.
    pub p95_response_ms: f64,
    /// 99th-percentile read latency, ms — the tail the mean hides.
    pub p99_response_ms: f64,
    /// Metric 4 — total (virtual) reconstruction time, seconds.
    pub reconstruction_s: f64,
    /// Repair progress: time by which half of the lost chunks were
    /// rewritten (window-of-vulnerability midpoint), seconds.
    pub repair_p50_s: f64,
    /// Time by which 90% of the lost chunks were rewritten, seconds.
    pub repair_p90_s: f64,
    /// Table IV — host time spent generating schemes + priorities,
    /// averaged per stripe, ms.
    pub overhead_per_stripe_ms: f64,
    /// Table IV — total overhead as a percentage of reconstruction time.
    pub overhead_pct: f64,
    /// Spare-area writes (sanity: equals lost chunks).
    pub disk_writes: u64,
    /// Raw cache counters.
    pub cache: CacheStats,
    /// Stripes repaired.
    pub stripes_repaired: usize,
    /// Chunks recovered.
    pub chunks_recovered: usize,
    /// Whether this run generated its plan (`Cold`) or reused a shared one
    /// (`Warm`). The overhead figures always report the *cold* generation
    /// cost; this field records their provenance.
    pub plan_source: PlanSource,
    /// Fault-path counters (all zero when the fault plan is inactive).
    pub faults: FaultCounters,
    /// Stripe re-plans issued by failure escalation.
    pub replans: u64,
    /// Escalation rounds executed (0 = no hard failures).
    pub replan_rounds: u64,
    /// Stripes whose damage exceeded the code's fault tolerance.
    pub stripes_lost: usize,
    /// Per-stripe data-loss verdicts (empty unless faults destroyed data).
    pub data_loss: Vec<DataLoss>,
}

impl Metrics {
    /// Assemble from an engine report plus campaign bookkeeping.
    pub fn from_run(
        report: &RunReport,
        overhead_host: std::time::Duration,
        stripes_repaired: usize,
        chunks_recovered: usize,
        plan_source: PlanSource,
    ) -> Self {
        let recon = report.makespan;
        let overhead_ms = overhead_host.as_secs_f64() * 1e3;
        Metrics {
            hit_ratio: report.cache.hit_ratio(),
            disk_reads: report.disk_reads,
            avg_response_ms: report.read_response.avg_millis(),
            p50_response_ms: report.read_latency.p50().map_or(0.0, |t| t.as_millis_f64()),
            p95_response_ms: report.read_latency.p95().map_or(0.0, |t| t.as_millis_f64()),
            p99_response_ms: report.read_latency.p99().map_or(0.0, |t| t.as_millis_f64()),
            reconstruction_s: recon.as_secs_f64(),
            repair_p50_s: completion_quantile(&report.write_completions, 0.50),
            repair_p90_s: completion_quantile(&report.write_completions, 0.90),
            overhead_per_stripe_ms: if stripes_repaired == 0 {
                0.0
            } else {
                overhead_ms / stripes_repaired as f64
            },
            overhead_pct: if recon == SimTime::ZERO {
                0.0
            } else {
                100.0 * overhead_ms / recon.as_millis_f64()
            },
            disk_writes: report.disk_writes,
            cache: report.cache,
            stripes_repaired,
            chunks_recovered,
            plan_source,
            faults: report.faults,
            replans: 0,
            replan_rounds: 0,
            stripes_lost: 0,
            data_loss: Vec::new(),
        }
    }

    /// Assemble from a multi-round faulted execution: the merged report's
    /// figures plus the escalation verdicts.
    pub fn from_faulted(
        outcome: &FaultedOutcome,
        overhead_host: std::time::Duration,
        plan_source: PlanSource,
    ) -> Self {
        let mut m = Metrics::from_run(
            &outcome.report,
            overhead_host,
            outcome.stripes_repaired,
            outcome.chunks_recovered,
            plan_source,
        );
        m.replans = outcome.replans;
        m.replan_rounds = outcome.rounds;
        m.stripes_lost = outcome.data_loss.len();
        m.data_loss = outcome.data_loss.clone();
        m
    }

    /// Hand-rolled JSON object of the scalar metrics (the vendored serde
    /// is an offline stub, so reports serialise by hand like the bench
    /// binaries do). Stable key order; data-loss stripes as an array.
    pub fn to_json(&self) -> String {
        let loss: Vec<String> = self
            .data_loss
            .iter()
            .map(|d| format!("{{\"stripe\":{},\"columns\":{}}}", d.stripe, d.columns))
            .collect();
        format!(
            concat!(
                "{{\"hit_ratio\":{:.6},\"disk_reads\":{},\"disk_writes\":{},",
                "\"avg_response_ms\":{:.6},\"p99_response_ms\":{:.6},",
                "\"reconstruction_s\":{:.6},\"stripes_repaired\":{},",
                "\"chunks_recovered\":{},\"media_errors\":{},",
                "\"transient_faults\":{},\"retries\":{},\"retries_exhausted\":{},",
                "\"dead_disk_reads\":{},\"skipped_ops\":{},\"replans\":{},",
                "\"replan_rounds\":{},\"stripes_lost\":{},\"data_loss\":[{}]}}"
            ),
            self.hit_ratio,
            self.disk_reads,
            self.disk_writes,
            self.avg_response_ms,
            self.p99_response_ms,
            self.reconstruction_s,
            self.stripes_repaired,
            self.chunks_recovered,
            self.faults.media_errors,
            self.faults.transient_faults,
            self.faults.retries,
            self.faults.retries_exhausted,
            self.faults.dead_disk_reads,
            self.faults.skipped_ops,
            self.replans,
            self.replan_rounds,
            self.stripes_lost,
            loss.join(",")
        )
    }
}

/// The completion instant (seconds) by which fraction `q` of the writes
/// had landed; 0 when no writes were recorded. Completion order is already
/// sorted by construction (events fire in time order).
fn completion_quantile(completions: &[SimTime], q: f64) -> f64 {
    if completions.is_empty() {
        return 0.0;
    }
    let rank = ((completions.len() as f64 * q).ceil() as usize).clamp(1, completions.len());
    completions[rank - 1].as_secs_f64()
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hit={:.4} reads={} resp={:.3}ms recon={:.3}s overhead={:.4}ms/stripe ({:.2}%)",
            self.hit_ratio,
            self.disk_reads,
            self.avg_response_ms,
            self.reconstruction_s,
            self.overhead_per_stripe_ms,
            self.overhead_pct
        )?;
        if !self.faults.is_empty() || self.stripes_lost > 0 {
            write!(
                f,
                " faults[hard={} retries={} replans={} rounds={} lost={}]",
                self.faults.hard_failures(),
                self.faults.retries,
                self.replans,
                self.replan_rounds,
                self.stripes_lost
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbf_disksim::ResponseStats;

    fn report() -> RunReport {
        let cache = CacheStats {
            hits: 30,
            misses: 70,
            ..Default::default()
        };
        let mut read_response = ResponseStats::default();
        for _ in 0..10 {
            read_response.merge(&ResponseStats {
                count: 1,
                total: SimTime::from_millis(5),
                max: SimTime::from_millis(5),
            });
        }
        RunReport {
            makespan: SimTime::from_secs(2),
            cache,
            disk_reads: 70,
            disk_writes: 12,
            read_response,
            ..Default::default()
        }
    }

    #[test]
    fn from_run_maps_fields() {
        let m = Metrics::from_run(
            &report(),
            std::time::Duration::from_millis(20),
            10,
            12,
            PlanSource::Cold,
        );
        assert!((m.hit_ratio - 0.3).abs() < 1e-12);
        assert_eq!(m.disk_reads, 70);
        assert!((m.avg_response_ms - 5.0).abs() < 1e-9);
        assert!((m.reconstruction_s - 2.0).abs() < 1e-12);
        assert!((m.overhead_per_stripe_ms - 2.0).abs() < 1e-9);
        assert!((m.overhead_pct - 1.0).abs() < 1e-9);
        assert_eq!(m.disk_writes, 12);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let r = RunReport::default();
        let m = Metrics::from_run(&r, std::time::Duration::ZERO, 0, 0, PlanSource::Cold);
        assert_eq!(m.overhead_per_stripe_ms, 0.0);
        assert_eq!(m.overhead_pct, 0.0);
        assert_eq!(m.hit_ratio, 0.0);
    }

    #[test]
    fn repair_progress_quantiles() {
        let mut r = report();
        r.write_completions = (1..=10).map(SimTime::from_secs).collect();
        let m = Metrics::from_run(&r, std::time::Duration::ZERO, 10, 10, PlanSource::Cold);
        assert!((m.repair_p50_s - 5.0).abs() < 1e-9);
        assert!((m.repair_p90_s - 9.0).abs() < 1e-9);
    }

    #[test]
    fn repair_progress_empty_is_zero() {
        let m = Metrics::from_run(
            &RunReport::default(),
            std::time::Duration::ZERO,
            0,
            0,
            PlanSource::Cold,
        );
        assert_eq!(m.repair_p50_s, 0.0);
        assert_eq!(m.repair_p90_s, 0.0);
    }

    #[test]
    fn display_is_compact() {
        let m = Metrics::from_run(
            &report(),
            std::time::Duration::from_millis(20),
            10,
            12,
            PlanSource::Cold,
        );
        let s = m.to_string();
        assert!(s.contains("hit=0.3000"));
        assert!(s.contains("reads=70"));
    }
}
