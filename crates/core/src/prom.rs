//! Prometheus snapshot assembly for sweep results.
//!
//! [`prometheus_snapshot`] renders a slice of [`SweepPoint`]s into one
//! text-exposition document (format 0.0.4, via
//! [`fbf_obs::PromWriter`]): campaign counters, per-class latency
//! histograms merged **associatively** across all points — the digest's
//! mergeability claim doing real work — plus queue-depth high-water
//! (merged via max, never sum), read-balance, and the SLO verdict.
//!
//! The CLI (`fbf --metrics <path>`) and the figure binaries write these
//! snapshots next to their CSVs; `scripts/check_trace.py --prom` validates
//! the output in CI.

use crate::sweep::SweepPoint;
use fbf_disksim::{Digest, RequestClass};
use fbf_obs::PromWriter;

/// Render `points` as one Prometheus text-exposition snapshot.
///
/// Counters sum across points; queue-depth high-water takes the max;
/// per-class digests merge element-wise (associative and commutative, so
/// the result is independent of point order — pinned by a test below).
/// SLO gauges report 1/0 for pass/fail and appear only when at least one
/// point evaluated an active spec.
pub fn prometheus_snapshot(points: &[SweepPoint]) -> String {
    let mut disk_reads = 0u64;
    let mut disk_writes = 0u64;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut queue_depth_max = 0u64;
    let mut replans = 0u64;
    let mut stripes_lost = 0u64;
    let mut stripes_unresolved = 0u64;
    let mut class: [Digest; RequestClass::COUNT] = Default::default();
    let mut slo_evaluated = false;
    let mut slo_pass = true;
    let mut class_pass = [true; RequestClass::COUNT];
    for p in points {
        let m = &p.metrics;
        disk_reads += m.disk_reads;
        disk_writes += m.disk_writes;
        hits += m.cache.hits;
        misses += m.cache.misses;
        queue_depth_max = queue_depth_max.max(m.queue_depth_max);
        replans += m.replans;
        stripes_lost += m.stripes_lost as u64;
        stripes_unresolved += m.stripes_unresolved as u64;
        for c in RequestClass::ALL {
            class[c.index()].merge(m.class_digests[c.index()].digest());
        }
        if m.slo.evaluated {
            slo_evaluated = true;
            slo_pass &= m.slo.pass;
            for c in RequestClass::ALL {
                let v = &m.slo.classes[c.index()];
                if v.active {
                    class_pass[c.index()] &= v.pass;
                }
            }
        }
    }

    let mut w = PromWriter::new();
    w.gauge(
        "fbf_sweep_points",
        "experiment points aggregated into this snapshot",
        points.len() as f64,
    );
    w.counter(
        "fbf_disk_reads_total",
        "chunk reads issued to disks across all points",
        disk_reads as f64,
    );
    w.counter(
        "fbf_disk_writes_total",
        "spare-area chunk writes across all points",
        disk_writes as f64,
    );
    w.counter(
        "fbf_cache_hits_total",
        "buffer-cache hits across all points",
        hits as f64,
    );
    w.counter(
        "fbf_cache_misses_total",
        "buffer-cache misses across all points",
        misses as f64,
    );
    w.counter(
        "fbf_replans_total",
        "stripe re-plans issued by failure escalation",
        replans as f64,
    );
    w.counter(
        "fbf_stripes_lost_total",
        "stripes whose damage exceeded the code's fault tolerance",
        stripes_lost as f64,
    );
    w.counter(
        "fbf_stripes_unresolved_total",
        "stripes left neither repaired nor typed lost when escalation rounds ran out",
        stripes_unresolved as f64,
    );
    w.gauge(
        "fbf_queue_depth_max",
        "deepest disk queue observed (high-water, max-merged)",
        queue_depth_max as f64,
    );
    if let Some(worst) = points
        .iter()
        .map(|p| p.metrics.read_balance)
        .max_by(|a, b| a.total_cmp(b))
    {
        w.gauge(
            "fbf_read_balance_worst",
            "worst per-point declustering uniformity (busiest disk / mean; 1.0 = even)",
            worst,
        );
    }

    let series: Vec<(&str, &Digest)> = RequestClass::ALL
        .iter()
        .map(|c| (c.name(), &class[c.index()]))
        .collect();
    w.histogram(
        "fbf_read_latency_seconds",
        "chunk read latency by request class (merged across all points)",
        "class",
        &series,
    );
    let quantile_gauges: Vec<(&str, f64)> = RequestClass::ALL
        .iter()
        .map(|c| {
            let d = &class[c.index()];
            (c.name(), d.quantile_ns(0.99).unwrap_or(0) as f64 / 1e9)
        })
        .collect();
    w.gauge_per(
        "fbf_read_latency_p99_seconds",
        "per-class p99 read latency over the merged digest",
        "class",
        &quantile_gauges,
    );

    if slo_evaluated {
        w.gauge(
            "fbf_slo_pass",
            "1 when every point met every active latency objective",
            if slo_pass { 1.0 } else { 0.0 },
        );
        let verdicts: Vec<(&str, f64)> = RequestClass::ALL
            .iter()
            .map(|c| (c.name(), if class_pass[c.index()] { 1.0 } else { 0.0 }))
            .collect();
        w.gauge_per(
            "fbf_slo_class_pass",
            "per-class SLO verdict across all points (1 = pass)",
            "class",
            &verdicts,
        );
    }
    w.into_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentConfig, SloSpec};
    use crate::runner::run_experiment;

    fn points() -> Vec<SweepPoint> {
        [2usize, 16]
            .into_iter()
            .map(|mb| {
                let config = ExperimentConfig::builder()
                    .cache_mb(mb)
                    .stripes(128)
                    .error_count(32)
                    .workers(4)
                    .gen_threads(1)
                    .build()
                    .unwrap();
                let metrics = run_experiment(&config).unwrap();
                SweepPoint { config, metrics }
            })
            .collect()
    }

    #[test]
    fn snapshot_totals_match_points() {
        let pts = points();
        let s = prometheus_snapshot(&pts);
        let reads: u64 = pts.iter().map(|p| p.metrics.disk_reads).sum();
        assert!(s.contains(&format!("\nfbf_disk_reads_total {reads}\n")));
        // The merged recovery digest covers every read-latency sample.
        let count: u64 = pts
            .iter()
            .map(|p| p.metrics.class_latency[RequestClass::Recovery.index()].count)
            .sum();
        assert!(
            s.contains(&format!(
                "fbf_read_latency_seconds_count{{class=\"recovery\"}} {count}"
            )),
            "{s}"
        );
        // No SLO configured → no verdict gauges.
        assert!(!s.contains("fbf_slo_pass"));
    }

    #[test]
    fn snapshot_is_order_independent() {
        let pts = points();
        let forward = prometheus_snapshot(&pts);
        let reversed: Vec<SweepPoint> = pts.into_iter().rev().collect();
        assert_eq!(
            forward,
            prometheus_snapshot(&reversed),
            "digest merge must be commutative across points"
        );
    }

    #[test]
    fn slo_gauges_appear_when_evaluated() {
        let mut pts = points();
        for p in &mut pts {
            p.metrics
                .evaluate_slo(&SloSpec::none().class(RequestClass::Recovery, 1e6, 0.0));
        }
        let s = prometheus_snapshot(&pts);
        assert!(s.contains("\nfbf_slo_pass 1\n"), "{s}");
        assert!(s.contains("fbf_slo_class_pass{class=\"recovery\"} 1"));
    }

    #[test]
    fn every_metric_name_is_legal() {
        // PromWriter asserts on emission; an empty-input snapshot must
        // also render without panicking.
        let s = prometheus_snapshot(&[]);
        for line in s.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let name: String = line
                .chars()
                .take_while(|c| *c != '{' && *c != ' ')
                .collect();
            assert!(fbf_obs::prom::valid_metric_name(&name), "{line}");
        }
    }
}
