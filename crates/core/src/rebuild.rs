//! Array-wide declustered rebuild: wave-scheduled whole-disk recovery
//! over many more disks than stripe columns.
//!
//! The partial-stripe machinery in this crate repairs one campaign at a
//! time against a clustered array (`disks == cols`). A whole-disk failure
//! in a *declustered* array is a different animal: with the D3 placement
//! ([`fbf_disksim::Placement::Declustered`]) each stripe's columns land on
//! a per-stripe permutation of `N >= 100` disks, so the failed disk's
//! stripes — and the surviving chunks their repairs must read — are
//! scattered across the whole array. Rebuilding them all at once would be
//! maximally parallel but would also bury foreground I/O; rebuilding them
//! serially wastes the declustering.
//!
//! [`execute_rebuild`] drives the middle path:
//!
//! 1. **Discover** the stripes with a column on the failed disk (at most
//!    one each — per-stripe placements are injective) and shard them
//!    round-robin into repair *campaigns*.
//! 2. **Plan** each campaign through the shared
//!    [`PlanStore`](crate::plan::PlanStore) via
//!    [`plan_custom`](crate::plan::PlanStore::plan_custom): a full-column
//!    [`PartialStripeError`](fbf_recovery::PartialStripeError) per stripe,
//!    lowered by the same scheme generators as every other experiment.
//!    Shard configs salt the campaign seed so each shard gets its own
//!    [`PlanKey`](crate::plan::PlanKey).
//! 3. **Schedule**: each stripe's projected per-disk read footprint feeds
//!    a [`RebuildScheduler`], which admits *waves* bounded by a per-disk
//!    read cap and arbitrated by a [`Fairness`] policy (round-robin or
//!    deficit-weighted) across the campaigns.
//! 4. **Simulate** each wave as one engine pass — recovery scripts plus an
//!    optional foreground application-read script — and merge the waves
//!    back-to-back on one virtual clock exactly as faulted rounds merge
//!    ([`merge_round`](crate::faulted)).
//!
//! The outcome carries the clustered-vs-declustered comparison metrics:
//! reconstruction time, per-disk rebuild-read balance and skew, and
//! foreground p99/p999 during the rebuild.

use crate::config::ExperimentConfig;
use crate::faulted::{later_round_faults, merge_round};
use crate::plan::{PlanStore, PlannedCampaign};
use crate::runner::RunError;
use fbf_cache::FxHashMap;
use fbf_codes::StripeCode;
use fbf_disksim::{
    ArrayMapping, Engine, EngineConfig, EngineScratch, Placement, RequestClass, RunReport, SimTime,
};
use fbf_recovery::{
    ErrorGroup, ExecConfig, Fairness, PartialStripeError, PriorityDictionary, RebuildItem,
    RebuildScheduler,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One array-wide rebuild, fully specified.
#[derive(Debug, Clone)]
pub struct RebuildSpec {
    /// Code, cache, disk model, workers, seed — everything the per-wave
    /// engine passes inherit. `stripes` bounds the data zone searched for
    /// affected stripes; `error_count` is ignored (the failed disk decides
    /// the campaign).
    pub base: ExperimentConfig,
    /// Physical disks in the array (`>=` the code's column count).
    pub disks: usize,
    /// Column→disk placement under test.
    pub placement: Placement,
    /// The disk that failed.
    pub failed_disk: usize,
    /// Max rebuild reads any one disk absorbs per wave.
    pub per_disk_cap: u32,
    /// Arbitration between the repair campaigns.
    pub fairness: Fairness,
    /// Campaign shards the affected stripes are split into.
    pub campaigns: usize,
    /// DRR weights per campaign (empty = all 1; ignored by round-robin).
    pub weights: Vec<u64>,
    /// Foreground application reads issued alongside each wave (0 = no
    /// foreground traffic).
    pub app_reads_per_wave: usize,
}

impl RebuildSpec {
    /// A spec with scheduling defaults: declustered placement seeded from
    /// the base config, disk 0 failed, a 64-read cap, round-robin over 4
    /// campaigns, and a light foreground stream.
    pub fn new(base: ExperimentConfig, disks: usize) -> Self {
        RebuildSpec {
            placement: Placement::Declustered { seed: base.seed },
            base,
            disks,
            failed_disk: 0,
            per_disk_cap: 64,
            fairness: Fairness::RoundRobin,
            campaigns: 4,
            weights: Vec::new(),
            app_reads_per_wave: 128,
        }
    }
}

/// Everything an array-wide rebuild produced.
#[derive(Debug)]
pub struct RebuildOutcome {
    /// All waves merged on one virtual clock (makespans summed, counters
    /// and digests merged).
    pub report: RunReport,
    /// The placement that was rebuilt under.
    pub placement: Placement,
    /// The fairness policy that arbitrated the campaigns.
    pub fairness: Fairness,
    /// Waves the scheduler admitted.
    pub waves: usize,
    /// Stripes with a column on the failed disk.
    pub stripes_affected: usize,
    /// Stripes whose repair completed without a hard read failure.
    pub stripes_rebuilt: usize,
    /// Stripes whose repair hit a hard read failure mid-wave (only under
    /// an injected fault plan); their repair is *not* counted done.
    pub failed_stripes: Vec<u32>,
    /// Total virtual reconstruction time, seconds.
    pub reconstruction_s: f64,
    /// Rebuild (non-App) reads absorbed by each disk.
    pub per_disk_rebuild_reads: Vec<u64>,
    /// Busiest disk's rebuild reads over the all-disk mean (1.0 = even).
    pub rebuild_skew: f64,
    /// Foreground p99 read latency during the rebuild, ms.
    pub app_p99_ms: Option<f64>,
    /// Foreground p999 read latency during the rebuild, ms.
    pub app_p999_ms: Option<f64>,
}

impl RebuildOutcome {
    /// Render as one JSON object (schemaless sibling of
    /// [`Metrics::to_json`](crate::metrics::Metrics::to_json)).
    pub fn to_json(&self) -> String {
        let per_disk: Vec<String> = self
            .per_disk_rebuild_reads
            .iter()
            .map(|n| n.to_string())
            .collect();
        let failed: Vec<String> = self.failed_stripes.iter().map(|s| s.to_string()).collect();
        format!(
            concat!(
                "{{\"placement\":\"{}\",\"fairness\":\"{}\",\"waves\":{},",
                "\"stripes_affected\":{},\"stripes_rebuilt\":{},\"failed_stripes\":[{}],",
                "\"reconstruction_s\":{:.6},\"disk_reads\":{},\"disk_writes\":{},",
                "\"rebuild_skew\":{:.6},\"app_p99_ms\":{},\"app_p999_ms\":{},",
                "\"per_disk_rebuild_reads\":[{}]}}"
            ),
            self.placement.name(),
            self.fairness.name(),
            self.waves,
            self.stripes_affected,
            self.stripes_rebuilt,
            failed.join(","),
            self.reconstruction_s,
            self.report.disk_reads,
            self.report.disk_writes,
            self.rebuild_skew,
            self.app_p99_ms.map_or("null".into(), |v| format!("{v:.6}")),
            self.app_p999_ms
                .map_or("null".into(), |v| format!("{v:.6}")),
            per_disk.join(","),
        )
    }
}

/// Salt a shard's campaign seed so each shard owns a distinct
/// [`PlanKey`](crate::plan::PlanKey) in the shared store.
fn shard_seed(base: u64, shard: usize) -> u64 {
    base ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// [`execute_rebuild`] with a private plan store and scratch — the
/// standalone entry point (CLI, tests).
pub fn run_rebuild(spec: &RebuildSpec) -> Result<RebuildOutcome, RunError> {
    execute_rebuild(spec, &PlanStore::new(), &mut EngineScratch::new())
}

/// Drive one array-wide rebuild to completion. See the module docs for
/// the model; `store` is shared so concurrent rebuilds (or a rebuild next
/// to a sweep) reuse each other's planning.
pub fn execute_rebuild(
    spec: &RebuildSpec,
    store: &PlanStore,
    scratch: &mut EngineScratch,
) -> Result<RebuildOutcome, RunError> {
    let cfg = &spec.base;
    cfg.validate()?;
    assert!(spec.campaigns > 0, "at least one repair campaign");
    assert!(
        spec.failed_disk < spec.disks,
        "failed disk {} outside the {}-disk array",
        spec.failed_disk,
        spec.disks
    );
    let code = StripeCode::build(cfg.code, cfg.p)?;
    let mapping =
        ArrayMapping::with_placement(spec.disks, code.rows(), code.cols(), spec.placement);

    // 1. Discover: the failed disk's stripes and which column each lost.
    // Per-stripe placements are injective, so at most one column matches.
    let affected: Vec<(u32, usize)> = (0..cfg.stripes)
        .filter_map(|stripe| {
            (0..mapping.cols)
                .find(|&col| mapping.disk_of_col(stripe, col) == spec.failed_disk)
                .map(|col| (stripe, col))
        })
        .collect();
    let stripes_affected = affected.len();

    // 2. Plan: shard round-robin, one full-column campaign per shard,
    // through the shared store under salted keys.
    let shards = spec.campaigns.min(stripes_affected.max(1));
    let mut shard_stripes: Vec<Vec<(u32, usize)>> = vec![Vec::new(); shards];
    for (i, &sc) in affected.iter().enumerate() {
        shard_stripes[i % shards].push(sc);
    }
    let mut plans: Vec<Arc<PlannedCampaign>> = Vec::with_capacity(shards);
    for (k, stripes) in shard_stripes.iter().enumerate() {
        let mut sub = *cfg;
        sub.error_count = stripes.len();
        sub.seed = shard_seed(cfg.seed, k);
        let group = || {
            let mut g = ErrorGroup::new();
            for &(stripe, col) in stripes {
                g.push(
                    PartialStripeError::new(&code, stripe, col, 0, code.rows())
                        .expect("full-column damage is always in range"),
                );
            }
            g
        };
        let (plan, _) = store.plan_custom(&sub, group)?;
        plans.push(plan);
    }

    // Stripe → scheme index per shard, and one merged victim map (VDF
    // tracks damaged columns across all campaigns at once).
    let scheme_index: Vec<FxHashMap<u32, usize>> = plans
        .iter()
        .map(|p| {
            p.schemes
                .iter()
                .enumerate()
                .map(|(i, s)| (s.stripe, i))
                .collect()
        })
        .collect();
    let mut victims: FxHashMap<u32, u16> = FxHashMap::default();
    for p in &plans {
        victims.extend(p.victim_map.iter().map(|(&s, &c)| (s, c)));
    }
    let victim_map = Arc::new(victims);

    // 3. Schedule: projected per-disk read footprints feed the admission
    // scheduler.
    let mut sched = RebuildScheduler::new(spec.disks, spec.per_disk_cap, spec.fairness);
    for (k, &w) in spec.weights.iter().enumerate().take(shards) {
        sched.set_weight(k, w);
    }
    for (k, plan) in plans.iter().enumerate() {
        for scheme in &plan.schemes {
            let mut reads: BTreeMap<u32, u32> = BTreeMap::new();
            for repair in &scheme.repairs {
                for cell in &repair.option.reads {
                    let disk = mapping.disk_of_col(scheme.stripe, cell.c()) as u32;
                    *reads.entry(disk).or_insert(0) += 1;
                }
            }
            sched.push(RebuildItem {
                campaign: k,
                stripe: scheme.stripe,
                disk_reads: reads.into_iter().collect(),
            });
        }
    }

    // 4. Simulate wave by wave on one virtual clock.
    let exec_cfg = ExecConfig {
        workers: cfg.workers,
        decode_batch: cfg.decode_batch,
        ..Default::default()
    };
    let engine_cfg = |faults| EngineConfig {
        policy: cfg.policy,
        fbf: cfg.fbf,
        victim_map: Some(Arc::clone(&victim_map)),
        cache_chunks: cfg.cache_chunks(),
        sharing: cfg.sharing,
        disk_model: cfg.disk_model,
        sched: cfg.disk_sched,
        straggler: cfg.straggler,
        faults,
        cache_hit_time: cfg.cache_hit_time,
        chunk_bytes: cfg.chunk_bytes(),
        mapping,
        data_stripes: cfg.stripes as u64,
        obs: cfg.obs,
    };
    let obs = cfg.obs && fbf_obs::enabled();
    let mut total: Option<RunReport> = None;
    let mut waves = 0usize;
    let mut failed_stripes: Vec<u32> = Vec::new();
    while !sched.is_empty() {
        let wave = sched.next_wave();
        let wave_schemes: Vec<_> = wave
            .iter()
            .map(|item| {
                let idx = scheme_index[item.campaign][&item.stripe];
                plans[item.campaign].schemes[idx].clone()
            })
            .collect();
        let dictionary = PriorityDictionary::from_schemes(&wave_schemes);
        let mut scripts = fbf_recovery::build_scripts(&wave_schemes, &dictionary, &exec_cfg);
        if spec.app_reads_per_wave > 0 {
            scripts.push(fbf_workload::generate_app_reads(
                &code,
                &fbf_workload::AppIoConfig {
                    stripes: cfg.stripes,
                    reads: spec.app_reads_per_wave,
                    seed: cfg.seed ^ (waves as u64 + 1),
                    ..Default::default()
                },
            ));
        }
        // Like faulted rounds: a disk killed in wave 0 stays dead later.
        let faults = if waves == 0 {
            cfg.faults
        } else {
            later_round_faults(cfg.faults)
        };
        let round = Engine::new(engine_cfg(faults)).run_with_scratch(&scripts, scratch);
        failed_stripes.extend(round.failed_reads.iter().map(|f| f.chunk.stripe));
        match total.as_mut() {
            Some(t) => merge_round(t, &round),
            None => total = Some(round),
        }
        waves += 1;
        if obs {
            fbf_obs::instant(
                "rebuild",
                "wave",
                &[
                    ("wave", fbf_obs::Value::U64(waves as u64)),
                    ("stripes", fbf_obs::Value::U64(wave.len() as u64)),
                    ("pending", fbf_obs::Value::U64(sched.pending() as u64)),
                ],
            );
        }
    }
    let report = total.unwrap_or_default();

    failed_stripes.sort_unstable();
    failed_stripes.dedup();
    let app = RequestClass::App.index();
    let per_disk_rebuild_reads: Vec<u64> = report
        .per_disk_class_reads
        .iter()
        .map(|c| {
            c.iter()
                .enumerate()
                .filter(|&(i, _)| i != app)
                .map(|(_, &n)| n)
                .sum()
        })
        .collect();
    let to_ms = |t: Option<SimTime>| t.map(|v| v.as_secs_f64() * 1e3);
    Ok(RebuildOutcome {
        reconstruction_s: report.makespan.as_secs_f64(),
        rebuild_skew: report.rebuild_read_skew(),
        app_p99_ms: to_ms(report.class_latency[app].p99()),
        app_p999_ms: to_ms(report.class_latency[app].p999()),
        per_disk_rebuild_reads,
        placement: spec.placement,
        fairness: spec.fairness,
        waves,
        stripes_affected,
        stripes_rebuilt: stripes_affected - failed_stripes.len(),
        failed_stripes,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ExperimentConfig {
        ExperimentConfig::builder()
            .stripes(192)
            .error_count(1) // ignored by the rebuild driver
            .workers(8)
            .gen_threads(1)
            .build()
            .unwrap()
    }

    fn spec(placement: Placement) -> RebuildSpec {
        let mut s = RebuildSpec::new(base(), 48);
        s.placement = placement;
        s.per_disk_cap = 16;
        s.app_reads_per_wave = 64;
        s
    }

    #[test]
    fn declustering_cuts_rebuild_skew_and_time() {
        let clustered = run_rebuild(&spec(Placement::Fixed)).unwrap();
        let declustered = run_rebuild(&spec(Placement::Declustered { seed: 7 })).unwrap();
        assert_eq!(
            clustered.stripes_affected, 192,
            "clustered disk 0 carries column 0 of every stripe"
        );
        // Declustering thins the failed disk's stripe set to ~cols/disks
        // of the zone, but it must still find some.
        assert!(declustered.stripes_affected > 0);
        assert!(declustered.stripes_affected < 192);
        // The headline: spreading the same column over the array evens the
        // rebuild reads and shortens reconstruction.
        assert!(
            declustered.rebuild_skew < clustered.rebuild_skew,
            "declustered {:.2} vs clustered {:.2}",
            declustered.rebuild_skew,
            clustered.rebuild_skew
        );
        assert!(declustered.report.disk_reads > 0);
        assert_eq!(
            clustered.stripes_rebuilt, clustered.stripes_affected,
            "no faults → every stripe rebuilds"
        );
    }

    #[test]
    fn rebuild_is_deterministic() {
        let s = spec(Placement::Declustered { seed: 11 });
        let a = run_rebuild(&s).unwrap();
        let b = run_rebuild(&s).unwrap();
        assert_eq!(a.report.makespan, b.report.makespan);
        assert_eq!(a.report.disk_reads, b.report.disk_reads);
        assert_eq!(a.waves, b.waves);
        assert_eq!(a.per_disk_rebuild_reads, b.per_disk_rebuild_reads);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn every_lost_chunk_is_rewritten_once() {
        let out = run_rebuild(&spec(Placement::Declustered { seed: 3 })).unwrap();
        // One spare write per chunk of each failed column.
        let rows = StripeCode::build(base().code, base().p).unwrap().rows() as u64;
        assert_eq!(
            out.report.disk_writes,
            out.stripes_affected as u64 * rows,
            "full-column repair writes every row back"
        );
        assert!(out.waves > 1, "the cap must force multiple waves");
        assert!(out.failed_stripes.is_empty());
        // Foreground latency was measured.
        assert!(out.app_p99_ms.is_some());
    }

    #[test]
    fn weighted_fairness_and_store_sharing_work() {
        let mut s = spec(Placement::Declustered { seed: 5 });
        s.fairness = Fairness::DeficitWeighted;
        s.campaigns = 3;
        s.weights = vec![4, 2, 1];
        let store = PlanStore::new();
        let a = execute_rebuild(&s, &store, &mut EngineScratch::new()).unwrap();
        assert_eq!(store.stats().misses, 3, "one cold plan per campaign shard");
        let b = execute_rebuild(&s, &store, &mut EngineScratch::new()).unwrap();
        assert_eq!(store.stats().misses, 3, "second rebuild reuses every plan");
        assert_eq!(a.report.makespan, b.report.makespan);
        assert_eq!(a.rebuild_skew, b.rebuild_skew);
    }

    #[test]
    fn json_shape_is_stable() {
        let out = run_rebuild(&spec(Placement::Declustered { seed: 9 })).unwrap();
        let j = out.to_json();
        for key in [
            "\"placement\":\"declustered\"",
            "\"fairness\":\"round-robin\"",
            "\"waves\":",
            "\"reconstruction_s\":",
            "\"rebuild_skew\":",
            "\"per_disk_rebuild_reads\":[",
        ] {
            assert!(j.contains(key), "{key} missing from {j}");
        }
    }
}
