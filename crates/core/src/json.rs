//! A minimal JSON value: parse, render, navigate.
//!
//! The vendored `serde` is an offline stub, so the daemon protocol and
//! the bench tooling cannot derive (de)serialisers; reports already
//! render JSON by hand. This module adds the other direction — a small
//! recursive-descent parser over a boxed value tree — so the daemon can
//! *read* requests too. It is deliberately tiny: strict enough for our
//! own wire format (UTF-8, no comments, no trailing commas), not a
//! general-purpose JSON library.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64 — our protocol stays within 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; sorted keys give deterministic rendering.
    Obj(BTreeMap<String, Json>),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What was expected or found.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse one JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                at: pos,
                msg: "trailing data after document",
            });
        }
        Ok(value)
    }

    /// Render compactly (no whitespace), object keys in sorted order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_num(*n, out),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as u64, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The number as f64, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Build an object from key/value pairs (convenience for replies).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn render_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; null is the least-wrong spelling
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(JsonError {
            at: *pos,
            msg: "unexpected end of input",
        });
    };
    match b {
        b'n' => parse_lit(bytes, pos, "null", Json::Null),
        b't' => parse_lit(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false", Json::Bool(false)),
        b'"' => parse_str(bytes, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            msg: "expected ',' or ']' in array",
                        })
                    }
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_str(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError {
                        at: *pos,
                        msg: "expected ':' after object key",
                    });
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            msg: "expected ',' or '}' in object",
                        })
                    }
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_num(bytes, pos),
        _ => Err(JsonError {
            at: *pos,
            msg: "unexpected character",
        }),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &'static str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError {
            at: *pos,
            msg: "invalid literal",
        })
    }
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError {
            at: *pos,
            msg: "expected '\"'",
        });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(JsonError {
                at: *pos,
                msg: "unterminated string",
            });
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(JsonError {
                        at: *pos,
                        msg: "unterminated escape",
                    });
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4).ok_or(JsonError {
                            at: *pos,
                            msg: "truncated \\u escape",
                        })?;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(JsonError {
                                at: *pos,
                                msg: "invalid \\u escape",
                            })?;
                        *pos += 4;
                        // Surrogate pairs are not needed by our own wire
                        // format; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            msg: "unknown escape",
                        })
                    }
                }
            }
            _ => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let start = *pos;
                let mut end = start + 1;
                while end < bytes.len() && (bytes[end] & 0xC0) == 0x80 {
                    end += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..end]).map_err(|_| JsonError {
                        at: start,
                        msg: "invalid UTF-8",
                    })?,
                );
                *pos = end;
            }
        }
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or(JsonError {
            at: start,
            msg: "invalid number",
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let text = r#"{"cmd":"repair","stripes":4096,"policy":"fbf","json":true,"ids":[1,2,3],"nested":{"a":null}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("repair"));
        assert_eq!(v.get("stripes").and_then(Json::as_u64), Some(4096));
        assert_eq!(v.get("json").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("ids").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        let reparsed = Json::parse(&v.render()).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".to_string());
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(
            Json::parse(r#""A\n""#).unwrap(),
            Json::Str("A\n".to_string())
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "\"abc", "1 2", "{'a':1}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn numbers_render_integrally_when_integral() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(-1.5).render(), "-1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::parse("1e3").unwrap().as_u64(), Some(1000));
    }

    #[test]
    fn parses_existing_metrics_json() {
        // The hand-rolled Metrics::to_json output must be readable by
        // this parser — the daemon replies embed it verbatim.
        let m = crate::metrics::Metrics::from_run(
            &fbf_disksim::RunReport::default(),
            std::time::Duration::from_millis(1),
            0,
            0,
            crate::plan::PlanSource::Cold,
        );
        let v = Json::parse(&m.to_json()).unwrap();
        assert!(v.get("hit_ratio").is_some());
    }
}
