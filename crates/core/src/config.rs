//! Experiment configuration.

use fbf_cache::{FbfConfig, PolicyKind};
use fbf_codes::CodeSpec;
use fbf_disksim::{CacheSharing, DiskModel, DiskSched, SimTime};
use fbf_recovery::SchemeKind;
use serde::{Deserialize, Serialize};

/// Full description of one reconstruction experiment.
///
/// Defaults follow the paper's setup (§IV-A) scaled to finish in seconds of
/// host time: 32 KB chunks, 0.5 ms cache access, 10 ms disk access, SOR
/// with 128 workers and a partitioned cache, uniform error lengths on
/// `[1, p-1]`.
///
/// **Scheme note.** All cache policies run on top of the *shared-chunk*
/// recovery scheme (`SchemeKind::FbfCycling`). With the horizontal-only
/// typical scheme no chunk is ever referenced twice, so every policy's hit
/// ratio is ~0 and the comparison is vacuous; the paper's Fig. 8 baselines
/// clearly re-reference chunks. The scheme itself is ablated separately
/// (`ablation_scheme`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Erasure code under test.
    pub code: CodeSpec,
    /// The code's prime parameter (5, 7, 11, 13 in the paper).
    pub p: usize,
    /// Cache replacement policy under test.
    pub policy: PolicyKind,
    /// FBF-specific tunables (demotion position, ablation switches); only
    /// consulted when `policy == PolicyKind::Fbf`.
    pub fbf: FbfConfig,
    /// Recovery-scheme generator (see struct docs).
    pub scheme: SchemeKind,
    /// Total buffer-cache size in MiB (the paper's x-axis).
    pub cache_mb: usize,
    /// Chunk size in KiB (the paper: 32).
    pub chunk_kb: usize,
    /// Stripes in the array's data zone.
    pub stripes: u32,
    /// Partial stripe errors in the campaign.
    pub error_count: usize,
    /// SOR reconstruction workers.
    pub workers: usize,
    /// Cache partitioning across workers.
    pub sharing: CacheSharing,
    /// Disk service model.
    pub disk_model: DiskModel,
    /// Disk head-scheduling discipline (matters under the detailed
    /// mechanical model; FCFS matches the paper's fixed-latency setup).
    pub disk_sched: DiskSched,
    /// Failure injection: one disk serving at a multiple of its normal
    /// service time (aged-disk straggler).
    pub straggler: Option<(usize, f64)>,
    /// Buffer-cache access time.
    pub cache_hit_time: SimTime,
    /// Campaign RNG seed.
    pub seed: u64,
    /// Host threads for scheme generation (0 = all cores).
    pub gen_threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            code: CodeSpec::Tip,
            p: 7,
            policy: PolicyKind::Fbf,
            fbf: FbfConfig::default(),
            scheme: SchemeKind::FbfCycling,
            cache_mb: 64,
            chunk_kb: 32,
            stripes: 4096,
            error_count: 512,
            workers: 128,
            sharing: CacheSharing::Partitioned,
            disk_model: DiskModel::paper_default(),
            disk_sched: DiskSched::Fcfs,
            straggler: None,
            cache_hit_time: SimTime::from_micros(500),
            seed: 0x5EED,
            gen_threads: 0,
        }
    }
}

impl ExperimentConfig {
    /// Cache capacity in chunks: `cache_mb` MiB of `chunk_kb` KiB chunks.
    pub fn cache_chunks(&self) -> usize {
        self.cache_mb * 1024 / self.chunk_kb
    }

    /// Chunk payload size in bytes.
    pub fn chunk_bytes(&self) -> u64 {
        (self.chunk_kb as u64) << 10
    }

    /// One-line description for logs and reports.
    pub fn describe(&self) -> String {
        format!(
            "{}(p={}) policy={} scheme={} cache={}MB workers={}",
            self.code.name(),
            self.p,
            self.policy.name(),
            self.scheme.name(),
            self.cache_mb,
            self.workers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_chunks_conversion() {
        let cfg = ExperimentConfig { cache_mb: 256, chunk_kb: 32, ..Default::default() };
        assert_eq!(cfg.cache_chunks(), 8192);
        assert_eq!(cfg.chunk_bytes(), 32 * 1024);
    }

    #[test]
    fn default_matches_paper_constants() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.chunk_kb, 32);
        assert_eq!(cfg.workers, 128);
        assert_eq!(cfg.cache_hit_time, SimTime::from_micros(500));
        match cfg.disk_model {
            DiskModel::Fixed { access } => assert_eq!(access, SimTime::from_millis(10)),
            _ => panic!("default disk model should be the paper's fixed latency"),
        }
    }

    #[test]
    fn describe_mentions_key_fields() {
        let d = ExperimentConfig::default().describe();
        assert!(d.contains("TIP"));
        assert!(d.contains("FBF"));
        assert!(d.contains("64MB"));
    }
}
