//! Experiment configuration.

use fbf_cache::{FbfConfig, PolicyKind};
use fbf_codes::prime::is_prime;
use fbf_codes::CodeSpec;
use fbf_disksim::{CacheSharing, DiskModel, DiskSched, FaultPlan, RequestClass, SimTime};
use fbf_recovery::SchemeKind;
use serde::{Deserialize, Serialize};

/// Latency objective for one request class: a read-latency threshold and
/// the fraction of that class's reads allowed to exceed it.
///
/// Evaluation is *conservative* at bucket resolution: a read counts as a
/// violation when its digest bucket's upper edge exceeds the threshold, so
/// a passing verdict is trustworthy while a borderline-failing one may be
/// up to one bucket (~9%) pessimistic. See DESIGN.md §11.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassSlo {
    /// Latency threshold in milliseconds; `None` exempts the class.
    pub threshold_ms: Option<f64>,
    /// Fraction of the class's reads allowed over the threshold
    /// (`0.01` = "99% of reads must meet it").
    pub allowed_violation_fraction: f64,
}

impl Default for ClassSlo {
    fn default() -> Self {
        ClassSlo {
            threshold_ms: None,
            allowed_violation_fraction: 0.0,
        }
    }
}

/// Per-class latency objectives for one experiment. The default has no
/// thresholds — every run passes vacuously until the caller opts in via
/// [`SloSpec::class`] (or the builder's `.slo(...)`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// One objective slot per [`RequestClass`], indexed by
    /// [`RequestClass::index`].
    pub classes: [ClassSlo; RequestClass::COUNT],
}

impl SloSpec {
    /// No objectives: every run passes vacuously.
    pub fn none() -> Self {
        Self::default()
    }

    /// Set one class's objective (chainable).
    ///
    /// ```
    /// use fbf_core::SloSpec;
    /// use fbf_disksim::RequestClass;
    ///
    /// let slo = SloSpec::none()
    ///     .class(RequestClass::App, 25.0, 0.01)
    ///     .class(RequestClass::Recovery, 200.0, 0.05);
    /// assert!(slo.is_active());
    /// ```
    pub fn class(
        mut self,
        class: RequestClass,
        threshold_ms: f64,
        allowed_violation_fraction: f64,
    ) -> Self {
        self.classes[class.index()] = ClassSlo {
            threshold_ms: Some(threshold_ms),
            allowed_violation_fraction,
        };
        self
    }

    /// The objective for `class`.
    pub fn get(&self, class: RequestClass) -> &ClassSlo {
        &self.classes[class.index()]
    }

    /// Does any class carry a threshold?
    pub fn is_active(&self) -> bool {
        self.classes.iter().any(|c| c.threshold_ms.is_some())
    }
}

/// Why a configuration was rejected before running.
///
/// Produced by [`ExperimentConfig::validate`] (and therefore by
/// [`ExperimentConfigBuilder::build`]) so that impossible experiments fail
/// at construction with a precise reason instead of deep inside the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The code's `p` parameter must be prime.
    NonPrimeP(usize),
    /// SOR needs at least one reconstruction worker.
    ZeroWorkers,
    /// The data plane decodes at least one stripe per batch round.
    ZeroDecodeBatch,
    /// The data zone needs at least one stripe.
    ZeroStripes,
    /// Chunks must have a positive size.
    ZeroChunkSize,
    /// The buffer cache cannot hold even one chunk.
    CacheTooSmall {
        /// Configured cache size, MiB.
        cache_mb: usize,
        /// Configured chunk size, KiB.
        chunk_kb: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NonPrimeP(p) => write!(f, "p = {p} is not prime"),
            ConfigError::ZeroWorkers => write!(f, "workers must be at least 1"),
            ConfigError::ZeroDecodeBatch => write!(f, "decode_batch must be at least 1"),
            ConfigError::ZeroStripes => write!(f, "stripes must be at least 1"),
            ConfigError::ZeroChunkSize => write!(f, "chunk_kb must be at least 1"),
            ConfigError::CacheTooSmall { cache_mb, chunk_kb } => write!(
                f,
                "cache of {cache_mb} MiB cannot hold one {chunk_kb} KiB chunk"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full description of one reconstruction experiment.
///
/// Defaults follow the paper's setup (§IV-A) scaled to finish in seconds of
/// host time: 32 KB chunks, 0.5 ms cache access, 10 ms disk access, SOR
/// with 128 workers and a partitioned cache, uniform error lengths on
/// `[1, p-1]`.
///
/// **Scheme note.** All cache policies run on top of the *shared-chunk*
/// recovery scheme (`SchemeKind::FbfCycling`). With the horizontal-only
/// typical scheme no chunk is ever referenced twice, so every policy's hit
/// ratio is ~0 and the comparison is vacuous; the paper's Fig. 8 baselines
/// clearly re-reference chunks. The scheme itself is ablated separately
/// (`ablation_scheme`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Erasure code under test.
    pub code: CodeSpec,
    /// The code's prime parameter (5, 7, 11, 13 in the paper).
    pub p: usize,
    /// Cache replacement policy under test.
    pub policy: PolicyKind,
    /// FBF-specific tunables (demotion position, ablation switches); only
    /// consulted when `policy == PolicyKind::Fbf`.
    pub fbf: FbfConfig,
    /// Recovery-scheme generator (see struct docs).
    pub scheme: SchemeKind,
    /// Total buffer-cache size in MiB (the paper's x-axis).
    pub cache_mb: usize,
    /// Chunk size in KiB (the paper: 32).
    pub chunk_kb: usize,
    /// Stripes in the array's data zone.
    pub stripes: u32,
    /// Partial stripe errors in the campaign.
    pub error_count: usize,
    /// SOR reconstruction workers.
    pub workers: usize,
    /// Data-plane decode batch: stripes whose reads are gathered together
    /// before the per-stripe XOR pass in
    /// [`run_planned_on`](crate::backend_run::run_planned_on). Clamped to
    /// `workers` at run time (a batch never spans two schemes of the same
    /// cache slice) and forced to 1 under [`CacheSharing::Shared`]; 1
    /// disables batching. Purely a throughput knob — per-slice access
    /// order, and therefore hit/miss accounting, is independent of it.
    pub decode_batch: usize,
    /// Cache partitioning across workers.
    pub sharing: CacheSharing,
    /// Disk service model.
    pub disk_model: DiskModel,
    /// Disk head-scheduling discipline (matters under the detailed
    /// mechanical model; FCFS matches the paper's fixed-latency setup).
    pub disk_sched: DiskSched,
    /// Failure injection: one disk serving at a multiple of its normal
    /// service time (aged-disk straggler).
    pub straggler: Option<(usize, f64)>,
    /// Deterministic mid-recovery fault injection (media errors, transient
    /// stalls, straggler, disk kill). [`FaultPlan::none()`] — the default —
    /// reproduces the fault-free baseline bit-for-bit.
    pub faults: FaultPlan,
    /// Buffer-cache access time.
    pub cache_hit_time: SimTime,
    /// Campaign RNG seed.
    pub seed: u64,
    /// Host threads for scheme generation (0 = all cores).
    pub gen_threads: usize,
    /// Emit fbf-obs events (plan spans, run counters) for this experiment.
    /// Only takes effect when a subscriber is installed via
    /// `fbf_obs::install`; off by default so plain runs stay zero-cost.
    pub obs: bool,
    /// Per-class latency objectives, evaluated into the run's
    /// [`Metrics`](crate::Metrics) as a typed pass/fail verdict. The
    /// default has no thresholds (vacuous pass).
    pub slo: SloSpec,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            code: CodeSpec::Tip,
            p: 7,
            policy: PolicyKind::Fbf,
            fbf: FbfConfig::default(),
            scheme: SchemeKind::FbfCycling,
            cache_mb: 64,
            chunk_kb: 32,
            stripes: 4096,
            error_count: 512,
            workers: 128,
            decode_batch: 8,
            sharing: CacheSharing::Partitioned,
            disk_model: DiskModel::paper_default(),
            disk_sched: DiskSched::Fcfs,
            straggler: None,
            faults: FaultPlan::none(),
            cache_hit_time: SimTime::from_micros(500),
            seed: 0x5EED,
            gen_threads: 0,
            obs: false,
            slo: SloSpec::none(),
        }
    }
}

/// Parse a code name as the CLI and daemon protocol spell it
/// (`tip`, `hdd1`, `triplestar`, `star`, `rdp`, `evenodd`).
pub fn code_from_name(s: &str) -> Option<CodeSpec> {
    match s.to_ascii_lowercase().as_str() {
        "tip" => Some(CodeSpec::Tip),
        "hdd1" => Some(CodeSpec::Hdd1),
        "triplestar" | "triple-star" | "ts" => Some(CodeSpec::TripleStar),
        "star" => Some(CodeSpec::Star),
        "rdp" => Some(CodeSpec::Rdp),
        "evenodd" | "eo" => Some(CodeSpec::Evenodd),
        _ => None,
    }
}

/// Parse a replacement-policy name (`fifo`, `lru`, `lfu`, `arc`, `fbf`,
/// `lru-k`, `2q`, `lrfu`, `fbr`, `vdf`).
pub fn policy_from_name(s: &str) -> Option<PolicyKind> {
    match s.to_ascii_lowercase().as_str() {
        "fifo" => Some(PolicyKind::Fifo),
        "lru" => Some(PolicyKind::Lru),
        "lfu" => Some(PolicyKind::Lfu),
        "arc" => Some(PolicyKind::Arc),
        "fbf" => Some(PolicyKind::Fbf),
        "lru-k" | "lruk" | "lru2" => Some(PolicyKind::LruK),
        "2q" | "twoq" => Some(PolicyKind::TwoQ),
        "lrfu" => Some(PolicyKind::Lrfu),
        "fbr" => Some(PolicyKind::Fbr),
        "vdf" => Some(PolicyKind::Vdf),
        _ => None,
    }
}

/// Parse a recovery-scheme name (`typical`, `fbf`/`cycling`, `greedy`).
pub fn scheme_from_name(s: &str) -> Option<SchemeKind> {
    match s.to_ascii_lowercase().as_str() {
        "typical" | "horizontal" => Some(SchemeKind::Typical),
        "fbf" | "cycling" => Some(SchemeKind::FbfCycling),
        "greedy" => Some(SchemeKind::Greedy),
        _ => None,
    }
}

impl ExperimentConfig {
    /// Start building a configuration from the paper's defaults, with
    /// validation at the end.
    ///
    /// ```
    /// use fbf_core::ExperimentConfig;
    /// use fbf_cache::PolicyKind;
    ///
    /// let cfg = ExperimentConfig::builder()
    ///     .policy(PolicyKind::Lru)
    ///     .cache_mb(16)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(cfg.cache_mb, 16);
    /// ```
    pub fn builder() -> ExperimentConfigBuilder {
        ExperimentConfigBuilder {
            cfg: ExperimentConfig::default(),
        }
    }

    /// Check the configuration for impossibilities a run could only hit as
    /// a panic or a nonsense result.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !is_prime(self.p) {
            return Err(ConfigError::NonPrimeP(self.p));
        }
        if self.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.decode_batch == 0 {
            return Err(ConfigError::ZeroDecodeBatch);
        }
        if self.stripes == 0 {
            return Err(ConfigError::ZeroStripes);
        }
        if self.chunk_kb == 0 {
            return Err(ConfigError::ZeroChunkSize);
        }
        if self.cache_chunks() == 0 {
            return Err(ConfigError::CacheTooSmall {
                cache_mb: self.cache_mb,
                chunk_kb: self.chunk_kb,
            });
        }
        Ok(())
    }

    /// Cache capacity in chunks: `cache_mb` MiB of `chunk_kb` KiB chunks.
    pub fn cache_chunks(&self) -> usize {
        self.cache_mb * 1024 / self.chunk_kb
    }

    /// Chunk payload size in bytes.
    pub fn chunk_bytes(&self) -> u64 {
        (self.chunk_kb as u64) << 10
    }

    /// One-line description for logs and reports.
    pub fn describe(&self) -> String {
        format!(
            "{}(p={}) policy={} scheme={} cache={}MB workers={}",
            self.code.name(),
            self.p,
            self.policy.name(),
            self.scheme.name(),
            self.cache_mb,
            self.workers
        )
    }
}

/// Fluent, validated construction of [`ExperimentConfig`].
///
/// Starts from [`ExperimentConfig::default`] (the paper's setup); every
/// setter overrides one field; [`build`](Self::build) validates eagerly and
/// returns a typed [`ConfigError`] instead of letting a bad value panic
/// mid-experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfigBuilder {
    cfg: ExperimentConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $field:ident: $ty:ty),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $field(mut self, $field: $ty) -> Self {
                self.cfg.$field = $field;
                self
            }
        )+
    };
}

impl ExperimentConfigBuilder {
    builder_setters! {
        /// Erasure code under test.
        code: CodeSpec,
        /// The code's prime parameter.
        p: usize,
        /// Cache replacement policy under test.
        policy: PolicyKind,
        /// FBF-specific tunables.
        fbf: FbfConfig,
        /// Recovery-scheme generator.
        scheme: SchemeKind,
        /// Total buffer-cache size in MiB.
        cache_mb: usize,
        /// Chunk size in KiB.
        chunk_kb: usize,
        /// Stripes in the array's data zone.
        stripes: u32,
        /// Partial stripe errors in the campaign.
        error_count: usize,
        /// SOR reconstruction workers.
        workers: usize,
        /// Data-plane decode batch size (stripes per gather/XOR round).
        decode_batch: usize,
        /// Cache partitioning across workers.
        sharing: CacheSharing,
        /// Disk service model.
        disk_model: DiskModel,
        /// Disk head-scheduling discipline.
        disk_sched: DiskSched,
        /// Aged-disk straggler injection.
        straggler: Option<(usize, f64)>,
        /// Deterministic mid-recovery fault injection.
        faults: FaultPlan,
        /// Buffer-cache access time.
        cache_hit_time: SimTime,
        /// Campaign RNG seed.
        seed: u64,
        /// Host threads for scheme generation (0 = all cores).
        gen_threads: usize,
        /// Emit fbf-obs events for this experiment.
        obs: bool,
        /// Per-class latency objectives.
        slo: SloSpec,
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<ExperimentConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_default() {
        let built = ExperimentConfig::builder().build().unwrap();
        let default = ExperimentConfig::default();
        assert_eq!(built.describe(), default.describe());
        assert_eq!(built.seed, default.seed);
        assert_eq!(built.cache_mb, default.cache_mb);
    }

    #[test]
    fn builder_rejects_non_prime_p() {
        assert_eq!(
            ExperimentConfig::builder().p(8).build().unwrap_err(),
            ConfigError::NonPrimeP(8)
        );
    }

    #[test]
    fn builder_rejects_zero_workers_and_stripes() {
        assert_eq!(
            ExperimentConfig::builder().workers(0).build().unwrap_err(),
            ConfigError::ZeroWorkers
        );
        assert_eq!(
            ExperimentConfig::builder().stripes(0).build().unwrap_err(),
            ConfigError::ZeroStripes
        );
    }

    #[test]
    fn builder_rejects_cache_below_one_chunk() {
        assert_eq!(
            ExperimentConfig::builder().cache_mb(0).build().unwrap_err(),
            ConfigError::CacheTooSmall {
                cache_mb: 0,
                chunk_kb: 32
            }
        );
        assert_eq!(
            ExperimentConfig::builder().chunk_kb(0).build().unwrap_err(),
            ConfigError::ZeroChunkSize
        );
    }

    #[test]
    fn builder_sets_every_field_it_names() {
        let cfg = ExperimentConfig::builder()
            .code(CodeSpec::Star)
            .p(11)
            .policy(PolicyKind::Arc)
            .scheme(SchemeKind::Typical)
            .cache_mb(128)
            .chunk_kb(64)
            .stripes(1024)
            .error_count(100)
            .workers(16)
            .seed(7)
            .gen_threads(2)
            .obs(true)
            .build()
            .unwrap();
        assert_eq!(cfg.code, CodeSpec::Star);
        assert_eq!(cfg.p, 11);
        assert_eq!(cfg.policy, PolicyKind::Arc);
        assert_eq!(cfg.scheme, SchemeKind::Typical);
        assert_eq!(cfg.cache_mb, 128);
        assert_eq!(cfg.chunk_kb, 64);
        assert_eq!(cfg.stripes, 1024);
        assert_eq!(cfg.error_count, 100);
        assert_eq!(cfg.workers, 16);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.gen_threads, 2);
        assert!(cfg.obs);
    }

    #[test]
    fn validate_accepts_paper_defaults() {
        assert!(ExperimentConfig::default().validate().is_ok());
    }

    #[test]
    fn slo_spec_defaults_inactive_and_builder_carries_it() {
        assert!(!SloSpec::none().is_active());
        let slo = SloSpec::none().class(RequestClass::App, 25.0, 0.01);
        assert!(slo.is_active());
        assert_eq!(slo.get(RequestClass::App).threshold_ms, Some(25.0));
        assert_eq!(slo.get(RequestClass::Recovery).threshold_ms, None);
        let cfg = ExperimentConfig::builder().slo(slo).build().unwrap();
        assert!(cfg.slo.is_active());
        assert_eq!(cfg.slo, slo);
    }

    #[test]
    fn default_faults_are_inactive() {
        let cfg = ExperimentConfig::default();
        assert!(!cfg.faults.is_active());
        let faulted = ExperimentConfig::builder()
            .faults(FaultPlan {
                media_per_mille: 5,
                ..FaultPlan::none()
            })
            .build()
            .unwrap();
        assert!(faulted.faults.is_active());
    }

    #[test]
    fn cache_chunks_conversion() {
        let cfg = ExperimentConfig {
            cache_mb: 256,
            chunk_kb: 32,
            ..Default::default()
        };
        assert_eq!(cfg.cache_chunks(), 8192);
        assert_eq!(cfg.chunk_bytes(), 32 * 1024);
    }

    #[test]
    fn default_matches_paper_constants() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.chunk_kb, 32);
        assert_eq!(cfg.workers, 128);
        assert_eq!(cfg.cache_hit_time, SimTime::from_micros(500));
        match cfg.disk_model {
            DiskModel::Fixed { access } => assert_eq!(access, SimTime::from_millis(10)),
            _ => panic!("default disk model should be the paper's fixed latency"),
        }
    }

    #[test]
    fn describe_mentions_key_fields() {
        let d = ExperimentConfig::default().describe();
        assert!(d.contains("TIP"));
        assert!(d.contains("FBF"));
        assert!(d.contains("64MB"));
    }
}
