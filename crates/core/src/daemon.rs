//! `fbfd` — recovery as a long-running service.
//!
//! The daemon accepts repair / status / read requests over a unix or TCP
//! socket, executes campaigns on a small worker pool (each worker reuses
//! one [`EngineScratch`] and a shared [`PlanStore`], like a sweep
//! thread), and streams progress events to subscribed clients through
//! the [`fbf_obs`] bridge. Everything is hand-rolled on `std` — the
//! workspace's async crates are vendored stubs, and a poll loop with
//! short read timeouts is all this protocol needs.
//!
//! # Wire protocol
//!
//! Length-prefixed JSON frames in both directions: a 4-byte big-endian
//! payload length, then that many bytes of UTF-8 JSON (one object per
//! frame, 64 MiB cap). Requests carry `{"cmd": ...}`; replies carry
//! `{"ok": true, ...}` or `{"ok": false, "error": "..."}` and always
//! include `"schema_version"`. Commands:
//!
//! | cmd         | request fields                               | reply |
//! |-------------|----------------------------------------------|-------|
//! | `ping`      | —                                            | `pong`, version info |
//! | `repair`    | `backend` (`engine`/`sim`/`file`), `config` overrides, optional `dir`, optional inline `trace` | `job` id |
//! | `status`    | `job`                                        | `state`, `metrics` when done |
//! | `jobs`      | —                                            | array of `{job, state}` |
//! | `read`      | `job`, `stripe`, `row`, `col`                | chunk length + FNV-1a digest |
//! | `metrics`   | —                                            | Prometheus text: finished jobs + live `fbf_jobs_*` gauges |
//! | `stat`      | —                                            | live introspection: job states, per-job progress, merged class latency |
//! | `dump`      | —                                            | snapshot the flight recorder, reply with its JSONL |
//! | `subscribe` | —                                            | stream of `{"event": <chrome line>}` frames |
//! | `shutdown`  | —                                            | ack, then the daemon exits |
//!
//! # Causal tracing and the flight recorder
//!
//! Every `repair` request is minted a trace id (or adopts the client's
//! `trace_id` field), echoed in the reply as `trace`. The worker
//! activates it for the whole execution under a `daemon/repair` root
//! span, so every event the job emits — plan, engine run, decode
//! batches, escalation rounds — carries the request's ids and
//! `check_trace.py --flows` reassembles one tree per request. `serve`
//! also installs an always-on flight recorder
//! ([`fbf_obs::FlightRecorder`]); `dump` (or a `DataLoss`/SLO-breach
//! trigger) snapshots it for post-mortems.
//!
//! The `read` command serves from the job's retained [`StorageBackend`]
//! (repaired chunks come from the spare area), so a client can verify
//! recovered content end to end without shipping chunk payloads through
//! JSON — it gets a digest instead.

use crate::backend_run::{file_backend_for, run_planned_on, sim_backend_for};
use crate::config::ExperimentConfig;
use crate::json::Json;
use crate::metrics::{ClassLatency, Metrics, METRICS_SCHEMA_VERSION};
use crate::plan::{PlanSource, PlanStore, PlannedCampaign};
use crate::progress::Progress;
use crate::runner::run_planned_observed;
use crate::sweep::SweepPoint;
use fbf_codes::{Cell, ChunkId, StripeCode};
use fbf_disksim::{EngineScratch, Histogram, RequestClass, StorageBackend};
use fbf_obs::BridgeSubscriber;
use std::collections::HashMap;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Protocol revision spoken by this daemon (bumped on breaking changes).
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard cap on one frame's payload (a config + inline trace fits in a
/// fraction of this; anything bigger is a corrupt length prefix).
pub const MAX_FRAME: usize = 64 << 20;

const ACCEPT_POLL: Duration = Duration::from_millis(50);
const READ_POLL: Duration = Duration::from_millis(200);

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerAddr {
    /// Unix-domain socket at this path (created, removed on shutdown).
    Unix(PathBuf),
    /// TCP socket (use port 0 to let the OS pick; see
    /// [`DaemonHandle::addr`] for the bound address).
    Tcp(SocketAddr),
}

/// Daemon tuning.
#[derive(Debug, Clone, Copy)]
pub struct DaemonOptions {
    /// Repair worker threads (each owns an [`EngineScratch`]).
    pub workers: usize,
    /// Completed jobs whose data-plane backend stays resident for `read`.
    /// When a job finishes past this cap, the *oldest* retained backend is
    /// evicted (its metrics stay; `read` on it returns a typed error).
    /// Without a cap every `sim`/`file` job's full array lives until
    /// shutdown — an unbounded leak under a steady job stream.
    pub retain: usize,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        DaemonOptions {
            workers: 2,
            retain: 8,
        }
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, body: &str) -> io::Result<()> {
    let bytes = body.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(ErrorKind::InvalidInput, "frame too large"));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Read one length-prefixed frame. `Ok(None)` means the peer closed the
/// connection cleanly before a frame started. Read timeouts are retried
/// internally until `stop` flips (then `Ok(None)`), so callers never see
/// a frame torn across a timeout boundary.
pub fn read_frame(r: &mut impl Read, stop: &AtomicBool) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    if !read_exact_stoppable(r, &mut len_buf, stop, true)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            "frame length exceeds cap",
        ));
    }
    let mut body = vec![0u8; len];
    if !read_exact_stoppable(r, &mut body, stop, false)? {
        return Err(io::Error::new(
            ErrorKind::UnexpectedEof,
            "connection closed mid-frame",
        ));
    }
    String::from_utf8(body)
        .map(Some)
        .map_err(|_| io::Error::new(ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// `read_exact` that treats timeouts as "check `stop`, keep going" and a
/// clean EOF *before any byte* as `Ok(false)` when `eof_ok`.
fn read_exact_stoppable(
    r: &mut impl Read,
    buf: &mut [u8],
    stop: &AtomicBool,
    eof_ok: bool,
) -> io::Result<bool> {
    let mut filled = 0usize;
    while filled < buf.len() {
        if stop.load(Ordering::Relaxed) {
            return Ok(false);
        }
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && eof_ok {
                    Ok(false)
                } else {
                    Err(io::Error::new(ErrorKind::UnexpectedEof, "peer closed"))
                };
            }
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// One job's lifecycle state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully (metrics available).
    Done,
    /// Failed; the payload is the error message.
    Failed(String),
}

impl JobState {
    /// Wire spelling of the state.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

struct Job {
    cfg: ExperimentConfig,
    backend_kind: String,
    dir: Option<PathBuf>,
    errors: Option<fbf_recovery::ErrorGroup>,
    /// `Some` makes this an array-wide rebuild job instead of a repair.
    rebuild: Option<crate::rebuild::RebuildSpec>,
    state: JobState,
    metrics: Option<Metrics>,
    /// Rendered [`RebuildOutcome`](crate::rebuild::RebuildOutcome) JSON of
    /// a finished rebuild job.
    rebuild_json: Option<String>,
    /// Retained after completion so `read` can serve repaired chunks.
    backend: Option<Box<dyn StorageBackend>>,
    /// The backend was dropped by the retention cap (distinguishes "never
    /// had one" from "had one, evicted" in `read` errors).
    backend_evicted: bool,
    /// The request's trace id (minted or client-supplied); every event
    /// the job emits carries it.
    trace: u64,
    /// Live escalation counters the worker publishes mid-job (`stat`).
    progress: Arc<Progress>,
}

impl Job {
    fn new(cfg: ExperimentConfig, backend_kind: String, trace: u64) -> Self {
        Job {
            cfg,
            backend_kind,
            dir: None,
            errors: None,
            rebuild: None,
            state: JobState::Queued,
            metrics: None,
            rebuild_json: None,
            backend: None,
            backend_evicted: false,
            trace,
            progress: Arc::new(Progress::new()),
        }
    }
}

struct Ctx {
    shutdown: Arc<AtomicBool>,
    jobs: Mutex<HashMap<u64, Job>>,
    queue: mpsc::Sender<u64>,
    next_id: AtomicU64,
    bridge: Arc<BridgeSubscriber>,
    /// Worker-pool size (`stat` reports busy/total).
    workers: usize,
    /// Backend retention cap ([`DaemonOptions::retain`]).
    retain: usize,
    /// Jobs whose backend is resident, oldest completion first.
    retained: Mutex<std::collections::VecDeque<u64>>,
    /// When `serve` started (`stat` reports uptime).
    started: Instant,
}

/// A running daemon: join it via [`DaemonHandle::shutdown`].
pub struct DaemonHandle {
    addr: ServerAddr,
    shutdown_flag: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// The bound address (TCP port resolved when the OS picked one).
    pub fn addr(&self) -> &ServerAddr {
        &self.addr
    }

    /// Has a `shutdown` command (or an explicit stop) been issued?
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown_flag.load(Ordering::Relaxed)
    }

    /// Stop accepting, drain the worker pool, and clean up the socket.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Block until the daemon stops on its own (a client's `shutdown`
    /// command), then clean up. Used by the `fbfd` binary's foreground
    /// mode.
    pub fn wait(mut self) {
        while !self.shutdown_flag.load(Ordering::Relaxed) {
            std::thread::sleep(ACCEPT_POLL);
        }
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown_flag.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let ServerAddr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> io::Result<ClientStream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| ClientStream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| ClientStream::Tcp(s)),
        }
    }
    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }
}

/// A connected protocol stream (either transport), used by both the
/// daemon's connection handlers and [`DaemonClient`].
pub enum ClientStream {
    /// Unix-domain transport.
    Unix(UnixStream),
    /// TCP transport.
    Tcp(TcpStream),
}

impl ClientStream {
    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            ClientStream::Unix(s) => s.set_read_timeout(t),
            ClientStream::Tcp(s) => s.set_read_timeout(t),
        }
    }
    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            ClientStream::Unix(s) => s.set_nonblocking(nb),
            ClientStream::Tcp(s) => s.set_nonblocking(nb),
        }
    }
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientStream::Unix(s) => s.read(buf),
            ClientStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientStream::Unix(s) => s.write(buf),
            ClientStream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClientStream::Unix(s) => s.flush(),
            ClientStream::Tcp(s) => s.flush(),
        }
    }
}

/// Start serving on `addr`. Installs a [`BridgeSubscriber`] as the
/// process-wide observability sink (unless one is already installed) so
/// repair progress streams to `subscribe`d clients.
pub fn serve(addr: &ServerAddr, opts: DaemonOptions) -> io::Result<DaemonHandle> {
    let (listener, bound) = match addr {
        ServerAddr::Unix(path) => {
            // A stale socket file from a crashed daemon blocks bind.
            let _ = std::fs::remove_file(path);
            (
                Listener::Unix(UnixListener::bind(path)?),
                ServerAddr::Unix(path.clone()),
            )
        }
        ServerAddr::Tcp(sock) => {
            let l = TcpListener::bind(sock)?;
            let actual = l.local_addr()?;
            (Listener::Tcp(l), ServerAddr::Tcp(actual))
        }
    };
    listener.set_nonblocking(true)?;

    let bridge = Arc::new(BridgeSubscriber::new());
    if !fbf_obs::has_subscriber() {
        fbf_obs::install(bridge.clone());
    }
    // Always-on flight recorder: post-mortems of faulted jobs need no
    // pre-enabled tracing. Kept if one is already installed (tests), and
    // deliberately never uninstalled on shutdown — rings are per-process
    // and a later daemon in the same process reuses them.
    fbf_obs::ring::install_default();

    let shutdown = Arc::new(AtomicBool::new(false));
    let (queue_tx, queue_rx) = mpsc::channel::<u64>();
    let ctx = Arc::new(Ctx {
        shutdown: shutdown.clone(),
        jobs: Mutex::new(HashMap::new()),
        queue: queue_tx,
        next_id: AtomicU64::new(1),
        bridge,
        workers: opts.workers.max(1),
        retain: opts.retain,
        retained: Mutex::new(std::collections::VecDeque::new()),
        started: Instant::now(),
    });

    let queue_rx = Arc::new(Mutex::new(queue_rx));
    let store = Arc::new(PlanStore::new());
    let workers: Vec<_> = (0..opts.workers.max(1))
        .map(|_| {
            let rx = Arc::clone(&queue_rx);
            let ctx = Arc::clone(&ctx);
            let store = Arc::clone(&store);
            std::thread::spawn(move || worker_loop(&rx, &ctx, &store))
        })
        .collect();

    let accept_ctx = Arc::clone(&ctx);
    let accept = std::thread::spawn(move || {
        while !accept_ctx.shutdown.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok(stream) => {
                    let conn_ctx = Arc::clone(&accept_ctx);
                    std::thread::spawn(move || handle_conn(stream, &conn_ctx));
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
    });

    Ok(DaemonHandle {
        addr: bound,
        shutdown_flag: shutdown,
        accept: Some(accept),
        workers,
    })
}

fn worker_loop(rx: &Mutex<mpsc::Receiver<u64>>, ctx: &Ctx, store: &PlanStore) {
    let mut scratch = EngineScratch::new();
    loop {
        if ctx.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let job_id = {
            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
            match guard.recv_timeout(READ_POLL) {
                Ok(id) => id,
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
        };
        let Some((cfg, backend_kind, dir, errors, rebuild, trace, progress)) = ({
            let mut jobs = ctx.jobs.lock().unwrap_or_else(|p| p.into_inner());
            jobs.get_mut(&job_id).map(|job| {
                job.state = JobState::Running;
                (
                    job.cfg,
                    job.backend_kind.clone(),
                    job.dir.clone(),
                    job.errors.take(),
                    job.rebuild.clone(),
                    job.trace,
                    Arc::clone(&job.progress),
                )
            })
        }) else {
            continue;
        };
        // Activate the request's trace for everything this job emits; the
        // daemon/repair span is the request tree's single root.
        let trace_guard = fbf_obs::with_trace(trace);
        let root = fbf_obs::span("daemon", "repair");
        fbf_obs::instant(
            "daemon",
            "job-start",
            &[
                ("job", fbf_obs::Value::U64(job_id)),
                ("backend", fbf_obs::Value::Str(&backend_kind)),
            ],
        );
        // A panicking job must become `Failed`, not a dead worker thread:
        // before this guard, a panic left the job `Running` forever, so
        // the `fbf_jobs_total{state}` gauges drifted (a phantom running
        // job, one fewer live worker) for the rest of the daemon's life.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(spec) = &rebuild {
                crate::rebuild::execute_rebuild(spec, store, &mut scratch)
                    .map(|o| JobSuccess::Rebuild(o.to_json()))
                    .map_err(|e| e.to_string())
            } else {
                execute_job(
                    &cfg,
                    &backend_kind,
                    dir,
                    errors,
                    store,
                    &mut scratch,
                    &progress,
                )
                .map(|(metrics, backend)| JobSuccess::Repair(Box::new(metrics), backend))
            }
        }))
        .unwrap_or_else(|panic| {
            // The scratch may hold a torn event heap; start fresh.
            scratch = EngineScratch::new();
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked".to_string());
            Err(format!("job panicked: {msg}"))
        });
        let failed = outcome.is_err();
        let mut jobs = ctx.jobs.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(job) = jobs.get_mut(&job_id) {
            match outcome {
                Ok(JobSuccess::Repair(metrics, backend)) => {
                    job.metrics = Some(*metrics);
                    job.backend = backend;
                    job.state = JobState::Done;
                }
                Ok(JobSuccess::Rebuild(json)) => {
                    job.rebuild_json = Some(json);
                    job.state = JobState::Done;
                }
                Err(msg) => job.state = JobState::Failed(msg),
            }
            if job.backend.is_some() {
                // Retention cap: register this backend, evict the oldest
                // beyond the cap (metrics stay — only the array goes).
                let mut retained = ctx.retained.lock().unwrap_or_else(|p| p.into_inner());
                retained.push_back(job_id);
                while retained.len() > ctx.retain {
                    if let Some(old) = retained.pop_front() {
                        if let Some(j) = jobs.get_mut(&old) {
                            j.backend = None;
                            j.backend_evicted = true;
                        }
                    }
                }
            }
        }
        drop(jobs);
        fbf_obs::instant("daemon", "job-end", &[("job", fbf_obs::Value::U64(job_id))]);
        root.end_with(&[
            ("job", fbf_obs::Value::U64(job_id)),
            ("failed", fbf_obs::Value::U64(u64::from(failed))),
        ]);
        drop(trace_guard);
    }
}

type JobOutcome = Result<(Metrics, Option<Box<dyn StorageBackend>>), String>;

/// What a worker produced for a finished job, by job kind.
enum JobSuccess {
    /// A repair: metrics, plus the retained backend for `sim`/`file`.
    Repair(Box<Metrics>, Option<Box<dyn StorageBackend>>),
    /// An array-wide rebuild: the rendered outcome JSON.
    Rebuild(String),
}

#[allow(clippy::too_many_arguments)]
fn execute_job(
    cfg: &ExperimentConfig,
    backend_kind: &str,
    dir: Option<PathBuf>,
    errors: Option<fbf_recovery::ErrorGroup>,
    store: &PlanStore,
    scratch: &mut EngineScratch,
    progress: &Progress,
) -> JobOutcome {
    cfg.validate().map_err(|e| e.to_string())?;
    // Trace-supplied campaigns bypass the plan store (their errors are
    // not derivable from the PlanKey); synthetic ones share it.
    let (plan, source) = match errors {
        Some(errors) => (
            Arc::new(PlannedCampaign::cold_with_errors(cfg, errors).map_err(|e| e.to_string())?),
            PlanSource::Cold,
        ),
        None => store.plan(cfg).map_err(|e| e.to_string())?,
    };
    match backend_kind {
        "engine" => Ok((
            run_planned_observed(cfg, &plan, source, scratch, Some(progress)),
            None,
        )),
        "sim" => {
            let mut backend = sim_backend_for(cfg, &plan).map_err(|e| e.to_string())?;
            let metrics =
                run_planned_on(cfg, &plan, source, &mut backend).map_err(|e| e.to_string())?;
            Ok((metrics, Some(Box::new(backend))))
        }
        "file" => {
            let dir = dir.unwrap_or_else(|| {
                std::env::temp_dir().join(format!("fbfd-{}", std::process::id()))
            });
            let mut backend = file_backend_for(cfg, &plan, &dir).map_err(|e| e.to_string())?;
            let metrics =
                run_planned_on(cfg, &plan, source, &mut backend).map_err(|e| e.to_string())?;
            Ok((metrics, Some(Box::new(backend))))
        }
        "panic" if cfg!(debug_assertions) => {
            panic!("deliberate panic backend (worker-crash regression test)")
        }
        other => Err(format!(
            "unknown backend `{other}` (expected engine, sim, or file)"
        )),
    }
}

fn handle_conn(mut stream: ClientStream, ctx: &Ctx) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    loop {
        let frame = match read_frame(&mut stream, &ctx.shutdown) {
            Ok(Some(f)) => f,
            Ok(None) => return, // clean EOF or shutdown
            Err(_) => return,
        };
        let reply = match Json::parse(&frame) {
            Ok(req) => {
                let cmd = req.get("cmd").and_then(Json::as_str).unwrap_or("");
                match cmd {
                    "subscribe" => {
                        // Acknowledge, then turn this connection into an
                        // event stream until the client goes away.
                        let ack = ok_reply([("subscribed", Json::Bool(true))]);
                        if write_frame(&mut stream, &ack.render()).is_err() {
                            return;
                        }
                        stream_events(&mut stream, ctx);
                        return;
                    }
                    "shutdown" => {
                        let ack = ok_reply([("stopping", Json::Bool(true))]);
                        let _ = write_frame(&mut stream, &ack.render());
                        ctx.shutdown.store(true, Ordering::Relaxed);
                        return;
                    }
                    _ => dispatch(cmd, &req, ctx),
                }
            }
            Err(e) => err_reply(&format!("bad request: {e}")),
        };
        if write_frame(&mut stream, &reply.render()).is_err() {
            return;
        }
    }
}

fn stream_events(stream: &mut ClientStream, ctx: &Ctx) {
    let rx = ctx.bridge.subscribe();
    loop {
        if ctx.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match rx.recv_timeout(READ_POLL) {
            Ok(line) => {
                let frame = Json::obj([("event", Json::Str(line.trim_end().to_string()))]);
                if write_frame(stream, &frame.render()).is_err() {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn ok_reply(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("schema_version", Json::Num(METRICS_SCHEMA_VERSION as f64)),
    ];
    pairs.extend(fields);
    Json::obj(pairs)
}

fn err_reply(msg: &str) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("schema_version", Json::Num(METRICS_SCHEMA_VERSION as f64)),
        ("error", Json::Str(msg.to_string())),
    ])
}

fn dispatch(cmd: &str, req: &Json, ctx: &Ctx) -> Json {
    match cmd {
        "ping" => ok_reply([
            ("pong", Json::Bool(true)),
            ("protocol", Json::Num(PROTOCOL_VERSION as f64)),
        ]),
        "repair" => cmd_repair(req, ctx),
        "rebuild" => cmd_rebuild(req, ctx),
        "status" => cmd_status(req, ctx),
        "jobs" => cmd_jobs(ctx),
        "read" => cmd_read(req, ctx),
        "metrics" => cmd_metrics(ctx),
        "stat" => cmd_stat(ctx),
        "dump" => cmd_dump(),
        "" => err_reply("missing cmd field"),
        other => err_reply(&format!("unknown cmd `{other}`")),
    }
}

/// Apply the request's `config` object onto the paper-default
/// [`ExperimentConfig`]. Unknown keys are an error (a typo'd override
/// silently running the default experiment would be worse).
fn config_from_request(req: &Json) -> Result<ExperimentConfig, String> {
    let mut builder = ExperimentConfig::builder().obs(true);
    if let Some(Json::Obj(map)) = req.get("config") {
        for (key, value) in map {
            builder = apply_override(builder, key, value)?;
        }
    }
    builder.build().map_err(|e| e.to_string())
}

fn apply_override(
    b: crate::config::ExperimentConfigBuilder,
    key: &str,
    value: &Json,
) -> Result<crate::config::ExperimentConfigBuilder, String> {
    let bad = || format!("bad value for config.{key}");
    Ok(match key {
        "code" => b.code(
            value
                .as_str()
                .and_then(crate::config::code_from_name)
                .ok_or_else(bad)?,
        ),
        "p" => b.p(value.as_u64().ok_or_else(bad)? as usize),
        "policy" => b.policy(
            value
                .as_str()
                .and_then(crate::config::policy_from_name)
                .ok_or_else(bad)?,
        ),
        "scheme" => b.scheme(
            value
                .as_str()
                .and_then(crate::config::scheme_from_name)
                .ok_or_else(bad)?,
        ),
        "cache_mb" => b.cache_mb(value.as_u64().ok_or_else(bad)? as usize),
        "chunk_kb" => b.chunk_kb(value.as_u64().ok_or_else(bad)? as usize),
        "stripes" => b.stripes(value.as_u64().ok_or_else(bad)? as u32),
        "errors" | "error_count" => b.error_count(value.as_u64().ok_or_else(bad)? as usize),
        "workers" => b.workers(value.as_u64().ok_or_else(bad)? as usize),
        "decode_batch" => b.decode_batch(value.as_u64().ok_or_else(bad)? as usize),
        "seed" => b.seed(value.as_u64().ok_or_else(bad)?),
        "gen_threads" => b.gen_threads(value.as_u64().ok_or_else(bad)? as usize),
        other => return Err(format!("unknown config key `{other}`")),
    })
}

fn cmd_repair(req: &Json, ctx: &Ctx) -> Json {
    let cfg = match config_from_request(req) {
        Ok(c) => c,
        Err(e) => return err_reply(&e),
    };
    let backend_kind = req
        .get("backend")
        .and_then(Json::as_str)
        .unwrap_or("engine")
        .to_string();
    // `panic` is a debug-build-only seam for the worker-crash regression
    // test (a panicking job must become `Failed`, not a dead worker).
    let test_seam = cfg!(debug_assertions) && backend_kind == "panic";
    if !matches!(backend_kind.as_str(), "engine" | "sim" | "file") && !test_seam {
        return err_reply(&format!("unknown backend `{backend_kind}`"));
    }
    let dir = req.get("dir").and_then(Json::as_str).map(PathBuf::from);
    let errors = match req.get("trace").and_then(Json::as_str) {
        Some(text) => {
            let group = match fbf_workload::parse_trace(text) {
                Ok(g) => g,
                Err(e) => return err_reply(&format!("bad trace: {e}")),
            };
            let code = match StripeCode::build(cfg.code, cfg.p) {
                Ok(c) => c,
                Err(e) => return err_reply(&format!("cannot build code: {e}")),
            };
            if let Err(e) = fbf_workload::validate_against(&group, &code, cfg.stripes as usize) {
                return err_reply(&format!("trace does not fit geometry: {e}"));
            }
            Some(group)
        }
        None => None,
    };

    // Adopt the client's trace id when it sent one (load generators stamp
    // their own so client-side and daemon-side events correlate); mint
    // otherwise. Either way the reply echoes it.
    let trace = match req.get("trace_id").and_then(Json::as_u64) {
        Some(t) if t != 0 => t,
        _ => fbf_obs::next_trace_id(),
    };
    let id = ctx.next_id.fetch_add(1, Ordering::Relaxed);
    let mut job = Job::new(cfg, backend_kind, trace);
    job.dir = dir;
    job.errors = errors;
    ctx.jobs
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .insert(id, job);
    if ctx.queue.send(id).is_err() {
        return err_reply("daemon is shutting down");
    }
    ok_reply([
        ("job", Json::Num(id as f64)),
        ("trace", Json::Num(trace as f64)),
    ])
}

/// `rebuild`: queue an array-wide declustered rebuild
/// ([`crate::rebuild::execute_rebuild`]) as a job. Accepts the same
/// `config` overrides as `repair` plus `disks`, `placement`
/// (`clustered`/`rotated`/`declustered`), `placement_seed`, `failed_disk`,
/// `cap`, `fairness` (`rr`/`drr`), `campaigns`, and `app_reads`.
fn cmd_rebuild(req: &Json, ctx: &Ctx) -> Json {
    use fbf_disksim::Placement;
    let base = match config_from_request(req) {
        Ok(c) => c,
        Err(e) => return err_reply(&e),
    };
    let code = match StripeCode::build(base.code, base.p) {
        Ok(c) => c,
        Err(e) => return err_reply(&format!("cannot build code: {e}")),
    };
    let disks = req.get("disks").and_then(Json::as_u64).unwrap_or(100) as usize;
    if disks < code.cols() {
        return err_reply(&format!(
            "{disks} disks cannot hold {}-column stripes",
            code.cols()
        ));
    }
    let mut spec = crate::rebuild::RebuildSpec::new(base, disks);
    match req.get("placement").and_then(Json::as_str) {
        Some("clustered" | "fixed") => spec.placement = Placement::Fixed,
        Some("rotated") => spec.placement = Placement::Rotated,
        Some("declustered") | None => {
            spec.placement = Placement::Declustered {
                seed: req
                    .get("placement_seed")
                    .and_then(Json::as_u64)
                    .unwrap_or(spec.base.seed),
            }
        }
        Some(other) => return err_reply(&format!("unknown placement `{other}`")),
    }
    if let Some(d) = req.get("failed_disk").and_then(Json::as_u64) {
        if d as usize >= disks {
            return err_reply(&format!("failed_disk {d} outside the {disks}-disk array"));
        }
        spec.failed_disk = d as usize;
    }
    if let Some(cap) = req.get("cap").and_then(Json::as_u64) {
        if cap == 0 {
            return err_reply("cap must be at least 1");
        }
        spec.per_disk_cap = cap as u32;
    }
    if let Some(f) = req.get("fairness").and_then(Json::as_str) {
        match fbf_recovery::Fairness::parse(f) {
            Some(fair) => spec.fairness = fair,
            None => return err_reply(&format!("unknown fairness `{f}` (rr or drr)")),
        }
    }
    if let Some(c) = req.get("campaigns").and_then(Json::as_u64) {
        if c == 0 {
            return err_reply("campaigns must be at least 1");
        }
        spec.campaigns = c as usize;
    }
    if let Some(a) = req.get("app_reads").and_then(Json::as_u64) {
        spec.app_reads_per_wave = a as usize;
    }

    let trace = match req.get("trace_id").and_then(Json::as_u64) {
        Some(t) if t != 0 => t,
        _ => fbf_obs::next_trace_id(),
    };
    let id = ctx.next_id.fetch_add(1, Ordering::Relaxed);
    let mut job = Job::new(spec.base, "rebuild".to_string(), trace);
    job.rebuild = Some(spec);
    ctx.jobs
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .insert(id, job);
    if ctx.queue.send(id).is_err() {
        return err_reply("daemon is shutting down");
    }
    ok_reply([
        ("job", Json::Num(id as f64)),
        ("trace", Json::Num(trace as f64)),
    ])
}

fn cmd_status(req: &Json, ctx: &Ctx) -> Json {
    let Some(id) = req.get("job").and_then(Json::as_u64) else {
        return err_reply("status needs a numeric `job`");
    };
    let jobs = ctx.jobs.lock().unwrap_or_else(|p| p.into_inner());
    let Some(job) = jobs.get(&id) else {
        return err_reply(&format!("no such job {id}"));
    };
    let mut fields = vec![
        ("job", Json::Num(id as f64)),
        ("state", Json::Str(job.state.name().to_string())),
        ("backend", Json::Str(job.backend_kind.clone())),
    ];
    if let JobState::Failed(msg) = &job.state {
        fields.push(("error", Json::Str(msg.clone())));
    }
    if let Some(metrics) = &job.metrics {
        match Json::parse(&metrics.to_json()) {
            Ok(m) => fields.push(("metrics", m)),
            Err(e) => fields.push(("error", Json::Str(format!("metrics render bug: {e}")))),
        }
    }
    if let Some(rebuild) = &job.rebuild_json {
        match Json::parse(rebuild) {
            Ok(r) => fields.push(("rebuild", r)),
            Err(e) => fields.push(("error", Json::Str(format!("rebuild render bug: {e}")))),
        }
    }
    ok_reply(fields)
}

fn cmd_jobs(ctx: &Ctx) -> Json {
    let jobs = ctx.jobs.lock().unwrap_or_else(|p| p.into_inner());
    let mut ids: Vec<u64> = jobs.keys().copied().collect();
    ids.sort_unstable();
    let list: Vec<Json> = ids
        .iter()
        .map(|id| {
            let job = &jobs[id];
            Json::obj([
                ("job", Json::Num(*id as f64)),
                ("state", Json::Str(job.state.name().to_string())),
                ("backend", Json::Str(job.backend_kind.clone())),
            ])
        })
        .collect();
    ok_reply([("jobs", Json::Arr(list))])
}

fn cmd_read(req: &Json, ctx: &Ctx) -> Json {
    let (Some(id), Some(stripe), Some(row), Some(col)) = (
        req.get("job").and_then(Json::as_u64),
        req.get("stripe").and_then(Json::as_u64),
        req.get("row").and_then(Json::as_u64),
        req.get("col").and_then(Json::as_u64),
    ) else {
        return err_reply("read needs numeric `job`, `stripe`, `row`, `col`");
    };
    let mut jobs = ctx.jobs.lock().unwrap_or_else(|p| p.into_inner());
    let Some(job) = jobs.get_mut(&id) else {
        return err_reply(&format!("no such job {id}"));
    };
    let Some(backend) = job.backend.as_mut() else {
        return if job.backend_evicted {
            err_reply("job's backend was evicted by the retention cap (rerun or raise --retain)")
        } else {
            err_reply("job has no data-plane backend (engine jobs move identities only)")
        };
    };
    let chunk = ChunkId::new(stripe as u32, Cell::new(row as usize, col as usize));
    let mut buf = vec![0u8; backend.chunk_bytes()];
    match backend.read_chunk(chunk, &mut buf) {
        Ok(()) => ok_reply([
            ("len", Json::Num(buf.len() as f64)),
            ("fnv1a", Json::Str(format!("{:016x}", fnv1a(&buf)))),
            ("repaired", Json::Bool(backend.is_repaired(chunk))),
        ]),
        Err(e) => err_reply(&format!("read failed: {e}")),
    }
}

/// Per-state job counts at one instant: `[queued, running, done, failed]`.
fn job_state_counts(jobs: &HashMap<u64, Job>) -> [u64; 4] {
    let mut counts = [0u64; 4];
    for job in jobs.values() {
        let i = match job.state {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Done => 2,
            JobState::Failed(_) => 3,
        };
        counts[i] += 1;
    }
    counts
}

/// Render the live-state gauges (`fbf_jobs_running`, `fbf_jobs_total`,
/// `fbf_workers_busy`, `fbf_backends_retained`) as Prometheus text,
/// appended to the finished-job snapshot by `cmd_metrics`.
fn jobs_gauges(counts: [u64; 4], workers: usize, retained: u64) -> String {
    let [queued, running, done, failed] = counts;
    let mut out = String::with_capacity(512);
    out.push_str("# HELP fbf_jobs_running Repair jobs a worker is executing right now.\n");
    out.push_str("# TYPE fbf_jobs_running gauge\n");
    out.push_str(&format!("fbf_jobs_running {running}\n"));
    out.push_str("# HELP fbf_jobs_total Jobs the daemon has accepted, by lifecycle state.\n");
    out.push_str("# TYPE fbf_jobs_total gauge\n");
    for (state, n) in [
        ("queued", queued),
        ("running", running),
        ("done", done),
        ("failed", failed),
    ] {
        out.push_str(&format!("fbf_jobs_total{{state=\"{state}\"}} {n}\n"));
    }
    out.push_str("# HELP fbf_workers_busy Worker threads executing a job, out of the pool.\n");
    out.push_str("# TYPE fbf_workers_busy gauge\n");
    out.push_str(&format!(
        "fbf_workers_busy {}\n",
        running.min(workers as u64)
    ));
    out.push_str(
        "# HELP fbf_backends_retained Completed jobs whose data-plane backend is resident \
         (bounded by the retention cap).\n",
    );
    out.push_str("# TYPE fbf_backends_retained gauge\n");
    out.push_str(&format!("fbf_backends_retained {retained}\n"));
    out
}

fn cmd_metrics(ctx: &Ctx) -> Json {
    let jobs = ctx.jobs.lock().unwrap_or_else(|p| p.into_inner());
    let points: Vec<SweepPoint> = jobs
        .values()
        .filter_map(|job| {
            job.metrics.as_ref().map(|m| SweepPoint {
                config: job.cfg,
                metrics: m.clone(),
            })
        })
        .collect();
    let counts = job_state_counts(&jobs);
    let retained = jobs.values().filter(|j| j.backend.is_some()).count() as u64;
    drop(jobs);
    // The histogram/counter snapshot only covers *finished* jobs (their
    // metrics are immutable); the appended fbf_jobs_*/fbf_workers_busy
    // gauges cover live state, so a mid-job scrape still moves.
    let mut text = crate::prom::prometheus_snapshot(&points);
    text.push_str(&jobs_gauges(counts, ctx.workers, retained));
    ok_reply([
        ("completed", Json::Num(points.len() as f64)),
        ("running", Json::Num(counts[1] as f64)),
        ("queued", Json::Num(counts[0] as f64)),
        (
            "coverage",
            Json::Str(
                "histograms cover finished jobs only; fbf_jobs_* gauges cover live state"
                    .to_string(),
            ),
        ),
        ("prometheus", Json::Str(text)),
    ])
}

/// Live introspection: job-state gauges, per-job progress (trace id,
/// escalation rounds/replans/faults so far), and per-class latency
/// summaries merged across every finished job's digests.
fn cmd_stat(ctx: &Ctx) -> Json {
    let jobs = ctx.jobs.lock().unwrap_or_else(|p| p.into_inner());
    let counts = job_state_counts(&jobs);
    let mut ids: Vec<u64> = jobs.keys().copied().collect();
    ids.sort_unstable();
    let mut merged: [Histogram; RequestClass::COUNT] = Default::default();
    let job_list: Vec<Json> = ids
        .iter()
        .map(|id| {
            let job = &jobs[id];
            let p = job.progress.snapshot();
            let mut fields = vec![
                ("job", Json::Num(*id as f64)),
                ("state", Json::Str(job.state.name().to_string())),
                ("backend", Json::Str(job.backend_kind.clone())),
                ("trace", Json::Num(job.trace as f64)),
                ("rounds", Json::Num(p.rounds as f64)),
                ("replans", Json::Num(p.replans as f64)),
                ("faults", Json::Num(p.faults as f64)),
                ("stripes_lost", Json::Num(p.stripes_lost as f64)),
            ];
            if let Some(m) = &job.metrics {
                for (t, d) in merged.iter_mut().zip(&m.class_digests) {
                    t.merge(d);
                }
                fields.push(("hit_ratio", Json::Num(m.hit_ratio)));
                fields.push(("disk_reads", Json::Num(m.disk_reads as f64)));
            }
            Json::obj(fields)
        })
        .collect();
    drop(jobs);
    let classes: Vec<(&'static str, Json)> = RequestClass::ALL
        .iter()
        .map(|c| {
            let l = ClassLatency::from_histogram(&merged[c.index()]);
            (
                c.name(),
                Json::obj([
                    ("count", Json::Num(l.count as f64)),
                    ("p50_ms", Json::Num(l.p50_ms)),
                    ("p90_ms", Json::Num(l.p90_ms)),
                    ("p99_ms", Json::Num(l.p99_ms)),
                    ("p999_ms", Json::Num(l.p999_ms)),
                ]),
            )
        })
        .collect();
    let [queued, running, done, failed] = counts;
    ok_reply([
        ("uptime_s", Json::Num(ctx.started.elapsed().as_secs_f64())),
        ("workers", Json::Num(ctx.workers as f64)),
        (
            "workers_busy",
            Json::Num(running.min(ctx.workers as u64) as f64),
        ),
        ("queue_depth", Json::Num(queued as f64)),
        ("jobs_running", Json::Num(running as f64)),
        ("jobs_done", Json::Num(done as f64)),
        ("jobs_failed", Json::Num(failed as f64)),
        ("jobs", Json::Arr(job_list)),
        ("class_latency", Json::obj(classes)),
    ])
}

/// Snapshot the flight recorder and return its normalized JSONL inline
/// (the ring is bounded, so the dump always fits a frame).
fn cmd_dump() -> Json {
    if fbf_obs::ring::recorder().is_none() {
        return err_reply("no flight recorder installed");
    }
    let events = fbf_obs::ring::trigger_dump("client-dump");
    let Some((reason, lines)) = fbf_obs::ring::last_dump() else {
        return err_reply("flight recorder produced no dump");
    };
    ok_reply([
        ("reason", Json::Str(reason)),
        ("events", Json::Num(events as f64)),
        ("jsonl", Json::Str(lines.concat())),
    ])
}

/// FNV-1a over a chunk payload — the digest `read` replies carry.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Blocking protocol client for `fbfd` (used by `fbf client` and tests).
pub struct DaemonClient {
    stream: ClientStream,
    stop: AtomicBool,
}

impl DaemonClient {
    /// Connect to a daemon at `addr`.
    pub fn connect(addr: &ServerAddr) -> io::Result<Self> {
        let stream = match addr {
            ServerAddr::Unix(path) => ClientStream::Unix(UnixStream::connect(path)?),
            ServerAddr::Tcp(sock) => ClientStream::Tcp(TcpStream::connect(sock)?),
        };
        stream.set_nonblocking(false)?;
        Ok(DaemonClient {
            stream,
            stop: AtomicBool::new(false),
        })
    }

    /// Send one request and wait for its reply.
    pub fn call(&mut self, req: &Json) -> io::Result<Json> {
        write_frame(&mut self.stream, &req.render())?;
        self.recv()?
            .ok_or_else(|| io::Error::new(ErrorKind::UnexpectedEof, "daemon closed connection"))
    }

    /// Receive the next frame (used after `subscribe`). `Ok(None)` on a
    /// clean close.
    pub fn recv(&mut self) -> io::Result<Option<Json>> {
        match read_frame(&mut self.stream, &self.stop)? {
            Some(body) => Json::parse(&body)
                .map(Some)
                .map_err(|e| io::Error::new(ErrorKind::InvalidData, e.to_string())),
            None => Ok(None),
        }
    }

    /// Send without waiting (used for `shutdown` fire-and-forget paths).
    pub fn send(&mut self, req: &Json) -> io::Result<()> {
        write_frame(&mut self.stream, &req.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, r#"{"cmd":"ping"}"#).unwrap();
        assert_eq!(&buf[..4], &[0, 0, 0, 14]);
        let stop = AtomicBool::new(false);
        let mut cursor = io::Cursor::new(buf);
        let frame = read_frame(&mut cursor, &stop).unwrap().unwrap();
        assert_eq!(frame, r#"{"cmd":"ping"}"#);
        assert!(read_frame(&mut cursor, &stop).unwrap().is_none());
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        let stop = AtomicBool::new(false);
        assert!(read_frame(&mut io::Cursor::new(buf), &stop).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_hang() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        buf.truncate(6); // length says 5, only 2 payload bytes present
        let stop = AtomicBool::new(false);
        let err = read_frame(&mut io::Cursor::new(buf), &stop).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn config_overrides_apply_and_unknown_keys_fail() {
        let req = Json::parse(
            r#"{"cmd":"repair","config":{"policy":"lru","stripes":128,"errors":16,"chunk_kb":1}}"#,
        )
        .unwrap();
        let cfg = config_from_request(&req).unwrap();
        assert_eq!(cfg.stripes, 128);
        assert_eq!(cfg.error_count, 16);
        assert_eq!(cfg.chunk_kb, 1);
        let bad = Json::parse(r#"{"config":{"striipes":128}}"#).unwrap();
        assert!(config_from_request(&bad).is_err());
    }
}
