//! Parameter sweeps: run many experiment configurations in parallel and
//! collect labelled results.
//!
//! Each figure binary builds its grid of [`ExperimentConfig`]s and calls
//! [`sweep`]. Two things make grids cheap:
//!
//! * **Shared planning.** All points plan through one
//!   [`PlanStore`] — scheme generation runs once per distinct
//!   [`PlanKey`](crate::plan::PlanKey) (campaign shape), not once per
//!   point. A Fig. 8 grid replans ~45× less.
//! * **Work stealing.** Workers claim points one at a time off a shared
//!   atomic cursor, so an expensive point (big prime, huge campaign) never
//!   strands a statically-assigned chunk behind it. Results are keyed by
//!   index, and every experiment is deterministic given its config, so the
//!   output is identical to a serial run.
//!
//! Failures are *values*, not aborts: a failing point (bad prime,
//! unschedulable damage, even a worker panic) cancels the remaining queue
//! cooperatively and surfaces as `Err` from [`sweep`] — sibling points
//! already running complete normally and the process stays alive.

use crate::config::ExperimentConfig;
use crate::metrics::Metrics;
use crate::plan::{PlanSource, PlanStore};
use crate::runner::{run_planned_with_scratch, RunError};
use fbf_disksim::EngineScratch;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One labelled point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The configuration that produced it.
    pub config: ExperimentConfig,
    /// Its metrics.
    pub metrics: Metrics,
}

/// A progress report for one completed sweep point.
#[derive(Debug, Clone, Copy)]
pub struct SweepProgress<'a> {
    /// Index of the completed point in the input slice.
    pub index: usize,
    /// Points completed so far (including this one).
    pub completed: usize,
    /// Total points in the sweep.
    pub total: usize,
    /// The completed point's configuration.
    pub config: &'a ExperimentConfig,
    /// Whether the point planned cold or reused a shared campaign.
    pub plan: PlanSource,
}

/// Run every configuration, preserving order. `threads = 0` uses all
/// cores. Plans are shared through an internal [`PlanStore`].
pub fn sweep(configs: &[ExperimentConfig], threads: usize) -> Result<Vec<SweepPoint>, RunError> {
    let store = PlanStore::new();
    sweep_with_store(configs, threads, &store)
}

/// [`sweep`] against a caller-owned [`PlanStore`], so campaigns persist
/// across multiple sweeps (and hit/miss counts are observable).
pub fn sweep_with_store(
    configs: &[ExperimentConfig],
    threads: usize,
    store: &PlanStore,
) -> Result<Vec<SweepPoint>, RunError> {
    sweep_with_progress(configs, threads, store, |_| {})
}

/// The full sweep driver: shared plan store, work-stealing execution, and
/// a per-point progress callback (invoked from worker threads, in
/// completion order).
pub fn sweep_with_progress(
    configs: &[ExperimentConfig],
    threads: usize,
    store: &PlanStore,
    progress: impl Fn(SweepProgress<'_>) + Sync,
) -> Result<Vec<SweepPoint>, RunError> {
    let n = configs.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(n);

    // Sweep-level observability: emitted only when a subscriber is
    // installed AND at least one point opted in — a sweep of plain
    // configs stays silent even under an installed subscriber.
    let obs = fbf_obs::enabled() && configs.iter().any(|c| c.obs);
    let sweep_span = if obs {
        Some(fbf_obs::span("sweep", "run"))
    } else {
        None
    };
    let sweep_t0 = Instant::now();
    // Phase totals across all workers, nanoseconds (plan vs simulate
    // split per point; busy = both plus per-point bookkeeping).
    let plan_ns = AtomicU64::new(0);
    let sim_ns = AtomicU64::new(0);
    let busy_ns = AtomicU64::new(0);

    let cursor = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let results: Vec<Mutex<Option<Result<Metrics, RunError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    // One worker's life: steal the next index, run it, repeat. On any
    // failure, flip the cancellation flag so idle workers stop claiming;
    // in-flight siblings finish their current point untouched. Each worker
    // owns one EngineScratch for its whole life, so the engine's event
    // heap and per-worker vectors are allocated once per thread, not once
    // per point.
    let work = |worker: usize| {
        let mut scratch = EngineScratch::new();
        let mut worker_points = 0u64;
        let worker_t0 = Instant::now();
        let mut worker_busy_ns = 0u64;
        while !cancelled.load(Ordering::Relaxed) {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let cfg = &configs[i];
            let point_obs = obs && cfg.obs;
            // Each point is one externally-attributable unit of work: mint
            // it a trace so every span/counter it emits (plan, simulate,
            // engine run, decode batches) carries the point's ids and
            // check_trace.py --flows reassembles one tree per point. The
            // point span below is the tree's root.
            let trace_guard = point_obs.then(|| fbf_obs::with_trace(fbf_obs::next_trace_id()));
            let point_span = if point_obs {
                Some(fbf_obs::span("sweep", "point"))
            } else {
                None
            };
            let point_t0 = Instant::now();
            let mut point_plan_ns = 0u64;
            let mut point_sim_ns = 0u64;
            let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<_, RunError> {
                cfg.validate()?;
                let t = Instant::now();
                let (plan, source) = store.plan(cfg)?;
                point_plan_ns = t.elapsed().as_nanos() as u64;
                let t = Instant::now();
                let metrics = run_planned_with_scratch(cfg, &plan, source, &mut scratch);
                point_sim_ns = t.elapsed().as_nanos() as u64;
                Ok((metrics, source))
            }));
            let point_ns = point_t0.elapsed().as_nanos() as u64;
            worker_points += 1;
            worker_busy_ns += point_ns;
            if obs {
                plan_ns.fetch_add(point_plan_ns, Ordering::Relaxed);
                sim_ns.fetch_add(point_sim_ns, Ordering::Relaxed);
                busy_ns.fetch_add(point_ns, Ordering::Relaxed);
            }
            if let Some(span) = point_span {
                let source = match &outcome {
                    Ok(Ok((_, source))) => source.name(),
                    Ok(Err(_)) => "error",
                    Err(_) => "panic",
                };
                span.end_with(&[
                    ("index", fbf_obs::Value::U64(i as u64)),
                    ("policy", fbf_obs::Value::Str(cfg.policy.name())),
                    ("cache_mb", fbf_obs::Value::U64(cfg.cache_mb as u64)),
                    ("plan", fbf_obs::Value::Str(source)),
                    ("plan_ms", fbf_obs::Value::F64(point_plan_ns as f64 / 1e6)),
                    ("sim_ms", fbf_obs::Value::F64(point_sim_ns as f64 / 1e6)),
                ]);
            }
            drop(trace_guard);
            let result = match outcome {
                Ok(Ok((metrics, plan))) => {
                    let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                    progress(SweepProgress {
                        index: i,
                        completed: done,
                        total: n,
                        config: cfg,
                        plan,
                    });
                    Ok(metrics)
                }
                Ok(Err(e)) => {
                    cancelled.store(true, Ordering::Relaxed);
                    Err(e)
                }
                Err(panic) => {
                    cancelled.store(true, Ordering::Relaxed);
                    Err(RunError::Worker(panic_message(&panic)))
                }
            };
            *results[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(result);
        }
        if obs && worker_points > 0 {
            fbf_obs::instant(
                "sweep",
                "worker",
                &[
                    ("worker", fbf_obs::Value::U64(worker as u64)),
                    ("points", fbf_obs::Value::U64(worker_points)),
                    ("busy_ms", fbf_obs::Value::F64(worker_busy_ns as f64 / 1e6)),
                    (
                        "alive_ms",
                        fbf_obs::Value::F64(worker_t0.elapsed().as_secs_f64() * 1e3),
                    ),
                ],
            );
        }
    };

    if threads <= 1 {
        work(0);
    } else {
        std::thread::scope(|scope| {
            for t in 0..threads {
                scope.spawn(move || work(t));
            }
        });
    }

    // Assemble in input order (the gather phase). With cancellation some
    // points may never have run; the first recorded error (by index) is
    // the sweep's error.
    let gather_t0 = Instant::now();
    let mut out = Vec::with_capacity(n);
    let mut first_error = None;
    for (result, cfg) in results.into_iter().zip(configs) {
        match result.into_inner().unwrap_or_else(|p| p.into_inner()) {
            Some(Ok(metrics)) => out.push(SweepPoint {
                config: *cfg,
                metrics,
            }),
            Some(Err(e)) => {
                first_error.get_or_insert(e);
            }
            None => {}
        }
    }
    if obs {
        let wall_ms = sweep_t0.elapsed().as_secs_f64() * 1e3;
        let busy_ms = busy_ns.load(Ordering::Relaxed) as f64 / 1e6;
        // Utilization: fraction of the workers' combined wall-clock
        // budget spent running points.
        let util = if wall_ms > 0.0 {
            (busy_ms / (wall_ms * threads as f64)).min(1.0) * 100.0
        } else {
            0.0
        };
        let store_stats = store.stats();
        fbf_obs::counter(
            "sweep",
            "summary",
            &[
                ("points", fbf_obs::Value::U64(out.len() as u64)),
                ("threads", fbf_obs::Value::U64(threads as u64)),
                ("wall_ms", fbf_obs::Value::F64(wall_ms)),
                (
                    "plan_ms",
                    fbf_obs::Value::F64(plan_ns.load(Ordering::Relaxed) as f64 / 1e6),
                ),
                (
                    "sim_ms",
                    fbf_obs::Value::F64(sim_ns.load(Ordering::Relaxed) as f64 / 1e6),
                ),
                (
                    "gather_ms",
                    fbf_obs::Value::F64(gather_t0.elapsed().as_secs_f64() * 1e3),
                ),
                ("busy_ms", fbf_obs::Value::F64(busy_ms)),
                ("util_pct", fbf_obs::Value::F64(util)),
                ("plan_cold", fbf_obs::Value::U64(store_stats.misses)),
                ("plan_warm", fbf_obs::Value::U64(store_stats.hits)),
                // High-water across the sweep: a max over points, computed
                // here because CountingSubscriber *sums* across events —
                // per-point emission would corrupt the high-water on merge.
                (
                    "queue_depth_max",
                    fbf_obs::Value::U64(
                        out.iter()
                            .map(|p| p.metrics.queue_depth_max)
                            .max()
                            .unwrap_or(0),
                    ),
                ),
            ],
        );
        // Fault/escalation totals across the sweep, only when any point
        // actually injected faults — the common faultless sweep stays
        // counter-for-counter identical to before.
        let mut fault_totals = fbf_disksim::FaultCounters::default();
        let (mut replans, mut lost) = (0u64, 0u64);
        for p in &out {
            fault_totals.merge(&p.metrics.faults);
            replans += p.metrics.replans;
            lost += p.metrics.stripes_lost as u64;
        }
        if !fault_totals.is_empty() || lost > 0 {
            fbf_obs::counter(
                "sweep",
                "faults",
                &[
                    ("media", fbf_obs::Value::U64(fault_totals.media_errors)),
                    (
                        "transient",
                        fbf_obs::Value::U64(fault_totals.transient_faults),
                    ),
                    ("retries", fbf_obs::Value::U64(fault_totals.retries)),
                    (
                        "exhausted",
                        fbf_obs::Value::U64(fault_totals.retries_exhausted),
                    ),
                    (
                        "dead_disk",
                        fbf_obs::Value::U64(fault_totals.dead_disk_reads),
                    ),
                    ("replans", fbf_obs::Value::U64(replans)),
                    ("stripes_lost", fbf_obs::Value::U64(lost)),
                ],
            );
        }
        if let Some(span) = sweep_span {
            span.end_with(&[
                ("points", fbf_obs::Value::U64(out.len() as u64)),
                ("threads", fbf_obs::Value::U64(threads as u64)),
            ]);
        }
    }
    match first_error {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// The cache sizes (MiB) the paper sweeps in its figures.
pub const PAPER_CACHE_MB: [usize; 9] = [2, 8, 16, 32, 64, 128, 256, 512, 2048];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanStoreStats;
    use fbf_cache::PolicyKind;

    fn tiny(policy: PolicyKind, cache_mb: usize) -> ExperimentConfig {
        ExperimentConfig::builder()
            .policy(policy)
            .cache_mb(cache_mb)
            .stripes(128)
            .error_count(32)
            .workers(4)
            .gen_threads(1)
            .build()
            .unwrap()
    }

    #[test]
    fn sweep_preserves_order_and_runs_all() {
        let configs: Vec<ExperimentConfig> = [1, 4, 16]
            .into_iter()
            .map(|mb| tiny(PolicyKind::Lru, mb))
            .collect();
        let points = sweep(&configs, 2).unwrap();
        assert_eq!(points.len(), 3);
        for (p, c) in points.iter().zip(&configs) {
            assert_eq!(p.config.cache_mb, c.cache_mb);
        }
        // Hit ratio is monotone in cache size for this workload.
        assert!(points[0].metrics.hit_ratio <= points[2].metrics.hit_ratio);
    }

    #[test]
    fn parallel_equals_serial() {
        let configs: Vec<ExperimentConfig> =
            PolicyKind::ALL.into_iter().map(|p| tiny(p, 4)).collect();
        let serial = sweep(&configs, 1).unwrap();
        let parallel = sweep(&configs, 4).unwrap();
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.metrics.hit_ratio, b.metrics.hit_ratio);
            assert_eq!(a.metrics.disk_reads, b.metrics.disk_reads);
        }
    }

    #[test]
    fn empty_sweep() {
        assert!(sweep(&[], 4).unwrap().is_empty());
    }

    #[test]
    fn shared_store_plans_once_per_campaign() {
        // 5 policies × 3 cache sizes over one campaign shape = 15 points,
        // 1 plan.
        let configs: Vec<ExperimentConfig> = PolicyKind::ALL
            .into_iter()
            .flat_map(|p| [2, 4, 8].map(|mb| tiny(p, mb)))
            .collect();
        let store = PlanStore::new();
        let points = sweep_with_store(&configs, 4, &store).unwrap();
        assert_eq!(points.len(), 15);
        let stats = store.stats();
        assert_eq!(stats.misses, 1, "one campaign shape, one cold plan");
        assert_eq!(stats.hits, 14);
        // Exactly one point carries the cold provenance.
        let cold = points
            .iter()
            .filter(|p| p.metrics.plan_source == PlanSource::Cold)
            .count();
        assert_eq!(cold, 1);
    }

    #[test]
    fn failing_point_is_err_without_poisoning_siblings() {
        let mut bad = tiny(PolicyKind::Lru, 4);
        bad.p = 8; // not prime: must surface as Err, not a process abort
        let configs = vec![tiny(PolicyKind::Lru, 2), bad, tiny(PolicyKind::Fbf, 2)];
        let err = sweep(&configs, 2).unwrap_err();
        assert!(
            matches!(err, RunError::Config(_)),
            "expected config error, got: {err}"
        );
        // The good configs still run fine on their own afterwards.
        assert!(sweep(&[configs[0], configs[2]], 2).is_ok());
    }

    #[test]
    fn progress_reports_every_point() {
        let configs: Vec<ExperimentConfig> = [1, 2, 4, 8]
            .into_iter()
            .map(|mb| tiny(PolicyKind::Fbf, mb))
            .collect();
        let store = PlanStore::new();
        let seen = Mutex::new(Vec::new());
        let points = sweep_with_progress(&configs, 2, &store, |p| {
            assert_eq!(p.total, 4);
            seen.lock().unwrap().push(p.index);
        })
        .unwrap();
        assert_eq!(points.len(), 4);
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn store_reuse_across_sweeps_is_all_hits() {
        let configs: Vec<ExperimentConfig> = [2, 8]
            .into_iter()
            .map(|mb| tiny(PolicyKind::Lru, mb))
            .collect();
        let store = PlanStore::new();
        sweep_with_store(&configs, 2, &store).unwrap();
        sweep_with_store(&configs, 2, &store).unwrap();
        assert_eq!(store.stats(), PlanStoreStats { hits: 3, misses: 1 });
    }
}
