//! Parameter sweeps: run many experiment configurations, in parallel on
//! host threads, and collect labelled results.
//!
//! Each figure binary builds its grid of [`ExperimentConfig`]s and calls
//! [`sweep`]; configurations are independent, so they fan out over scoped
//! threads (one queue per core, work-stealing-free static partitioning —
//! configurations have similar cost, so static split is fine and keeps
//! results deterministic).

use crate::config::ExperimentConfig;
use crate::metrics::Metrics;
use crate::runner::{run_experiment, RunError};

/// One labelled point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The configuration that produced it.
    pub config: ExperimentConfig,
    /// Its metrics.
    pub metrics: Metrics,
}

/// Run every configuration, preserving order. `threads = 0` uses all
/// cores.
pub fn sweep(configs: &[ExperimentConfig], threads: usize) -> Result<Vec<SweepPoint>, RunError> {
    let n = configs.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        threads
    }
    .min(n);

    if threads <= 1 {
        return configs
            .iter()
            .map(|c| run_experiment(c).map(|m| SweepPoint { config: *c, metrics: m }))
            .collect();
    }

    let mut out: Vec<Option<Result<SweepPoint, RunError>>> = Vec::new();
    out.resize_with(n, || None);
    let chunk = n.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (slots, cfgs) in out.chunks_mut(chunk).zip(configs.chunks(chunk)) {
            scope.spawn(move |_| {
                for (slot, cfg) in slots.iter_mut().zip(cfgs) {
                    *slot = Some(
                        run_experiment(cfg).map(|m| SweepPoint { config: *cfg, metrics: m }),
                    );
                }
            });
        }
    })
    .expect("sweep worker panicked");

    out.into_iter().map(|s| s.expect("slot filled")).collect()
}

/// The cache sizes (MiB) the paper sweeps in its figures.
pub const PAPER_CACHE_MB: [usize; 9] = [2, 8, 16, 32, 64, 128, 256, 512, 2048];

#[cfg(test)]
mod tests {
    use super::*;
    use fbf_cache::PolicyKind;

    fn tiny(policy: PolicyKind, cache_mb: usize) -> ExperimentConfig {
        ExperimentConfig {
            policy,
            cache_mb,
            stripes: 128,
            error_count: 32,
            workers: 4,
            gen_threads: 1,
            ..Default::default()
        }
    }

    #[test]
    fn sweep_preserves_order_and_runs_all() {
        let configs: Vec<ExperimentConfig> = [1, 4, 16]
            .into_iter()
            .map(|mb| tiny(PolicyKind::Lru, mb))
            .collect();
        let points = sweep(&configs, 2).unwrap();
        assert_eq!(points.len(), 3);
        for (p, c) in points.iter().zip(&configs) {
            assert_eq!(p.config.cache_mb, c.cache_mb);
        }
        // Hit ratio is monotone in cache size for this workload.
        assert!(points[0].metrics.hit_ratio <= points[2].metrics.hit_ratio);
    }

    #[test]
    fn parallel_equals_serial() {
        let configs: Vec<ExperimentConfig> = PolicyKind::ALL
            .into_iter()
            .map(|p| tiny(p, 4))
            .collect();
        let serial = sweep(&configs, 1).unwrap();
        let parallel = sweep(&configs, 4).unwrap();
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.metrics.hit_ratio, b.metrics.hit_ratio);
            assert_eq!(a.metrics.disk_reads, b.metrics.disk_reads);
        }
    }

    #[test]
    fn empty_sweep() {
        assert!(sweep(&[], 4).unwrap().is_empty());
    }
}
