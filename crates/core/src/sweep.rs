//! Parameter sweeps: run many experiment configurations in parallel and
//! collect labelled results.
//!
//! Each figure binary builds its grid of [`ExperimentConfig`]s and calls
//! [`sweep`]. Two things make grids cheap:
//!
//! * **Shared planning.** All points plan through one
//!   [`PlanStore`] — scheme generation runs once per distinct
//!   [`PlanKey`](crate::plan::PlanKey) (campaign shape), not once per
//!   point. A Fig. 8 grid replans ~45× less.
//! * **Work stealing.** Workers claim points one at a time off a shared
//!   atomic cursor, so an expensive point (big prime, huge campaign) never
//!   strands a statically-assigned chunk behind it. Results are keyed by
//!   index, and every experiment is deterministic given its config, so the
//!   output is identical to a serial run.
//!
//! Failures are *values*, not aborts: a failing point (bad prime,
//! unschedulable damage, even a worker panic) cancels the remaining queue
//! cooperatively and surfaces as `Err` from [`sweep`] — sibling points
//! already running complete normally and the process stays alive.

use crate::config::ExperimentConfig;
use crate::metrics::Metrics;
use crate::plan::{PlanSource, PlanStore};
use crate::runner::{run_planned_with_scratch, RunError};
use fbf_disksim::EngineScratch;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One labelled point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The configuration that produced it.
    pub config: ExperimentConfig,
    /// Its metrics.
    pub metrics: Metrics,
}

/// A progress report for one completed sweep point.
#[derive(Debug, Clone, Copy)]
pub struct SweepProgress<'a> {
    /// Index of the completed point in the input slice.
    pub index: usize,
    /// Points completed so far (including this one).
    pub completed: usize,
    /// Total points in the sweep.
    pub total: usize,
    /// The completed point's configuration.
    pub config: &'a ExperimentConfig,
    /// Whether the point planned cold or reused a shared campaign.
    pub plan: PlanSource,
}

/// Run every configuration, preserving order. `threads = 0` uses all
/// cores. Plans are shared through an internal [`PlanStore`].
pub fn sweep(configs: &[ExperimentConfig], threads: usize) -> Result<Vec<SweepPoint>, RunError> {
    let store = PlanStore::new();
    sweep_with_store(configs, threads, &store)
}

/// [`sweep`] against a caller-owned [`PlanStore`], so campaigns persist
/// across multiple sweeps (and hit/miss counts are observable).
pub fn sweep_with_store(
    configs: &[ExperimentConfig],
    threads: usize,
    store: &PlanStore,
) -> Result<Vec<SweepPoint>, RunError> {
    sweep_with_progress(configs, threads, store, |_| {})
}

/// The full sweep driver: shared plan store, work-stealing execution, and
/// a per-point progress callback (invoked from worker threads, in
/// completion order).
pub fn sweep_with_progress(
    configs: &[ExperimentConfig],
    threads: usize,
    store: &PlanStore,
    progress: impl Fn(SweepProgress<'_>) + Sync,
) -> Result<Vec<SweepPoint>, RunError> {
    let n = configs.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(n);

    let cursor = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let results: Vec<Mutex<Option<Result<Metrics, RunError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    // One worker's life: steal the next index, run it, repeat. On any
    // failure, flip the cancellation flag so idle workers stop claiming;
    // in-flight siblings finish their current point untouched. Each worker
    // owns one EngineScratch for its whole life, so the engine's event
    // heap and per-worker vectors are allocated once per thread, not once
    // per point.
    let work = |_: usize| {
        let mut scratch = EngineScratch::default();
        while !cancelled.load(Ordering::Relaxed) {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let cfg = &configs[i];
            let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<_, RunError> {
                cfg.validate()?;
                let (plan, source) = store.plan(cfg)?;
                Ok((
                    run_planned_with_scratch(cfg, &plan, source, &mut scratch),
                    source,
                ))
            }));
            let result = match outcome {
                Ok(Ok((metrics, plan))) => {
                    let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                    progress(SweepProgress {
                        index: i,
                        completed: done,
                        total: n,
                        config: cfg,
                        plan,
                    });
                    Ok(metrics)
                }
                Ok(Err(e)) => {
                    cancelled.store(true, Ordering::Relaxed);
                    Err(e)
                }
                Err(panic) => {
                    cancelled.store(true, Ordering::Relaxed);
                    Err(RunError::Worker(panic_message(&panic)))
                }
            };
            *results[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(result);
        }
    };

    if threads <= 1 {
        work(0);
    } else {
        std::thread::scope(|scope| {
            for t in 0..threads {
                scope.spawn(move || work(t));
            }
        });
    }

    // Assemble in input order. With cancellation some points may never
    // have run; the first recorded error (by index) is the sweep's error.
    let mut out = Vec::with_capacity(n);
    let mut first_error = None;
    for (result, cfg) in results.into_iter().zip(configs) {
        match result.into_inner().unwrap_or_else(|p| p.into_inner()) {
            Some(Ok(metrics)) => out.push(SweepPoint {
                config: *cfg,
                metrics,
            }),
            Some(Err(e)) => {
                first_error.get_or_insert(e);
            }
            None => {}
        }
    }
    match first_error {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// The cache sizes (MiB) the paper sweeps in its figures.
pub const PAPER_CACHE_MB: [usize; 9] = [2, 8, 16, 32, 64, 128, 256, 512, 2048];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanStoreStats;
    use fbf_cache::PolicyKind;

    fn tiny(policy: PolicyKind, cache_mb: usize) -> ExperimentConfig {
        ExperimentConfig::builder()
            .policy(policy)
            .cache_mb(cache_mb)
            .stripes(128)
            .error_count(32)
            .workers(4)
            .gen_threads(1)
            .build()
            .unwrap()
    }

    #[test]
    fn sweep_preserves_order_and_runs_all() {
        let configs: Vec<ExperimentConfig> = [1, 4, 16]
            .into_iter()
            .map(|mb| tiny(PolicyKind::Lru, mb))
            .collect();
        let points = sweep(&configs, 2).unwrap();
        assert_eq!(points.len(), 3);
        for (p, c) in points.iter().zip(&configs) {
            assert_eq!(p.config.cache_mb, c.cache_mb);
        }
        // Hit ratio is monotone in cache size for this workload.
        assert!(points[0].metrics.hit_ratio <= points[2].metrics.hit_ratio);
    }

    #[test]
    fn parallel_equals_serial() {
        let configs: Vec<ExperimentConfig> =
            PolicyKind::ALL.into_iter().map(|p| tiny(p, 4)).collect();
        let serial = sweep(&configs, 1).unwrap();
        let parallel = sweep(&configs, 4).unwrap();
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.metrics.hit_ratio, b.metrics.hit_ratio);
            assert_eq!(a.metrics.disk_reads, b.metrics.disk_reads);
        }
    }

    #[test]
    fn empty_sweep() {
        assert!(sweep(&[], 4).unwrap().is_empty());
    }

    #[test]
    fn shared_store_plans_once_per_campaign() {
        // 5 policies × 3 cache sizes over one campaign shape = 15 points,
        // 1 plan.
        let configs: Vec<ExperimentConfig> = PolicyKind::ALL
            .into_iter()
            .flat_map(|p| [2, 4, 8].map(|mb| tiny(p, mb)))
            .collect();
        let store = PlanStore::new();
        let points = sweep_with_store(&configs, 4, &store).unwrap();
        assert_eq!(points.len(), 15);
        let stats = store.stats();
        assert_eq!(stats.misses, 1, "one campaign shape, one cold plan");
        assert_eq!(stats.hits, 14);
        // Exactly one point carries the cold provenance.
        let cold = points
            .iter()
            .filter(|p| p.metrics.plan_source == PlanSource::Cold)
            .count();
        assert_eq!(cold, 1);
    }

    #[test]
    fn failing_point_is_err_without_poisoning_siblings() {
        let mut bad = tiny(PolicyKind::Lru, 4);
        bad.p = 8; // not prime: must surface as Err, not a process abort
        let configs = vec![tiny(PolicyKind::Lru, 2), bad, tiny(PolicyKind::Fbf, 2)];
        let err = sweep(&configs, 2).unwrap_err();
        assert!(
            matches!(err, RunError::Config(_)),
            "expected config error, got: {err}"
        );
        // The good configs still run fine on their own afterwards.
        assert!(sweep(&[configs[0], configs[2]], 2).is_ok());
    }

    #[test]
    fn progress_reports_every_point() {
        let configs: Vec<ExperimentConfig> = [1, 2, 4, 8]
            .into_iter()
            .map(|mb| tiny(PolicyKind::Fbf, mb))
            .collect();
        let store = PlanStore::new();
        let seen = Mutex::new(Vec::new());
        let points = sweep_with_progress(&configs, 2, &store, |p| {
            assert_eq!(p.total, 4);
            seen.lock().unwrap().push(p.index);
        })
        .unwrap();
        assert_eq!(points.len(), 4);
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn store_reuse_across_sweeps_is_all_hits() {
        let configs: Vec<ExperimentConfig> = [2, 8]
            .into_iter()
            .map(|mb| tiny(PolicyKind::Lru, mb))
            .collect();
        let store = PlanStore::new();
        sweep_with_store(&configs, 2, &store).unwrap();
        sweep_with_store(&configs, 2, &store).unwrap();
        assert_eq!(store.stats(), PlanStoreStats { hits: 3, misses: 1 });
    }
}
