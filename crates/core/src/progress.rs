//! Live per-job progress counters for daemon introspection.
//!
//! A [`Progress`] is shared between the worker executing a job and the
//! daemon's `stat` command: the execution paths store into it at round
//! boundaries (cheap, lock-free), and `stat`/`top` snapshot it at any
//! moment without touching the job's result slot. Metrics stay the
//! source of truth for *finished* work; this struct only answers "what
//! is that running repair doing right now".

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters one in-flight job publishes while running.
#[derive(Debug, Default)]
pub struct Progress {
    /// Escalation rounds completed so far (0 while round 0 runs).
    rounds: AtomicU64,
    /// Stripe re-plans issued so far.
    replans: AtomicU64,
    /// Hard read failures absorbed so far.
    faults: AtomicU64,
    /// Stripes declared lost so far.
    stripes_lost: AtomicU64,
}

/// A coherent-enough copy of a [`Progress`] at one instant (fields are
/// read independently; a snapshot taken mid-update may mix rounds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Escalation rounds completed.
    pub rounds: u64,
    /// Stripe re-plans issued.
    pub replans: u64,
    /// Hard read failures absorbed.
    pub faults: u64,
    /// Stripes declared lost.
    pub stripes_lost: u64,
}

impl Progress {
    /// A zeroed progress block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish the state after an escalation round (or the initial pass).
    pub fn record(&self, rounds: u64, replans: u64, faults: u64, stripes_lost: u64) {
        self.rounds.store(rounds, Ordering::Relaxed);
        self.replans.store(replans, Ordering::Relaxed);
        self.faults.store(faults, Ordering::Relaxed);
        self.stripes_lost.store(stripes_lost, Ordering::Relaxed);
    }

    /// Read the current counters.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            rounds: self.rounds.load(Ordering::Relaxed),
            replans: self.replans.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            stripes_lost: self.stripes_lost.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_then_snapshot_round_trips() {
        let p = Progress::new();
        assert_eq!(p.snapshot(), ProgressSnapshot::default());
        p.record(2, 5, 9, 1);
        let s = p.snapshot();
        assert_eq!(
            (s.rounds, s.replans, s.faults, s.stripes_lost),
            (2, 5, 9, 1)
        );
        p.record(3, 5, 9, 1);
        assert_eq!(p.snapshot().rounds, 3, "stores overwrite, not add");
    }
}
