//! Reliability analysis: MTTDL and the window of vulnerability.
//!
//! The paper's motivation chain is: partial stripe errors → longer
//! effective reconstruction → wider *window of vulnerability* (WOV) →
//! lower mean time to data loss (MTTDL). FBF shortens reconstruction,
//! which narrows the WOV; this module quantifies by how much that moves
//! MTTDL.
//!
//! The model is the standard absorbing birth–death Markov chain for an
//! `n`-disk array tolerating `k` concurrent failures: state `i` means `i`
//! failed disks, failure rate `(n - i)·λ` out of state `i`, repair rate
//! `μ` back towards state `i - 1`, absorption (data loss) at state
//! `k + 1`. The expected time to absorption from state 0 is computed
//! exactly by solving the linear system of mean first-passage times — no
//! asymptotic shortcuts — with a tiny dense Gaussian elimination.

use serde::{Deserialize, Serialize};

/// Inputs of the MTTDL model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ReliabilityParams {
    /// Number of disks in the array.
    pub disks: usize,
    /// Faults tolerated concurrently (3 for 3DFTs).
    pub fault_tolerance: usize,
    /// Mean time to failure of one disk, hours.
    pub disk_mttf_hours: f64,
    /// Mean time to repair one failure, hours — the WOV. Reconstruction
    /// acceleration acts here.
    pub mttr_hours: f64,
}

impl ReliabilityParams {
    /// A 3DFT array of nearline disks (1.2M-hour MTTF, 10-hour rebuild).
    pub fn nearline_3dft(disks: usize) -> Self {
        ReliabilityParams {
            disks,
            fault_tolerance: 3,
            disk_mttf_hours: 1_200_000.0,
            mttr_hours: 10.0,
        }
    }
}

/// Mean time to data loss in hours, exact for the birth–death model.
pub fn mttdl_hours(p: &ReliabilityParams) -> f64 {
    assert!(p.fault_tolerance >= 1);
    assert!(
        p.disks > p.fault_tolerance,
        "array smaller than its fault tolerance"
    );
    assert!(p.disk_mttf_hours > 0.0 && p.mttr_hours > 0.0);

    let k = p.fault_tolerance;
    let lambda = 1.0 / p.disk_mttf_hours;
    let mu = 1.0 / p.mttr_hours;

    // Transient states 0..=k; absorbing state k+1.
    // T_i = expected time to absorption from state i:
    //   (f_i + r_i) T_i = 1 + f_i T_{i+1} + r_i T_{i-1}
    // with f_i = (n - i) λ, r_i = μ for i >= 1 (single repair crew; the
    // repair of the most recent failure restores state i-1), r_0 = 0,
    // T_{k+1} = 0.
    let n = p.disks as f64;
    let dim = k + 1;
    let mut a = vec![vec![0.0f64; dim]; dim];
    let mut b = vec![0.0f64; dim];
    for i in 0..dim {
        let f = (n - i as f64) * lambda;
        let r = if i == 0 { 0.0 } else { mu };
        a[i][i] = f + r;
        if i + 1 < dim {
            a[i][i + 1] = -f;
        }
        if i >= 1 {
            a[i][i - 1] = -r;
        }
        b[i] = 1.0;
    }
    solve_dense(&mut a, &mut b);
    b[0]
}

/// In-place Gaussian elimination with partial pivoting; `b` becomes the
/// solution.
#[allow(clippy::needless_range_loop)] // indices address `a` and `b` together
fn solve_dense(a: &mut [Vec<f64>], b: &mut [f64]) {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let pv = a[col][col];
        assert!(pv.abs() > 0.0, "singular reliability system");
        for row in 0..n {
            if row != col && a[row][col] != 0.0 {
                let factor = a[row][col] / pv;
                for c2 in col..n {
                    let v = a[col][c2];
                    a[row][c2] -= factor * v;
                }
                b[row] -= factor * b[col];
            }
        }
    }
    for i in 0..n {
        b[i] /= a[i][i];
    }
}

/// MTTDL in years (the customary reporting unit).
pub fn mttdl_years(p: &ReliabilityParams) -> f64 {
    mttdl_hours(p) / (24.0 * 365.25)
}

/// How much an accelerated reconstruction moves MTTDL: scale the repair
/// window by `recon_fast / recon_slow` (e.g. FBF's vs LRU's reconstruction
/// time from Fig. 11) and return `MTTDL_fast / MTTDL_slow`.
pub fn mttdl_gain(base: &ReliabilityParams, recon_fast_s: f64, recon_slow_s: f64) -> f64 {
    assert!(recon_fast_s > 0.0 && recon_slow_s > 0.0);
    let slow = mttdl_hours(base);
    let fast = mttdl_hours(&ReliabilityParams {
        mttr_hours: base.mttr_hours * recon_fast_s / recon_slow_s,
        ..*base
    });
    fast / slow
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mttdl_positive_and_astronomical_for_3dft() {
        let p = ReliabilityParams::nearline_3dft(8);
        let years = mttdl_years(&p);
        // 3DFT with 10-hour rebuilds: MTTDL far beyond any disk lifetime.
        assert!(years > 1e9, "got {years} years");
    }

    #[test]
    fn more_disks_lower_mttdl() {
        let small = mttdl_hours(&ReliabilityParams::nearline_3dft(6));
        let large = mttdl_hours(&ReliabilityParams::nearline_3dft(24));
        assert!(large < small);
    }

    #[test]
    fn shorter_repair_raises_mttdl() {
        let slow = ReliabilityParams {
            mttr_hours: 20.0,
            ..ReliabilityParams::nearline_3dft(8)
        };
        let fast = ReliabilityParams {
            mttr_hours: 5.0,
            ..ReliabilityParams::nearline_3dft(8)
        };
        assert!(mttdl_hours(&fast) > mttdl_hours(&slow));
    }

    #[test]
    fn higher_fault_tolerance_raises_mttdl() {
        let raid5 = ReliabilityParams {
            fault_tolerance: 1,
            ..ReliabilityParams::nearline_3dft(8)
        };
        let raid6 = ReliabilityParams {
            fault_tolerance: 2,
            ..ReliabilityParams::nearline_3dft(8)
        };
        let threedft = ReliabilityParams::nearline_3dft(8);
        let (m1, m2, m3) = (
            mttdl_hours(&raid5),
            mttdl_hours(&raid6),
            mttdl_hours(&threedft),
        );
        assert!(m1 < m2 && m2 < m3, "{m1} {m2} {m3}");
    }

    #[test]
    fn mttdl_matches_asymptotic_formula_within_factor() {
        // For μ >> λ the chain's MTTDL approaches
        // μ^k / (λ^{k+1} · Π_{i=0..k} (n - i)).
        let p = ReliabilityParams::nearline_3dft(8);
        let lambda = 1.0 / p.disk_mttf_hours;
        let mu = 1.0 / p.mttr_hours;
        let n = p.disks as f64;
        let approx = mu.powi(3) / (lambda.powi(4) * n * (n - 1.0) * (n - 2.0) * (n - 3.0));
        let exact = mttdl_hours(&p);
        let ratio = exact / approx;
        assert!(
            (0.5..2.0).contains(&ratio),
            "exact {exact:.3e} vs approx {approx:.3e}"
        );
    }

    #[test]
    fn gain_scales_superlinearly_with_wov() {
        let base = ReliabilityParams::nearline_3dft(10);
        // A 15% reconstruction speedup (the paper's Fig. 11 best case) —
        // MTTDL grows by ~(1/0.85)^3 ≈ 1.63 for a 3DFT.
        let gain = mttdl_gain(&base, 0.85, 1.0);
        assert!(gain > 1.5 && gain < 1.8, "gain {gain}");
        // No speedup, no gain.
        let flat = mttdl_gain(&base, 1.0, 1.0);
        assert!((flat - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "smaller than its fault tolerance")]
    fn degenerate_array_rejected() {
        mttdl_hours(&ReliabilityParams {
            disks: 3,
            ..ReliabilityParams::nearline_3dft(8)
        });
    }
}
