//! Plain-text table rendering for the figure/table binaries.
//!
//! The binaries print the same rows/series the paper's figures plot —
//! a [`Table`] renders them aligned for the terminal and as CSV for
//! downstream plotting.

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// No rows yet?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render column-aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with fixed precision, for table cells.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Relative improvement of `ours` over `theirs` in percent
/// (positive = ours better when lower is better).
pub fn improvement_pct_lower_better(ours: f64, theirs: f64) -> f64 {
    if theirs == 0.0 {
        0.0
    } else {
        100.0 * (theirs - ours) / theirs
    }
}

/// Relative improvement when higher is better (e.g. hit ratio), percent.
pub fn improvement_pct_higher_better(ours: f64, theirs: f64) -> f64 {
    if theirs == 0.0 {
        0.0
    } else {
        100.0 * (ours - theirs) / theirs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
        assert_eq!(
            lines[3].len(),
            lines[4].len(),
            "aligned rows have equal width"
        );
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn improvement_math() {
        assert!((improvement_pct_lower_better(80.0, 100.0) - 20.0).abs() < 1e-12);
        assert!((improvement_pct_higher_better(0.3, 0.2) - 50.0).abs() < 1e-9);
        assert_eq!(improvement_pct_lower_better(1.0, 0.0), 0.0);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 3), "1.235");
        assert_eq!(f(2.0, 1), "2.0");
    }
}
