//! Campaign verification: the simulated reconstruction, re-executed on
//! real bytes.
//!
//! The simulator moves chunk *identities*; this module closes the loop by
//! replaying the exact same campaign (same seed, same schemes) against
//! per-stripe payload buffers and checking every recovered chunk
//! bit-for-bit against the original. Run it after a sweep to certify that
//! the timing results describe a reconstruction that actually produces
//! correct data.

use crate::config::ExperimentConfig;
use crate::faulted::execute_faulted;
use crate::plan::PlannedCampaign;
use crate::runner::RunError;
use fbf_codes::encode::encode;
use fbf_codes::{Stripe, StripeCode};
use fbf_disksim::EngineScratch;
use fbf_recovery::{apply_scheme, generate_schemes_parallel, StripePlan};
use fbf_workload::{generate_errors, ErrorGenConfig};
use serde::{Deserialize, Serialize};

/// Outcome of a verified campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifyReport {
    /// Stripes repaired and verified.
    pub stripes: usize,
    /// Chunks recovered and compared.
    pub chunks: usize,
    /// Bytes compared (chunks × chunk size).
    pub bytes: u64,
}

/// Replay `cfg`'s campaign on real payloads and verify every recovered
/// byte. Uses a small (1 KiB) payload per chunk — the XOR algebra is
/// size-independent, so this verifies the schemes, not the disk model.
pub fn verify_campaign(cfg: &ExperimentConfig) -> Result<VerifyReport, RunError> {
    let code = StripeCode::build(cfg.code, cfg.p)?;
    let errors = generate_errors(
        &code,
        &ErrorGenConfig::paper_default(cfg.stripes, cfg.error_count, cfg.seed),
    );
    let schemes = generate_schemes_parallel(&code, &errors, cfg.scheme, cfg.gen_threads)?;

    let chunk_size = 1024;
    let mut report = VerifyReport {
        stripes: 0,
        chunks: 0,
        bytes: 0,
    };
    for (damage, scheme) in errors.damage_by_stripe().iter().zip(&schemes) {
        assert_eq!(
            damage.stripe, scheme.stripe,
            "scheme order matches damage order"
        );
        let mut pristine =
            Stripe::patterned_seeded(code.layout(), chunk_size, damage.stripe as u64);
        encode(&code, &mut pristine).map_err(RunError::Code)?;
        let mut damaged = pristine.clone();
        for &cell in &damage.cells {
            damaged.erase(code.layout(), cell);
        }
        apply_scheme(&code, &mut damaged, scheme).map_err(RunError::Code)?;
        for &cell in &damage.cells {
            assert_eq!(
                damaged.get(code.layout(), cell),
                pristine.get(code.layout(), cell),
                "stripe {} cell {cell}: reconstruction produced wrong bytes",
                damage.stripe
            );
            report.chunks += 1;
            report.bytes += chunk_size as u64;
        }
        report.stripes += 1;
    }
    Ok(report)
}

/// Outcome of a verified *faulted* campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultedVerifyReport {
    /// Surviving stripes repaired and verified byte-for-byte.
    pub stripes: usize,
    /// Chunks recovered and compared (original + escalated damage).
    pub chunks: usize,
    /// Bytes compared.
    pub bytes: u64,
    /// Stripes correctly declared unrecoverable (damage past the code's
    /// fault tolerance) — excluded from the byte comparison.
    pub lost: usize,
}

/// Replay `cfg`'s campaign *with its fault plan* and verify that every
/// stripe the escalation driver reports as repaired decodes bit-for-bit.
///
/// Re-runs the multi-round execution to learn each stripe's final damage
/// and final plan, then checks on real payloads that the final plan
/// recovers the full accumulated damage — proving the re-planned repairs
/// are as sound as the originals. Lost stripes are checked to genuinely
/// exceed the code's fault tolerance.
pub fn verify_campaign_faulted(cfg: &ExperimentConfig) -> Result<FaultedVerifyReport, RunError> {
    cfg.validate()?;
    let code = StripeCode::build(cfg.code, cfg.p)?;
    let plan = PlannedCampaign::cold(cfg)?;
    let outcome = execute_faulted(cfg, &plan, &mut EngineScratch::new());

    let chunk_size = 1024;
    let mut report = FaultedVerifyReport {
        stripes: 0,
        chunks: 0,
        bytes: 0,
        lost: 0,
    };
    for damage in &outcome.surviving_damage {
        let final_plan = outcome
            .final_plans
            .get(&damage.stripe)
            .expect("surviving stripe has a final plan");
        let mut pristine =
            Stripe::patterned_seeded(code.layout(), chunk_size, damage.stripe as u64);
        encode(&code, &mut pristine).map_err(RunError::Code)?;
        let mut damaged = pristine.clone();
        for &cell in &damage.cells {
            damaged.erase(code.layout(), cell);
        }
        match final_plan {
            StripePlan::Chained(s) => {
                apply_scheme(&code, &mut damaged, s).map_err(RunError::Code)?
            }
            StripePlan::Joint(j) => j.apply(&code, &mut damaged).map_err(RunError::Code)?,
        }
        for &cell in &damage.cells {
            assert_eq!(
                damaged.get(code.layout(), cell),
                pristine.get(code.layout(), cell),
                "stripe {} cell {cell}: faulted reconstruction produced wrong bytes",
                damage.stripe
            );
            report.chunks += 1;
            report.bytes += chunk_size as u64;
        }
        report.stripes += 1;
    }
    let tolerance = code.spec().fault_tolerance();
    for loss in &outcome.data_loss {
        assert!(
            loss.columns > tolerance,
            "stripe {} declared lost at {} columns within tolerance {}",
            loss.stripe,
            loss.columns,
            tolerance
        );
        report.lost += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbf_codes::CodeSpec;
    use fbf_disksim::{DiskKill, FaultPlan, RetryPolicy, SimTime};

    #[test]
    fn verifies_a_default_campaign() {
        let cfg = ExperimentConfig::builder()
            .stripes(128)
            .error_count(48)
            .gen_threads(1)
            .build()
            .unwrap();
        let report = verify_campaign(&cfg).unwrap();
        assert_eq!(report.stripes, 48);
        assert!(report.chunks >= 48);
        assert_eq!(report.bytes, report.chunks as u64 * 1024);
    }

    #[test]
    fn verifies_every_code() {
        for spec in CodeSpec::ALL {
            let cfg = ExperimentConfig::builder()
                .code(spec)
                .p(7)
                .stripes(64)
                .error_count(24)
                .gen_threads(1)
                .build()
                .unwrap();
            let report = verify_campaign(&cfg).unwrap();
            assert_eq!(report.stripes, 24, "{spec:?}");
        }
    }

    fn faulted_cfg(media: u16, kill: Option<u32>) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::builder()
            .stripes(128)
            .error_count(48)
            .workers(8)
            .gen_threads(1)
            .build()
            .unwrap();
        cfg.faults = FaultPlan {
            seed: 7,
            media_per_mille: media,
            retry: RetryPolicy::default(),
            disk_kill: kill.map(|disk| DiskKill {
                disk,
                at: SimTime::from_millis(30),
            }),
            ..FaultPlan::none()
        };
        cfg
    }

    #[test]
    fn verifies_a_media_faulted_campaign() {
        let report = verify_campaign_faulted(&faulted_cfg(30, None)).unwrap();
        assert_eq!(report.stripes + report.lost, 48);
        assert!(report.stripes > 0, "most stripes survive 30‰");
        assert_eq!(report.bytes, report.chunks as u64 * 1024);
    }

    #[test]
    fn verifies_through_a_disk_kill() {
        let report = verify_campaign_faulted(&faulted_cfg(20, Some(4))).unwrap();
        assert_eq!(report.stripes + report.lost, 48);
    }

    #[test]
    fn faultless_plan_matches_plain_verify() {
        let mut cfg = faulted_cfg(0, None);
        cfg.faults = FaultPlan::none();
        let plain = verify_campaign(&cfg).unwrap();
        let faulted = verify_campaign_faulted(&cfg).unwrap();
        assert_eq!(faulted.stripes, plain.stripes);
        assert_eq!(faulted.chunks, plain.chunks);
        assert_eq!(faulted.lost, 0);
    }
}
