//! Campaign verification: the simulated reconstruction, re-executed on
//! real bytes.
//!
//! The simulator moves chunk *identities*; this module closes the loop by
//! replaying the exact same campaign (same seed, same schemes) against
//! per-stripe payload buffers and checking every recovered chunk
//! bit-for-bit against the original. Run it after a sweep to certify that
//! the timing results describe a reconstruction that actually produces
//! correct data.

use crate::config::ExperimentConfig;
use crate::runner::RunError;
use fbf_codes::encode::encode;
use fbf_codes::{Stripe, StripeCode};
use fbf_recovery::{apply_scheme, generate_schemes_parallel};
use fbf_workload::{generate_errors, ErrorGenConfig};
use serde::{Deserialize, Serialize};

/// Outcome of a verified campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifyReport {
    /// Stripes repaired and verified.
    pub stripes: usize,
    /// Chunks recovered and compared.
    pub chunks: usize,
    /// Bytes compared (chunks × chunk size).
    pub bytes: u64,
}

/// Replay `cfg`'s campaign on real payloads and verify every recovered
/// byte. Uses a small (1 KiB) payload per chunk — the XOR algebra is
/// size-independent, so this verifies the schemes, not the disk model.
pub fn verify_campaign(cfg: &ExperimentConfig) -> Result<VerifyReport, RunError> {
    let code = StripeCode::build(cfg.code, cfg.p)?;
    let errors = generate_errors(
        &code,
        &ErrorGenConfig::paper_default(cfg.stripes, cfg.error_count, cfg.seed),
    );
    let schemes = generate_schemes_parallel(&code, &errors, cfg.scheme, cfg.gen_threads)?;

    let chunk_size = 1024;
    let mut report = VerifyReport {
        stripes: 0,
        chunks: 0,
        bytes: 0,
    };
    for (damage, scheme) in errors.damage_by_stripe().iter().zip(&schemes) {
        assert_eq!(
            damage.stripe, scheme.stripe,
            "scheme order matches damage order"
        );
        let mut pristine =
            Stripe::patterned_seeded(code.layout(), chunk_size, damage.stripe as u64);
        encode(&code, &mut pristine).map_err(RunError::Code)?;
        let mut damaged = pristine.clone();
        for &cell in &damage.cells {
            damaged.erase(code.layout(), cell);
        }
        apply_scheme(&code, &mut damaged, scheme).map_err(RunError::Code)?;
        for &cell in &damage.cells {
            assert_eq!(
                damaged.get(code.layout(), cell),
                pristine.get(code.layout(), cell),
                "stripe {} cell {cell}: reconstruction produced wrong bytes",
                damage.stripe
            );
            report.chunks += 1;
            report.bytes += chunk_size as u64;
        }
        report.stripes += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbf_codes::CodeSpec;

    #[test]
    fn verifies_a_default_campaign() {
        let cfg = ExperimentConfig::builder()
            .stripes(128)
            .error_count(48)
            .gen_threads(1)
            .build()
            .unwrap();
        let report = verify_campaign(&cfg).unwrap();
        assert_eq!(report.stripes, 48);
        assert!(report.chunks >= 48);
        assert_eq!(report.bytes, report.chunks as u64 * 1024);
    }

    #[test]
    fn verifies_every_code() {
        for spec in CodeSpec::ALL {
            let cfg = ExperimentConfig::builder()
                .code(spec)
                .p(7)
                .stripes(64)
                .error_count(24)
                .gen_threads(1)
                .build()
                .unwrap();
            let report = verify_campaign(&cfg).unwrap();
            assert_eq!(report.stripes, 24, "{spec:?}");
        }
    }
}
