//! Property tests for the replacement policies.

use fbf_cache::{key, FbfPolicy, Key, PolicyKind, ReplacementPolicy};
use proptest::prelude::*;

/// A random access trace: (stripe, row, col, priority) tuples.
fn trace_strategy(len: usize) -> impl Strategy<Value = Vec<(u32, usize, usize, u8)>> {
    proptest::collection::vec((0u32..6, 0usize..6, 0usize..8, 1u8..4), 1..len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Universal policy invariants under arbitrary traces.
    #[test]
    fn policy_invariants(
        kind_idx in 0usize..10,
        capacity in 0usize..32,
        ops in trace_strategy(300),
    ) {
        let kind = PolicyKind::EXTENDED[kind_idx];
        let mut policy = kind.build(capacity);
        let mut resident: std::collections::HashSet<Key> = std::collections::HashSet::new();
        for (s, r, c, prio) in ops {
            let k = key(s, r, c);
            let hit = policy.on_access(k);
            prop_assert_eq!(hit, resident.contains(&k), "{}: shadow set diverged", kind);
            if !hit {
                if let Some(victim) = policy.on_insert(k, prio).evicted() {
                    prop_assert!(resident.remove(&victim), "{}: evicted non-resident", kind);
                    prop_assert!(!policy.contains(&victim));
                }
                if capacity > 0 {
                    resident.insert(k);
                    prop_assert!(policy.contains(&k));
                }
            }
            prop_assert_eq!(policy.len(), resident.len(), "{}", kind);
            prop_assert!(policy.len() <= capacity);
        }
    }

    /// Capacity-0 adversarial sequence: every policy must survive any
    /// interleaving of access/insert/contains/clear without panicking,
    /// miss on every access, reject every insert, and stay empty.
    #[test]
    fn zero_capacity_never_panics_never_admits(
        kind_idx in 0usize..10,
        ops in proptest::collection::vec((0u8..4, 0u32..8, 0usize..8, 0usize..8, 0u8..4), 1..400),
    ) {
        let kind = PolicyKind::EXTENDED[kind_idx];
        let mut policy = kind.build(0);
        for (op, s, r, c, prio) in ops {
            let k = key(s, r, c);
            match op {
                0 => prop_assert!(!policy.on_access(k), "{}: hit in empty cache", kind),
                1 => {
                    let out = policy.on_insert(k, prio.max(1));
                    prop_assert_eq!(out, fbf_cache::InsertOutcome::Rejected, "{}", kind);
                }
                2 => prop_assert!(!policy.contains(&k), "{}", kind),
                _ => policy.clear(),
            }
            prop_assert_eq!(policy.len(), 0, "{}: residency crept in", kind);
            prop_assert!(policy.is_empty());
        }
    }

    /// FBF-specific invariant: no chunk in Queue2/Queue3 is ever evicted
    /// while Queue1 is non-empty.
    #[test]
    fn fbf_eviction_order(capacity in 1usize..16, ops in trace_strategy(300)) {
        let mut fbf = FbfPolicy::new(capacity);
        for (s, r, c, prio) in ops {
            let k = key(s, r, c);
            if !fbf.on_access(k) {
                let q1_before = fbf.queue_len(1);
                if let Some(victim) = fbf.on_insert(k, prio).evicted() {
                    if q1_before > 0 {
                        // The victim must have come from Queue1: Queue1
                        // shrank (or the victim itself was its only entry
                        // and the new key refilled it).
                        prop_assert!(
                            fbf.level(&victim).is_none(),
                            "victim still resident"
                        );
                    }
                }
            }
            // Level bookkeeping is consistent with queue contents.
            let total = fbf.queue_len(1) + fbf.queue_len(2) + fbf.queue_len(3);
            prop_assert_eq!(total, fbf.len());
        }
    }

    /// FBF demotion: a resident chunk's level never *increases* on access.
    #[test]
    fn fbf_demotion_is_monotone(ops in trace_strategy(200)) {
        let mut fbf = FbfPolicy::new(64);
        for (s, r, c, prio) in ops {
            let k = key(s, r, c);
            let before = fbf.level(&k);
            if !fbf.on_access(k) {
                fbf.on_insert(k, prio);
            } else if let (Some(b), Some(a)) = (before, fbf.level(&k)) {
                prop_assert!(a <= b, "level rose from {b} to {a} on a hit");
            }
        }
    }

    /// Determinism: identical traces produce identical resident sets for
    /// every policy.
    #[test]
    fn policies_deterministic(kind_idx in 0usize..10, ops in trace_strategy(200)) {
        let kind = PolicyKind::EXTENDED[kind_idx];
        let run = |ops: &[(u32, usize, usize, u8)]| -> Vec<Key> {
            let mut p = kind.build(8);
            let mut evictions = Vec::new();
            for &(s, r, c, prio) in ops {
                let k = key(s, r, c);
                if !p.on_access(k) {
                    if let Some(v) = p.on_insert(k, prio).evicted() {
                        evictions.push(v);
                    }
                }
            }
            evictions
        };
        prop_assert_eq!(run(&ops), run(&ops), "{}", kind);
    }
}
