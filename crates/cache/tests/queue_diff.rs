//! Differential property test: the slab-backed [`OrderedQueue`] must be
//! observationally identical to the retained map-backed implementation
//! ([`oracle::MapQueue`]) under arbitrary operation sequences.
//!
//! This is the equivalence proof for the PR-3 queue rewrite: the oracle is
//! the exact pre-rewrite code (BTreeMap sequence index + std HashMap), so
//! any divergence in results, order, or return values is a bug in the slab
//! implementation — not a test flake. Clear/free-list reuse is exercised
//! explicitly because slot recycling is the slab's only stateful machinery
//! the oracle doesn't have.

use fbf_cache::queue::{oracle::MapQueue, OrderedQueue};
use fbf_cache::{key, Key};
use proptest::prelude::*;

/// One queue operation; keys are drawn from a small universe so that
/// duplicates, removals of absent keys, and touch-of-front/back all occur
/// with high probability. Pushes and touches are listed twice to bias the
/// mix toward them (the vendored `prop_oneof!` picks arms uniformly).
#[derive(Debug, Clone, Copy)]
enum Op {
    PushBack(u8),
    PushFront(u8),
    PopFront,
    Remove(u8),
    Touch(u8),
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..24).prop_map(Op::PushBack),
        (0u8..24).prop_map(Op::PushBack),
        (0u8..24).prop_map(Op::PushFront),
        Just(Op::PopFront),
        (0u8..24).prop_map(Op::Remove),
        (0u8..24).prop_map(Op::Touch),
        (0u8..24).prop_map(Op::Touch),
        Just(Op::Clear),
    ]
}

fn k(id: u8) -> Key {
    key(id as u32, 0, id as usize)
}

/// Apply one op to both queues, asserting every return value matches.
/// Push is only forwarded when the key is absent (push of a resident key
/// is a documented panic in both implementations).
fn step(slab: &mut OrderedQueue, map: &mut MapQueue, op: Op) {
    match op {
        Op::PushBack(id) => {
            assert_eq!(slab.contains(&k(id)), map.contains(&k(id)));
            if !slab.contains(&k(id)) {
                slab.push_back(k(id));
                map.push_back(k(id));
            }
        }
        Op::PushFront(id) => {
            if !slab.contains(&k(id)) {
                slab.push_front(k(id));
                map.push_front(k(id));
            }
        }
        Op::PopFront => assert_eq!(slab.pop_front(), map.pop_front()),
        Op::Remove(id) => assert_eq!(slab.remove(&k(id)), map.remove(&k(id))),
        Op::Touch(id) => assert_eq!(slab.touch(k(id)), map.touch(k(id))),
        Op::Clear => {
            slab.clear();
            map.clear();
        }
    }
}

/// Full observable state must agree after every single operation.
fn check_equal(slab: &OrderedQueue, map: &MapQueue) {
    assert_eq!(slab.len(), map.len());
    assert_eq!(slab.is_empty(), map.is_empty());
    assert_eq!(slab.front(), map.front());
    assert_eq!(slab.back(), map.back());
    let forward: (Vec<&Key>, Vec<&Key>) = (slab.iter().collect(), map.iter().collect());
    assert_eq!(forward.0, forward.1, "forward iteration diverged");
    let reverse: (Vec<&Key>, Vec<&Key>) = (slab.iter().rev().collect(), map.iter().rev().collect());
    assert_eq!(reverse.0, reverse.1, "reverse iteration diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Slab and map-backed queues agree op-for-op on arbitrary sequences.
    #[test]
    fn slab_matches_map_oracle(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut slab = OrderedQueue::new();
        let mut map = MapQueue::new();
        for op in ops {
            step(&mut slab, &mut map, op);
            check_equal(&slab, &map);
        }
    }

    /// Same property, but with a clear mid-sequence to force the slab's
    /// free list through full drain-and-reuse before the second half runs.
    #[test]
    fn slab_matches_after_clear_and_reuse(
        first in proptest::collection::vec(op_strategy(), 1..150),
        second in proptest::collection::vec(op_strategy(), 1..150),
    ) {
        let mut slab = OrderedQueue::new();
        let mut map = MapQueue::new();
        for op in first {
            step(&mut slab, &mut map, op);
        }
        slab.clear();
        map.clear();
        for op in second {
            step(&mut slab, &mut map, op);
            check_equal(&slab, &map);
        }
    }
}
