//! FBR — frequency-based replacement (Robinson & Devarakonda, SIGMETRICS'90
//! — the paper's reference \[27\]).
//!
//! FBR keeps an LRU stack split into *new*, *middle* and *old* sections.
//! Reference counts are incremented only when the page is hit **outside
//! the new section** — re-references to just-fetched pages are treated as
//! correlated and earn no frequency credit. The eviction victim is the
//! least-frequently-used page of the *old* section (ties to the LRU end),
//! combining frequency with aging.
//!
//! Section sizing follows the original paper's recommendation:
//! new ≈ 25%, old ≈ 50% of capacity.

use crate::hash::FxHashMap;
use crate::policy::{InsertOutcome, Key, PolicyKind, ReplacementPolicy};
use crate::queue::OrderedQueue;

/// The FBR policy.
#[derive(Debug)]
pub struct FbrPolicy {
    capacity: usize,
    new_size: usize,
    old_size: usize,
    /// LRU stack: front = LRU (old end), back = MRU (new end).
    stack: OrderedQueue,
    counts: FxHashMap<Key, u64>,
}

impl FbrPolicy {
    /// FBR with 25% new / 50% old sections.
    pub fn new(capacity: usize) -> Self {
        FbrPolicy {
            capacity,
            new_size: (capacity / 4).max(1),
            old_size: (capacity / 2).max(1),
            stack: OrderedQueue::new(),
            counts: FxHashMap::default(),
        }
    }

    /// Is `key` currently within the new (MRU-most) section?
    fn in_new_section(&self, key: &Key) -> bool {
        self.stack
            .iter()
            .rev()
            .take(self.new_size)
            .any(|k| k == key)
    }

    /// Victim: minimum count within the old (LRU-most) section, ties to
    /// the LRU end.
    fn victim(&self) -> Key {
        let old: Vec<Key> = self.stack.iter().take(self.old_size).copied().collect();
        *old.iter()
            .enumerate()
            .min_by_key(|(pos, k)| (self.counts[k], *pos))
            .map(|(_, k)| k)
            .expect("victim() on non-empty cache")
    }
}

impl ReplacementPolicy for FbrPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Fbr
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.stack.len()
    }

    fn contains(&self, key: &Key) -> bool {
        self.stack.contains(key)
    }

    fn on_access(&mut self, key: Key) -> bool {
        if !self.stack.contains(&key) {
            return false;
        }
        // Frequency credit only outside the new section (factors out
        // correlated re-references).
        if !self.in_new_section(&key) {
            *self.counts.get_mut(&key).expect("resident has a count") += 1;
        }
        self.stack.touch(key);
        true
    }

    fn admit(&mut self, key: Key, _priority: u8) -> InsertOutcome {
        if self.stack.contains(&key) {
            self.on_access(key);
            return InsertOutcome::AlreadyResident;
        }
        let evicted = if self.stack.len() >= self.capacity {
            let v = self.victim();
            self.stack.remove(&v);
            self.counts.remove(&v);
            Some(v)
        } else {
            None
        };
        self.stack.push_back(key);
        self.counts.insert(key, 1);
        InsertOutcome::Inserted { evicted }
    }

    fn clear(&mut self) {
        self.stack.clear();
        self.counts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key;

    #[test]
    fn new_section_hits_earn_no_credit() {
        let mut c = FbrPolicy::new(8); // new section = 2
        c.on_insert(key(0, 0, 0), 1);
        assert!(c.on_access(key(0, 0, 0))); // in new section (MRU)
        assert_eq!(c.counts[&key(0, 0, 0)], 1, "correlated hit earns nothing");
    }

    #[test]
    fn old_section_hits_earn_credit() {
        let mut c = FbrPolicy::new(4); // new section = 1
        c.on_insert(key(0, 0, 0), 1);
        c.on_insert(key(0, 0, 1), 1);
        // key0 is now outside the 1-slot new section.
        assert!(c.on_access(key(0, 0, 0)));
        assert_eq!(c.counts[&key(0, 0, 0)], 2);
    }

    #[test]
    fn evicts_least_frequent_in_old_section() {
        let mut c = FbrPolicy::new(4); // old section = 2
        c.on_insert(key(0, 0, 0), 1);
        c.on_insert(key(0, 0, 1), 1);
        c.on_insert(key(0, 0, 2), 1);
        c.on_insert(key(0, 0, 3), 1);
        // Credit key0 (the LRU), leaving key1 as the low-count old page.
        c.on_access(key(0, 0, 0));
        // But the access moved key0 to MRU; old section is now {1, 2}.
        let evicted = c.on_insert(key(0, 0, 4), 1).evicted();
        assert_eq!(evicted, Some(key(0, 0, 1)));
    }

    #[test]
    fn capacity_respected() {
        let mut c = FbrPolicy::new(3);
        for i in 0..40 {
            let k = key(0, 0, i % 9);
            if !c.on_access(k) {
                c.on_insert(k, 1);
            }
            assert!(c.len() <= 3);
        }
    }

    #[test]
    fn frequent_old_page_survives() {
        let mut c = FbrPolicy::new(4);
        let hot = key(0, 0, 0);
        c.on_insert(hot, 1);
        // Build frequency while hot cycles through the old section.
        for i in 1..20 {
            let k = key(0, 1, i);
            if !c.on_access(k) {
                c.on_insert(k, 1);
            }
            c.on_access(hot);
        }
        assert!(c.contains(&hot));
        assert!(c.counts[&hot] > 5);
    }
}
