//! Hit/miss accounting shared by the simulator's buffer cache.

use serde::{Deserialize, Serialize};

/// Counters for one cache instance or one reconstruction campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses served from cache.
    pub hits: u64,
    /// Accesses that had to go to disk.
    pub misses: u64,
    /// Chunks pushed out to make room.
    pub evictions: u64,
    /// Chunks inserted after a miss.
    pub inserts: u64,
    /// FBF queue demotions (Q3→Q2, Q2→Q1 on re-access); zero for
    /// single-queue policies.
    pub demotions: u64,
    /// Inserts by FBF priority (index 0 = priority 1 … index 2 =
    /// priority 3) — the priority distribution of fetched chunks.
    /// Single-priority policies count everything under priority 1.
    pub prio_inserts: [u64; 3],
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; zero when no accesses were made.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Record a hit.
    pub fn record_hit(&mut self) {
        self.hits += 1;
    }

    /// Record a miss.
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Record an insert, with whether it evicted a resident.
    pub fn record_insert(&mut self, evicted: bool) {
        self.record_insert_prio(1, evicted);
    }

    /// Record an insert at FBF `priority` (clamped to 1..=3), with
    /// whether it evicted a resident.
    pub fn record_insert_prio(&mut self, priority: u8, evicted: bool) {
        self.inserts += 1;
        let idx = (priority.clamp(1, 3) - 1) as usize;
        self.prio_inserts[idx] += 1;
        if evicted {
            self.evictions += 1;
        }
    }

    /// Record a queue demotion.
    pub fn record_demotion(&mut self) {
        self.demotions += 1;
    }

    /// Merge another instance's counters into this one (used when SOR
    /// workers keep per-worker stats).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.inserts += other.inserts;
        self.demotions += other.demotions;
        for (mine, theirs) in self.prio_inserts.iter_mut().zip(other.prio_inserts) {
            *mine += theirs;
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} ratio={:.4} evictions={} demotions={}",
            self.hits,
            self.misses,
            self.hit_ratio(),
            self.evictions,
            self.demotions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_basic() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        s.record_hit();
        s.record_hit();
        s.record_hit();
        s.record_miss();
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(s.accesses(), 4);
    }

    #[test]
    fn insert_eviction_accounting() {
        let mut s = CacheStats::default();
        s.record_insert(false);
        s.record_insert(true);
        assert_eq!(s.inserts, 2);
        assert_eq!(s.evictions, 1);
        assert_eq!(
            s.prio_inserts,
            [2, 0, 0],
            "plain inserts count as priority 1"
        );
    }

    #[test]
    fn priority_inserts_split_and_sum_to_inserts() {
        let mut s = CacheStats::default();
        s.record_insert_prio(3, false);
        s.record_insert_prio(3, true);
        s.record_insert_prio(2, false);
        s.record_insert_prio(1, false);
        s.record_insert_prio(0, false); // clamps to 1
        s.record_insert_prio(9, false); // clamps to 3
        assert_eq!(s.prio_inserts, [2, 1, 3]);
        assert_eq!(s.prio_inserts.iter().sum::<u64>(), s.inserts);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn demotions_count_and_merge() {
        let mut s = CacheStats::default();
        s.record_demotion();
        s.record_demotion();
        assert_eq!(s.demotions, 2);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = CacheStats {
            hits: 1,
            misses: 2,
            evictions: 3,
            inserts: 4,
            demotions: 5,
            prio_inserts: [1, 1, 2],
        };
        let b = CacheStats {
            hits: 10,
            misses: 20,
            evictions: 30,
            inserts: 40,
            demotions: 50,
            prio_inserts: [10, 10, 20],
        };
        a.merge(&b);
        assert_eq!(
            a,
            CacheStats {
                hits: 11,
                misses: 22,
                evictions: 33,
                inserts: 44,
                demotions: 55,
                prio_inserts: [11, 11, 22],
            }
        );
    }
}
