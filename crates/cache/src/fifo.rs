//! FIFO replacement: evict in arrival order, ignore re-references.

use crate::policy::{InsertOutcome, Key, PolicyKind, ReplacementPolicy};
use crate::queue::OrderedQueue;

/// First-in first-out cache. The simplest baseline in the paper's figures:
/// hits do not refresh position, so long-lived shared chunks age out exactly
/// as fast as single-use ones.
#[derive(Debug)]
pub struct FifoPolicy {
    capacity: usize,
    queue: OrderedQueue,
}

impl FifoPolicy {
    /// FIFO cache holding at most `capacity` chunks.
    pub fn new(capacity: usize) -> Self {
        FifoPolicy {
            capacity,
            queue: OrderedQueue::new(),
        }
    }
}

impl ReplacementPolicy for FifoPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Fifo
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn contains(&self, key: &Key) -> bool {
        self.queue.contains(key)
    }

    fn on_access(&mut self, key: Key) -> bool {
        // A hit does not change FIFO order.
        self.queue.contains(&key)
    }

    fn admit(&mut self, key: Key, _priority: u8) -> InsertOutcome {
        if self.queue.contains(&key) {
            // FIFO order is insertion order: a re-insert changes nothing.
            return InsertOutcome::AlreadyResident;
        }
        let evicted = if self.queue.len() >= self.capacity {
            self.queue.pop_front()
        } else {
            None
        };
        self.queue.push_back(key);
        InsertOutcome::Inserted { evicted }
    }

    fn clear(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key;

    #[test]
    fn evicts_in_arrival_order_despite_hits() {
        let mut f = FifoPolicy::new(2);
        f.on_insert(key(0, 0, 0), 1);
        f.on_insert(key(0, 0, 1), 1);
        // Hit the oldest — FIFO must still evict it first.
        assert!(f.on_access(key(0, 0, 0)));
        let evicted = f.on_insert(key(0, 0, 2), 1).evicted();
        assert_eq!(evicted, Some(key(0, 0, 0)));
    }

    #[test]
    fn fills_before_evicting() {
        let mut f = FifoPolicy::new(3);
        assert_eq!(f.on_insert(key(0, 0, 0), 1).evicted(), None);
        assert_eq!(f.on_insert(key(0, 0, 1), 1).evicted(), None);
        assert_eq!(f.on_insert(key(0, 0, 2), 1).evicted(), None);
        assert_eq!(f.len(), 3);
        assert_eq!(f.on_insert(key(0, 0, 3), 1).evicted(), Some(key(0, 0, 0)));
    }
}
