//! LFU replacement: evict the least frequently used chunk.

use crate::hash::FxHashMap;
use crate::policy::{InsertOutcome, Key, PolicyKind, ReplacementPolicy};
use std::collections::BTreeSet;

/// Least-frequently-used cache (Aho, Denning & Ullman 1971 — the paper's
/// reference \[26\]). Ties on frequency break toward the least recently used
/// chunk, the common in-cache LFU variant. Frequency history does not
/// persist after eviction ("in-cache LFU"), matching what storage systems
/// deploy and what the paper's plateau behaviour implies.
#[derive(Debug)]
pub struct LfuPolicy {
    capacity: usize,
    /// (frequency, last-access tick, key) ordered ascending: the first
    /// element is the eviction victim.
    order: BTreeSet<(u64, u64, Key)>,
    info: FxHashMap<Key, (u64, u64)>,
    tick: u64,
}

impl LfuPolicy {
    /// LFU cache holding at most `capacity` chunks.
    pub fn new(capacity: usize) -> Self {
        LfuPolicy {
            capacity,
            order: BTreeSet::new(),
            info: FxHashMap::default(),
            tick: 0,
        }
    }

    fn bump(&mut self, key: Key) {
        let (freq, last) = self.info[&key];
        self.order.remove(&(freq, last, key));
        self.tick += 1;
        let entry = (freq + 1, self.tick, key);
        self.order.insert(entry);
        self.info.insert(key, (freq + 1, self.tick));
    }
}

impl ReplacementPolicy for LfuPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Lfu
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.info.len()
    }

    fn contains(&self, key: &Key) -> bool {
        self.info.contains_key(key)
    }

    fn on_access(&mut self, key: Key) -> bool {
        if self.info.contains_key(&key) {
            self.bump(key);
            true
        } else {
            false
        }
    }

    fn admit(&mut self, key: Key, _priority: u8) -> InsertOutcome {
        if self.info.contains_key(&key) {
            self.bump(key);
            return InsertOutcome::AlreadyResident;
        }
        let evicted = if self.info.len() >= self.capacity {
            let &(f, t, victim) = self.order.iter().next().expect("full cache has a victim");
            self.order.remove(&(f, t, victim));
            self.info.remove(&victim);
            Some(victim)
        } else {
            None
        };
        self.tick += 1;
        self.order.insert((1, self.tick, key));
        self.info.insert(key, (1, self.tick));
        InsertOutcome::Inserted { evicted }
    }

    fn clear(&mut self) {
        self.order.clear();
        self.info.clear();
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key;

    #[test]
    fn evicts_lowest_frequency() {
        let mut l = LfuPolicy::new(2);
        l.on_insert(key(0, 0, 0), 1);
        l.on_insert(key(0, 0, 1), 1);
        // Access key 0 twice: freq 3 vs 1.
        l.on_access(key(0, 0, 0));
        l.on_access(key(0, 0, 0));
        assert_eq!(l.on_insert(key(0, 0, 2), 1).evicted(), Some(key(0, 0, 1)));
    }

    #[test]
    fn frequency_ties_break_by_recency() {
        let mut l = LfuPolicy::new(2);
        l.on_insert(key(0, 0, 0), 1);
        l.on_insert(key(0, 0, 1), 1);
        // Both freq 1; key 0 is older → evicted.
        assert_eq!(l.on_insert(key(0, 0, 2), 1).evicted(), Some(key(0, 0, 0)));
    }

    #[test]
    fn history_does_not_survive_eviction() {
        let mut l = LfuPolicy::new(1);
        l.on_insert(key(0, 0, 0), 1);
        for _ in 0..10 {
            l.on_access(key(0, 0, 0));
        }
        l.on_insert(key(0, 0, 1), 1); // evicts 0 despite its high frequency
        assert!(!l.contains(&key(0, 0, 0)));
        // Re-inserting 0 starts from frequency 1 again: with capacity 1 the
        // new arrival always evicts the single resident.
        l.on_insert(key(0, 0, 0), 1);
        assert!(l.contains(&key(0, 0, 0)));
        assert!(!l.contains(&key(0, 0, 1)));
    }

    #[test]
    fn high_frequency_chunk_is_sticky() {
        let mut l = LfuPolicy::new(3);
        l.on_insert(key(0, 0, 0), 1);
        for _ in 0..5 {
            l.on_access(key(0, 0, 0));
        }
        // Stream many single-use chunks through; key 0 must survive.
        for i in 1..20 {
            l.on_access(key(0, 0, i));
            l.on_insert(key(0, 0, i), 1);
        }
        assert!(l.contains(&key(0, 0, 0)));
    }
}
