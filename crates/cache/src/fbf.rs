//! FBF — Favorable Block First (the paper's contribution, §III).
//!
//! FBF keeps three queues. A chunk fetched during partial-stripe recovery
//! enters the queue matching its *priority* — the number of chosen parity
//! chains that will reference it (Table II: ≥3 chains → priority 3,
//! 2 chains → 2, 1 chain → 1). Each queue is LRU-ordered internally.
//!
//! * **Hit** (Algorithm 1, cache-hit branch): a chunk in `Queue3` has one
//!   fewer future reference left, so it is *demoted* into `Queue2`;
//!   likewise `Queue2 → Queue1`. A `Queue1` hit just refreshes its LRU
//!   position.
//! * **Eviction** (replacement policy, Fig. 7): victims come from `Queue1`
//!   first, then `Queue2`, then `Queue3` — chunks still awaited by several
//!   chains are held even if they have not been touched for a while.
//!
//! The paper says a demoted chunk is "inserted to the start point" of the
//! lower queue, while its queue figures attach "the latest accessed data
//! ... to the end of each queue". Both readings are implemented
//! ([`DemotePosition`]); the default is `Back` (MRU end, consistent with
//! the figures), and the ablation bench measures the difference.

use crate::hash::FxHashMap;
use crate::policy::{InsertOutcome, Key, PolicyKind, ReplacementPolicy};
use crate::queue::OrderedQueue;
use serde::{Deserialize, Serialize};

/// Where a demoted chunk lands in the lower queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DemotePosition {
    /// Append at the MRU end (consistent with Fig. 5/6's "latest accessed
    /// data are attached to the end").
    #[default]
    Back,
    /// Insert at the LRU end ("the start point of Queue2", §III-A-2 text).
    Front,
}

/// Tunables for the FBF policy.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct FbfConfig {
    /// Demotion landing position; see [`DemotePosition`].
    pub demote_to: DemotePosition,
    /// If `true`, hits do **not** demote (ablation: isolates how much of
    /// FBF's win comes from the demotion mechanism vs. priority insertion).
    pub disable_demotion: bool,
}

/// The FBF priority-queue cache.
#[derive(Debug)]
pub struct FbfPolicy {
    capacity: usize,
    config: FbfConfig,
    /// queues\[0\] = Queue1 (lowest), queues\[2\] = Queue3 (highest).
    queues: [OrderedQueue; 3],
    /// Which queue each resident key currently sits in (0..3).
    level_of: FxHashMap<Key, u8>,
    /// Lifetime count of queue demotions (Algorithm 1's hit branch).
    demotions: u64,
}

impl FbfPolicy {
    /// FBF cache holding at most `capacity` chunks, default configuration.
    pub fn new(capacity: usize) -> Self {
        Self::with_config(capacity, FbfConfig::default())
    }

    /// FBF cache with explicit [`FbfConfig`].
    pub fn with_config(capacity: usize, config: FbfConfig) -> Self {
        FbfPolicy {
            capacity,
            config,
            queues: [
                OrderedQueue::new(),
                OrderedQueue::new(),
                OrderedQueue::new(),
            ],
            level_of: FxHashMap::default(),
            demotions: 0,
        }
    }

    /// Number of chunks currently in `Queue{n}` (n = 1..=3). Exposed for
    /// tests that replay the paper's Figs 5–7.
    pub fn queue_len(&self, n: usize) -> usize {
        assert!((1..=3).contains(&n), "queues are numbered 1..=3");
        self.queues[n - 1].len()
    }

    /// Front-to-back contents of `Queue{n}`; front is the next victim.
    pub fn queue_contents(&self, n: usize) -> Vec<Key> {
        assert!((1..=3).contains(&n), "queues are numbered 1..=3");
        self.queues[n - 1].iter().copied().collect()
    }

    /// The queue level (1..=3) a resident key sits in.
    pub fn level(&self, key: &Key) -> Option<u8> {
        self.level_of.get(key).map(|&l| l + 1)
    }

    fn demote(&mut self, key: Key, from: u8) {
        debug_assert!(from > 0);
        self.demotions += 1;
        let to = from - 1;
        self.queues[from as usize].remove(&key);
        match self.config.demote_to {
            DemotePosition::Back => self.queues[to as usize].push_back(key),
            DemotePosition::Front => self.queues[to as usize].push_front(key),
        }
        self.level_of.insert(key, to);
    }
}

impl ReplacementPolicy for FbfPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Fbf
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.level_of.len()
    }

    fn contains(&self, key: &Key) -> bool {
        self.level_of.contains_key(key)
    }

    fn on_access(&mut self, key: Key) -> bool {
        let Some(&level) = self.level_of.get(&key) else {
            return false;
        };
        if self.config.disable_demotion || level == 0 {
            // Queue1 hit (or ablated demotion): LRU touch within the queue.
            self.queues[level as usize].touch(key);
        } else {
            // Queue3 → Queue2, Queue2 → Queue1.
            self.demote(key, level);
        }
        true
    }

    fn admit(&mut self, key: Key, priority: u8) -> InsertOutcome {
        if self.contains(&key) {
            // Treat as the hit it is: Algorithm 1's demote-on-hit applies.
            self.on_access(key);
            return InsertOutcome::AlreadyResident;
        }
        let evicted = if self.len() >= self.capacity {
            // Replacement policy: drain Queue1, then Queue2, then Queue3.
            let victim = self
                .queues
                .iter_mut()
                .find_map(|q| q.pop_front())
                .expect("full cache has a victim");
            self.level_of.remove(&victim);
            Some(victim)
        } else {
            None
        };
        // Table II: priority ≥ 3 → Queue3; clamp 0 to 1 defensively.
        let level = priority.clamp(1, 3) - 1;
        self.queues[level as usize].push_back(key);
        self.level_of.insert(key, level);
        InsertOutcome::Inserted { evicted }
    }

    fn clear(&mut self) {
        for q in &mut self.queues {
            q.clear();
        }
        self.level_of.clear();
        self.demotions = 0;
    }

    fn demotions(&self) -> u64 {
        self.demotions
    }

    fn queue_occupancy(&self) -> Option<[usize; 3]> {
        Some([
            self.queues[0].len(),
            self.queues[1].len(),
            self.queues[2].len(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key;

    /// The paper's Table III priorities for the Fig. 3 example, used by the
    /// warm-up and demotion replays below.
    fn c(r: usize, col: usize) -> Key {
        key(0, r, col)
    }

    #[test]
    fn fig5_warm_up_lands_chunks_in_priority_queues() {
        // Fig. 5: requests C(1,1), C(2,2), C(4,4), C(5,5), C(0,6) arrive;
        // priorities from Table III: C(1,1)→3, C(4,4)→2, rest→1.
        let mut fbf = FbfPolicy::new(16);
        let reqs = [
            (c(1, 1), 3u8),
            (c(2, 2), 1),
            (c(4, 4), 2),
            (c(5, 5), 1),
            (c(0, 6), 1),
        ];
        for (k, prio) in reqs {
            assert!(!fbf.on_access(k));
            fbf.on_insert(k, prio);
        }
        assert_eq!(fbf.queue_contents(3), vec![c(1, 1)]);
        assert_eq!(fbf.queue_contents(2), vec![c(4, 4)]);
        assert_eq!(fbf.queue_contents(1), vec![c(2, 2), c(5, 5), c(0, 6)]);
    }

    #[test]
    fn fig6_two_hits_demote_c11_to_queue1() {
        // Fig. 6: two further requests for C(1,1) demote it Queue3 →
        // Queue2 → Queue1.
        let mut fbf = FbfPolicy::new(16);
        fbf.on_insert(c(1, 1), 3);
        assert_eq!(fbf.level(&c(1, 1)), Some(3));
        assert!(fbf.on_access(c(1, 1)));
        assert_eq!(fbf.level(&c(1, 1)), Some(2));
        assert!(fbf.on_access(c(1, 1)));
        assert_eq!(fbf.level(&c(1, 1)), Some(1));
        // Further hits stay in Queue1.
        assert!(fbf.on_access(c(1, 1)));
        assert_eq!(fbf.level(&c(1, 1)), Some(1));
    }

    #[test]
    fn fig7_eviction_drains_queue1_before_queue2() {
        // Fig. 7: with the cache full, incoming priority-1 chunks C(1,6),
        // C(1,7) evict Queue1 chunks; C(1,1) (Queue2) survives even though
        // it is older.
        let mut fbf = FbfPolicy::new(4);
        fbf.on_insert(c(1, 1), 2); // Queue2, oldest resident
        fbf.on_insert(c(2, 2), 1);
        fbf.on_insert(c(5, 5), 1);
        fbf.on_insert(c(0, 6), 1);
        let e1 = fbf.on_insert(c(1, 6), 1).evicted();
        assert_eq!(e1, Some(c(2, 2)), "Queue1 LRU evicted first");
        let e2 = fbf.on_insert(c(1, 7), 1).evicted();
        assert_eq!(e2, Some(c(5, 5)));
        assert!(fbf.contains(&c(1, 1)), "higher-priority chunk survives");
    }

    #[test]
    fn eviction_falls_back_to_queue2_then_queue3() {
        let mut fbf = FbfPolicy::new(2);
        fbf.on_insert(c(0, 0), 3);
        fbf.on_insert(c(0, 1), 2);
        // Queue1 empty → Queue2 victim.
        assert_eq!(fbf.on_insert(c(0, 2), 1).evicted(), Some(c(0, 1)));
        // Now Queue1 holds c(0,2); evicted before the Queue3 resident.
        assert_eq!(fbf.on_insert(c(0, 3), 2).evicted(), Some(c(0, 2)));
        // Queue1 empty, Queue2 holds c(0,3) → evicted before Queue3.
        assert_eq!(fbf.on_insert(c(0, 4), 3).evicted(), Some(c(0, 3)));
        // Only Queue3 residents remain → Queue3 LRU is the victim.
        assert_eq!(fbf.on_insert(c(0, 5), 3).evicted(), Some(c(0, 0)));
    }

    #[test]
    fn priority_clamped_to_valid_queues() {
        let mut fbf = FbfPolicy::new(4);
        fbf.on_insert(c(0, 0), 0); // clamped up to Queue1
        fbf.on_insert(c(0, 1), 7); // clamped down to Queue3
        assert_eq!(fbf.level(&c(0, 0)), Some(1));
        assert_eq!(fbf.level(&c(0, 1)), Some(3));
    }

    #[test]
    fn demote_to_front_variant() {
        let cfg = FbfConfig {
            demote_to: DemotePosition::Front,
            ..Default::default()
        };
        let mut fbf = FbfPolicy::with_config(4, cfg);
        fbf.on_insert(c(0, 0), 1);
        fbf.on_insert(c(0, 1), 2);
        fbf.on_access(c(0, 1)); // demoted to front of Queue1
        assert_eq!(fbf.queue_contents(1), vec![c(0, 1), c(0, 0)]);
    }

    #[test]
    fn disable_demotion_keeps_level() {
        let cfg = FbfConfig {
            disable_demotion: true,
            ..Default::default()
        };
        let mut fbf = FbfPolicy::with_config(4, cfg);
        fbf.on_insert(c(0, 0), 3);
        fbf.on_access(c(0, 0));
        fbf.on_access(c(0, 0));
        assert_eq!(fbf.level(&c(0, 0)), Some(3));
    }

    #[test]
    fn demotions_counted_and_reset_by_clear() {
        let mut fbf = FbfPolicy::new(16);
        fbf.on_insert(c(1, 1), 3);
        assert_eq!(fbf.demotions(), 0);
        fbf.on_access(c(1, 1)); // Q3 → Q2
        fbf.on_access(c(1, 1)); // Q2 → Q1
        fbf.on_access(c(1, 1)); // Q1 hit: no demotion
        assert_eq!(fbf.demotions(), 2);
        // Re-insert of a resident is a hit and demotes too.
        fbf.on_insert(c(0, 0), 3);
        fbf.on_insert(c(0, 0), 3);
        assert_eq!(fbf.demotions(), 3);
        fbf.clear();
        assert_eq!(fbf.demotions(), 0);
    }

    #[test]
    fn queue_occupancy_mirrors_queue_len() {
        let mut fbf = FbfPolicy::new(10);
        fbf.on_insert(c(0, 0), 1);
        fbf.on_insert(c(0, 1), 3);
        fbf.on_insert(c(0, 2), 3);
        assert_eq!(fbf.queue_occupancy(), Some([1, 0, 2]));
    }

    #[test]
    fn disabled_demotion_counts_nothing() {
        let cfg = FbfConfig {
            disable_demotion: true,
            ..Default::default()
        };
        let mut fbf = FbfPolicy::with_config(4, cfg);
        fbf.on_insert(c(0, 0), 3);
        fbf.on_access(c(0, 0));
        assert_eq!(fbf.demotions(), 0);
    }

    #[test]
    fn len_spans_all_queues() {
        let mut fbf = FbfPolicy::new(10);
        fbf.on_insert(c(0, 0), 1);
        fbf.on_insert(c(0, 1), 2);
        fbf.on_insert(c(0, 2), 3);
        assert_eq!(fbf.len(), 3);
        assert_eq!(fbf.queue_len(1), 1);
        assert_eq!(fbf.queue_len(2), 1);
        assert_eq!(fbf.queue_len(3), 1);
    }
}
