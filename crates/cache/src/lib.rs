//! # fbf-cache — buffer-cache replacement policies
//!
//! The replacement policies the FBF paper compares (§IV-A): **FIFO**,
//! **LRU**, **LFU**, **ARC**, and the paper's contribution, the
//! priority-queue **FBF** policy (§III, Algorithm 1). All policies
//! implement one trait, [`ReplacementPolicy`], so the simulator's buffer
//! cache (`fbf-disksim`'s frame store) is policy-agnostic.
//!
//! Policies deal in chunk *identities* ([`Key`]); payloads live in the
//! simulator's frame store. Capacity is measured in chunks, matching the
//! paper's fixed 32 KB chunk size (cache size in MB / 32 KB = capacity).
//!
//! ```
//! use fbf_cache::{PolicyKind, ReplacementPolicy, key};
//!
//! let mut lru = PolicyKind::Lru.build(2);
//! assert!(!lru.on_access(key(0, 0, 0)));          // cold miss
//! lru.on_insert(key(0, 0, 0), 1);
//! lru.on_insert(key(0, 0, 1), 1);
//! assert!(lru.on_access(key(0, 0, 0)));           // hit, refreshes recency
//! let outcome = lru.on_insert(key(0, 1, 0), 1);   // full → evicts LRU
//! assert_eq!(outcome.evicted(), Some(key(0, 0, 1)));
//! ```

pub mod arc;
pub mod fbf;
pub mod fbr;
pub mod fifo;
pub mod hash;
pub mod lfu;
pub mod lrfu;
pub mod lru;
pub mod lru_k;
pub mod policy;
pub mod queue;
pub mod stats;
pub mod two_q;
pub mod vdf;

pub use arc::ArcPolicy;
pub use fbf::{DemotePosition, FbfConfig, FbfPolicy};
pub use fbr::FbrPolicy;
pub use fifo::FifoPolicy;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use lfu::LfuPolicy;
pub use lrfu::LrfuPolicy;
pub use lru::LruPolicy;
pub use lru_k::LruKPolicy;
pub use policy::{InsertOutcome, Key, PolicyKind, ReplacementPolicy};
pub use stats::CacheStats;
pub use two_q::TwoQPolicy;
pub use vdf::VdfPolicy;

/// Convenience constructor for a [`Key`] from raw stripe/row/col numbers.
/// Mostly for tests and examples.
pub fn key(stripe: u32, row: usize, col: usize) -> Key {
    fbf_codes::ChunkId::new(stripe, fbf_codes::Cell::new(row, col))
}
