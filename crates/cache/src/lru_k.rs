//! LRU-K replacement (O'Neil, O'Neil & Weikum, SIGMOD'93 — the paper's
//! reference \[28\]).
//!
//! LRU-K evicts the page whose K-th most recent reference is oldest,
//! distinguishing pages with genuine medium-term reuse from one-shot
//! scans. Pages referenced fewer than K times have backward K-distance
//! `∞` and are evicted first (in LRU order among themselves). Reference
//! history is retained for a bounded number of recently evicted pages
//! (the paper's *Retained Information Period*), so a page re-fetched soon
//! after eviction keeps its credit.

use crate::hash::FxHashMap;
use crate::policy::{InsertOutcome, Key, PolicyKind, ReplacementPolicy};
use std::collections::VecDeque;

/// Reference history of one page: the last up-to-K access ticks, most
/// recent first.
#[derive(Debug, Clone, Default)]
struct History {
    ticks: VecDeque<u64>,
}

impl History {
    fn record(&mut self, tick: u64, k: usize) {
        self.ticks.push_front(tick);
        self.ticks.truncate(k);
    }

    /// The K-th most recent reference, or `None` (= infinitely old) if the
    /// page has fewer than K references.
    fn kth(&self, k: usize) -> Option<u64> {
        self.ticks.get(k - 1).copied()
    }

    fn last(&self) -> u64 {
        self.ticks.front().copied().unwrap_or(0)
    }
}

/// The LRU-K policy (default K = 2).
#[derive(Debug)]
pub struct LruKPolicy {
    capacity: usize,
    k: usize,
    tick: u64,
    /// Histories of resident pages.
    resident: FxHashMap<Key, History>,
    /// Histories retained for evicted pages, bounded FIFO.
    retained: FxHashMap<Key, History>,
    retained_order: VecDeque<Key>,
}

impl LruKPolicy {
    /// LRU-2, the classic configuration.
    pub fn new(capacity: usize) -> Self {
        Self::with_k(capacity, 2)
    }

    /// LRU-K for arbitrary K ≥ 1 (K = 1 degenerates to plain LRU).
    pub fn with_k(capacity: usize, k: usize) -> Self {
        assert!(k >= 1, "K must be at least 1");
        LruKPolicy {
            capacity,
            k,
            tick: 0,
            resident: FxHashMap::default(),
            retained: FxHashMap::default(),
            retained_order: VecDeque::new(),
        }
    }

    /// The eviction victim: smallest K-th reference tick; pages without K
    /// references count as tick `-∞` and lose ties by older last
    /// reference.
    fn victim(&self) -> Key {
        *self
            .resident
            .iter()
            .min_by_key(|(_, h)| (h.kth(self.k).map_or(0, |t| t + 1), h.last()))
            .map(|(k, _)| k)
            .expect("victim() called on a non-empty cache")
    }

    fn retain(&mut self, key: Key, hist: History) {
        // Bounded retained-information store: as large as the cache.
        if self.capacity == 0 {
            return;
        }
        while self.retained_order.len() >= self.capacity {
            if let Some(old) = self.retained_order.pop_front() {
                self.retained.remove(&old);
            }
        }
        self.retained_order.push_back(key);
        self.retained.insert(key, hist);
    }
}

impl ReplacementPolicy for LruKPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::LruK
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.resident.len()
    }

    fn contains(&self, key: &Key) -> bool {
        self.resident.contains_key(key)
    }

    fn on_access(&mut self, key: Key) -> bool {
        self.tick += 1;
        if let Some(h) = self.resident.get_mut(&key) {
            h.record(self.tick, self.k);
            true
        } else {
            false
        }
    }

    fn admit(&mut self, key: Key, _priority: u8) -> InsertOutcome {
        if self.resident.contains_key(&key) {
            self.on_access(key);
            return InsertOutcome::AlreadyResident;
        }
        let evicted = if self.resident.len() >= self.capacity {
            let v = self.victim();
            let hist = self.resident.remove(&v).expect("victim resident");
            self.retain(v, hist);
            Some(v)
        } else {
            None
        };
        self.tick += 1;
        // Resume a retained history if the page came back quickly.
        let mut hist = if let Some(h) = self.retained.remove(&key) {
            self.retained_order.retain(|k| k != &key);
            h
        } else {
            History::default()
        };
        hist.record(self.tick, self.k);
        self.resident.insert(key, hist);
        InsertOutcome::Inserted { evicted }
    }

    fn clear(&mut self) {
        self.resident.clear();
        self.retained.clear();
        self.retained_order.clear();
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key;

    #[test]
    fn single_reference_pages_evicted_before_multi() {
        let mut c = LruKPolicy::new(3);
        c.on_insert(key(0, 0, 0), 1);
        c.on_access(key(0, 0, 0)); // two refs → finite K-distance
        c.on_insert(key(0, 0, 1), 1); // one ref
        c.on_insert(key(0, 0, 2), 1); // one ref
                                      // key 1 is the older single-reference page → victim.
        assert_eq!(c.on_insert(key(0, 0, 3), 1).evicted(), Some(key(0, 0, 1)));
        assert!(c.contains(&key(0, 0, 0)));
    }

    #[test]
    fn k1_behaves_like_lru() {
        let mut c = LruKPolicy::with_k(2, 1);
        c.on_insert(key(0, 0, 0), 1);
        c.on_insert(key(0, 0, 1), 1);
        c.on_access(key(0, 0, 0));
        assert_eq!(c.on_insert(key(0, 0, 2), 1).evicted(), Some(key(0, 0, 1)));
    }

    #[test]
    fn scan_resistance() {
        // A hot page referenced twice survives a long one-shot scan.
        let mut c = LruKPolicy::new(4);
        let hot = key(0, 0, 0);
        c.on_insert(hot, 1);
        c.on_access(hot);
        for i in 1..40 {
            let k = key(0, 1, i);
            if !c.on_access(k) {
                c.on_insert(k, 1);
            }
        }
        assert!(c.contains(&hot), "hot page flushed by scan");
    }

    #[test]
    fn retained_history_restores_credit() {
        let mut c = LruKPolicy::new(2);
        let a = key(0, 0, 0);
        c.on_insert(a, 1);
        c.on_access(a); // 2 refs
        c.on_insert(key(0, 0, 1), 1);
        // Evict a's companion then force a out too.
        c.on_insert(key(0, 0, 2), 1); // evicts key1 (single ref)
        c.on_insert(key(0, 0, 3), 1); // evicts key2 or a...
                                      // Re-insert a: history restored → has >= 2 refs immediately.
        if !c.contains(&a) {
            c.on_insert(a, 1);
            let h = &c.resident[&a];
            assert!(h.ticks.len() >= 2, "retained history must be resumed");
        }
    }

    #[test]
    #[should_panic(expected = "K must be at least 1")]
    fn k0_rejected() {
        LruKPolicy::with_k(4, 0);
    }
}
