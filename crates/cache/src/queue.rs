//! [`OrderedQueue`] — an indexed FIFO/LRU building block.
//!
//! Every policy in this crate needs the same primitive: a queue of keys
//! supporting *push-back* (MRU insert), *push-front* (paper-faithful FBF
//! demotion inserts "to the start point" of the lower queue), *pop-front*
//! (LRU-end eviction) and *O(log n) removal by key* (hit promotion). A
//! `VecDeque` makes removal O(n); this wraps a `BTreeMap<i64, Key>` keyed by
//! a monotonically growing sequence number plus a reverse index.

use crate::policy::Key;
use std::collections::{BTreeMap, HashMap};

/// An ordered queue of unique keys with O(log n) operations.
#[derive(Debug, Default, Clone)]
pub struct OrderedQueue {
    by_seq: BTreeMap<i64, Key>,
    seq_of: HashMap<Key, i64>,
    /// Next sequence for push_back (grows), and previous for push_front
    /// (shrinks); i64 gives effectively unbounded headroom either way.
    back: i64,
    front: i64,
}

impl OrderedQueue {
    /// Empty queue.
    pub fn new() -> Self {
        OrderedQueue {
            by_seq: BTreeMap::new(),
            seq_of: HashMap::new(),
            back: 0,
            front: 0,
        }
    }

    /// Number of keys in the queue.
    #[inline]
    pub fn len(&self) -> usize {
        self.by_seq.len()
    }

    /// Is the queue empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.by_seq.is_empty()
    }

    /// Is the key present?
    #[inline]
    pub fn contains(&self, key: &Key) -> bool {
        self.seq_of.contains_key(key)
    }

    /// Append at the back (most-recent end). Panics if the key is already
    /// present — callers must [`remove`](OrderedQueue::remove) first.
    pub fn push_back(&mut self, key: Key) {
        assert!(!self.contains(&key), "duplicate push of {key}");
        self.by_seq.insert(self.back, key);
        self.seq_of.insert(key, self.back);
        self.back += 1;
    }

    /// Insert at the front (next-to-evict end). Panics on duplicates.
    pub fn push_front(&mut self, key: Key) {
        assert!(!self.contains(&key), "duplicate push of {key}");
        self.front -= 1;
        self.by_seq.insert(self.front, key);
        self.seq_of.insert(key, self.front);
    }

    /// Remove and return the front (oldest) key.
    pub fn pop_front(&mut self) -> Option<Key> {
        let (&seq, &key) = self.by_seq.iter().next()?;
        self.by_seq.remove(&seq);
        self.seq_of.remove(&key);
        Some(key)
    }

    /// Peek at the front (oldest) key.
    pub fn front(&self) -> Option<&Key> {
        self.by_seq.values().next()
    }

    /// Peek at the back (newest) key.
    pub fn back(&self) -> Option<&Key> {
        self.by_seq.values().next_back()
    }

    /// Remove a key from anywhere in the queue. Returns whether it was
    /// present.
    pub fn remove(&mut self, key: &Key) -> bool {
        match self.seq_of.remove(key) {
            Some(seq) => {
                self.by_seq.remove(&seq);
                true
            }
            None => false,
        }
    }

    /// Move an existing key to the back (MRU refresh). Returns whether it
    /// was present.
    pub fn touch(&mut self, key: Key) -> bool {
        if self.remove(&key) {
            self.push_back(key);
            true
        } else {
            false
        }
    }

    /// Iterate front-to-back (eviction order); reversible for MRU-side
    /// section scans (FBR's new-section test).
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &Key> {
        self.by_seq.values()
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.by_seq.clear();
        self.seq_of.clear();
        self.back = 0;
        self.front = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key;

    #[test]
    fn fifo_order() {
        let mut q = OrderedQueue::new();
        q.push_back(key(0, 0, 0));
        q.push_back(key(0, 0, 1));
        q.push_back(key(0, 0, 2));
        assert_eq!(q.pop_front(), Some(key(0, 0, 0)));
        assert_eq!(q.pop_front(), Some(key(0, 0, 1)));
        assert_eq!(q.pop_front(), Some(key(0, 0, 2)));
        assert_eq!(q.pop_front(), None);
    }

    #[test]
    fn push_front_jumps_queue() {
        let mut q = OrderedQueue::new();
        q.push_back(key(0, 0, 0));
        q.push_front(key(0, 0, 1));
        assert_eq!(q.front(), Some(&key(0, 0, 1)));
        assert_eq!(q.back(), Some(&key(0, 0, 0)));
    }

    #[test]
    fn touch_moves_to_back() {
        let mut q = OrderedQueue::new();
        q.push_back(key(0, 0, 0));
        q.push_back(key(0, 0, 1));
        assert!(q.touch(key(0, 0, 0)));
        assert_eq!(q.pop_front(), Some(key(0, 0, 1)));
        assert_eq!(q.pop_front(), Some(key(0, 0, 0)));
    }

    #[test]
    fn touch_missing_returns_false() {
        let mut q = OrderedQueue::new();
        assert!(!q.touch(key(0, 0, 0)));
    }

    #[test]
    fn remove_middle() {
        let mut q = OrderedQueue::new();
        for i in 0..5 {
            q.push_back(key(0, 0, i));
        }
        assert!(q.remove(&key(0, 0, 2)));
        assert!(!q.contains(&key(0, 0, 2)));
        assert_eq!(q.len(), 4);
        let order: Vec<Key> = q.iter().copied().collect();
        assert_eq!(
            order,
            vec![key(0, 0, 0), key(0, 0, 1), key(0, 0, 3), key(0, 0, 4)]
        );
    }

    #[test]
    #[should_panic(expected = "duplicate push")]
    fn duplicate_push_panics() {
        let mut q = OrderedQueue::new();
        q.push_back(key(0, 0, 0));
        q.push_back(key(0, 0, 0));
    }

    #[test]
    fn clear_resets() {
        let mut q = OrderedQueue::new();
        q.push_back(key(0, 0, 0));
        q.clear();
        assert!(q.is_empty());
        q.push_back(key(0, 0, 0)); // no duplicate panic after clear
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_front_back() {
        let mut q = OrderedQueue::new();
        q.push_back(key(0, 0, 0));
        q.push_front(key(0, 0, 1));
        q.push_back(key(0, 0, 2));
        q.push_front(key(0, 0, 3));
        let order: Vec<Key> = q.iter().copied().collect();
        assert_eq!(
            order,
            vec![key(0, 0, 3), key(0, 0, 1), key(0, 0, 0), key(0, 0, 2)]
        );
    }
}
