//! [`OrderedQueue`] — an indexed FIFO/LRU building block.
//!
//! Every policy in this crate needs the same primitive: a queue of keys
//! supporting *push-back* (MRU insert), *push-front* (paper-faithful FBF
//! demotion inserts "to the start point" of the lower queue), *pop-front*
//! (LRU-end eviction) and *removal by key* (hit promotion). These run on
//! every simulated I/O, so they are the hottest code in the workspace.
//!
//! The implementation is a slab-backed intrusive doubly-linked list:
//! nodes live contiguously in a `Vec` (freed slots are chained into an
//! intrusive free list and reused), and a [`FxHashMap`] maps each key to
//! its slot. Every operation is a true O(1) pointer splice plus at most
//! one hash-map touch — `touch` does not even re-hash, since moving a node
//! never changes its slot. The previous `BTreeMap`-by-sequence-number
//! implementation is retained as [`oracle::MapQueue`], both as the
//! differential-testing oracle and as the baseline the perf harness
//! (`perf_baseline`) measures the slab against.

use crate::hash::FxHashMap;
use crate::policy::Key;

/// Sentinel slot index meaning "no node".
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    key: Key,
    prev: u32,
    next: u32,
}

/// An ordered queue of unique keys with O(1) operations.
#[derive(Debug, Default, Clone)]
pub struct OrderedQueue {
    /// Node slab; freed slots are chained through `next` starting at
    /// `free_head` and reused before the slab grows.
    nodes: Vec<Node>,
    slot_of: FxHashMap<Key, u32>,
    head: u32,
    tail: u32,
    free_head: u32,
}

impl OrderedQueue {
    /// Empty queue.
    pub fn new() -> Self {
        OrderedQueue {
            nodes: Vec::new(),
            slot_of: FxHashMap::default(),
            head: NIL,
            tail: NIL,
            free_head: NIL,
        }
    }

    /// Number of keys in the queue.
    #[inline]
    pub fn len(&self) -> usize {
        self.slot_of.len()
    }

    /// Is the queue empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slot_of.is_empty()
    }

    /// Is the key present?
    #[inline]
    pub fn contains(&self, key: &Key) -> bool {
        self.slot_of.contains_key(key)
    }

    /// Take a slot off the free list, or grow the slab.
    #[inline]
    fn alloc(&mut self, key: Key) -> u32 {
        if self.free_head != NIL {
            let slot = self.free_head;
            self.free_head = self.nodes[slot as usize].next;
            self.nodes[slot as usize] = Node {
                key,
                prev: NIL,
                next: NIL,
            };
            slot
        } else {
            let slot = u32::try_from(self.nodes.len()).expect("queue slots fit u32");
            assert!(slot != NIL, "queue capacity exhausted");
            self.nodes.push(Node {
                key,
                prev: NIL,
                next: NIL,
            });
            slot
        }
    }

    /// Return a slot to the free list.
    #[inline]
    fn release(&mut self, slot: u32) {
        self.nodes[slot as usize].next = self.free_head;
        self.free_head = slot;
    }

    /// Splice a detached node in at the tail (MRU end).
    #[inline]
    fn link_back(&mut self, slot: u32) {
        let old_tail = self.tail;
        {
            let n = &mut self.nodes[slot as usize];
            n.prev = old_tail;
            n.next = NIL;
        }
        if old_tail == NIL {
            self.head = slot;
        } else {
            self.nodes[old_tail as usize].next = slot;
        }
        self.tail = slot;
    }

    /// Splice a detached node in at the head (next-to-evict end).
    #[inline]
    fn link_front(&mut self, slot: u32) {
        let old_head = self.head;
        {
            let n = &mut self.nodes[slot as usize];
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head == NIL {
            self.tail = slot;
        } else {
            self.nodes[old_head as usize].prev = slot;
        }
        self.head = slot;
    }

    /// Detach a node from the list without freeing its slot.
    #[inline]
    fn unlink(&mut self, slot: u32) {
        let Node { prev, next, .. } = self.nodes[slot as usize];
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
    }

    /// Append at the back (most-recent end). Panics if the key is already
    /// present — callers must [`remove`](OrderedQueue::remove) first.
    pub fn push_back(&mut self, key: Key) {
        assert!(!self.contains(&key), "duplicate push of {key}");
        let slot = self.alloc(key);
        self.link_back(slot);
        self.slot_of.insert(key, slot);
    }

    /// Insert at the front (next-to-evict end). Panics on duplicates.
    pub fn push_front(&mut self, key: Key) {
        assert!(!self.contains(&key), "duplicate push of {key}");
        let slot = self.alloc(key);
        self.link_front(slot);
        self.slot_of.insert(key, slot);
    }

    /// Remove and return the front (oldest) key — one splice, one map
    /// removal.
    pub fn pop_front(&mut self) -> Option<Key> {
        let slot = self.head;
        if slot == NIL {
            return None;
        }
        let key = self.nodes[slot as usize].key;
        self.unlink(slot);
        self.release(slot);
        self.slot_of.remove(&key);
        Some(key)
    }

    /// Peek at the front (oldest) key.
    pub fn front(&self) -> Option<&Key> {
        (self.head != NIL).then(|| &self.nodes[self.head as usize].key)
    }

    /// Peek at the back (newest) key.
    pub fn back(&self) -> Option<&Key> {
        (self.tail != NIL).then(|| &self.nodes[self.tail as usize].key)
    }

    /// Remove a key from anywhere in the queue. Returns whether it was
    /// present.
    pub fn remove(&mut self, key: &Key) -> bool {
        match self.slot_of.remove(key) {
            Some(slot) => {
                self.unlink(slot);
                self.release(slot);
                true
            }
            None => false,
        }
    }

    /// Move an existing key to the back (MRU refresh). Returns whether it
    /// was present. The node keeps its slot, so no hashing beyond the one
    /// lookup happens.
    pub fn touch(&mut self, key: Key) -> bool {
        match self.slot_of.get(&key) {
            Some(&slot) => {
                if self.tail != slot {
                    self.unlink(slot);
                    self.link_back(slot);
                }
                true
            }
            None => false,
        }
    }

    /// Iterate front-to-back (eviction order); reversible for MRU-side
    /// section scans (FBR's new-section test).
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &Key> {
        Iter {
            nodes: &self.nodes,
            front: self.head,
            back: self.tail,
            remaining: self.len(),
        }
    }

    /// Drop everything. Slab storage is kept for reuse; slots allocated
    /// after a clear start fresh (the free list is reset, not leaked).
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.slot_of.clear();
        self.head = NIL;
        self.tail = NIL;
        self.free_head = NIL;
    }
}

/// Linked-list walker for [`OrderedQueue::iter`].
struct Iter<'a> {
    nodes: &'a [Node],
    front: u32,
    back: u32,
    remaining: usize,
}

impl<'a> Iterator for Iter<'a> {
    type Item = &'a Key;

    fn next(&mut self) -> Option<&'a Key> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let node = &self.nodes[self.front as usize];
        self.front = node.next;
        Some(&node.key)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<'a> DoubleEndedIterator for Iter<'a> {
    fn next_back(&mut self) -> Option<&'a Key> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let node = &self.nodes[self.back as usize];
        self.back = node.prev;
        Some(&node.key)
    }
}

impl ExactSizeIterator for Iter<'_> {}

pub mod oracle {
    //! The original map-backed queue, retained verbatim in behaviour.
    //!
    //! Two jobs: (1) the differential property test drives it and the slab
    //! queue through identical random op sequences and asserts every
    //! observable agrees; (2) `perf_baseline` measures the slab's speedup
    //! against it, so the "before" number stays reproducible forever.

    use crate::policy::Key;
    use std::collections::{BTreeMap, HashMap};

    /// An ordered queue of unique keys with O(log n) operations, backed by
    /// a `BTreeMap` keyed by a monotonic sequence number plus a SipHash
    /// reverse index. Same public surface as
    /// [`OrderedQueue`](super::OrderedQueue).
    #[derive(Debug, Default, Clone)]
    pub struct MapQueue {
        by_seq: BTreeMap<i64, Key>,
        seq_of: HashMap<Key, i64>,
        /// Next sequence for push_back (grows), and previous for
        /// push_front (shrinks); i64 gives unbounded headroom either way.
        back: i64,
        front: i64,
    }

    impl MapQueue {
        /// Empty queue.
        pub fn new() -> Self {
            MapQueue {
                by_seq: BTreeMap::new(),
                seq_of: HashMap::new(),
                back: 0,
                front: 0,
            }
        }

        /// Number of keys in the queue.
        pub fn len(&self) -> usize {
            self.by_seq.len()
        }

        /// Is the queue empty?
        pub fn is_empty(&self) -> bool {
            self.by_seq.is_empty()
        }

        /// Is the key present?
        pub fn contains(&self, key: &Key) -> bool {
            self.seq_of.contains_key(key)
        }

        /// Append at the back. Panics on duplicates.
        pub fn push_back(&mut self, key: Key) {
            assert!(!self.contains(&key), "duplicate push of {key}");
            self.by_seq.insert(self.back, key);
            self.seq_of.insert(key, self.back);
            self.back += 1;
        }

        /// Insert at the front. Panics on duplicates.
        pub fn push_front(&mut self, key: Key) {
            assert!(!self.contains(&key), "duplicate push of {key}");
            self.front -= 1;
            self.by_seq.insert(self.front, key);
            self.seq_of.insert(key, self.front);
        }

        /// Remove and return the front (oldest) key.
        pub fn pop_front(&mut self) -> Option<Key> {
            let (&seq, &key) = self.by_seq.iter().next()?;
            self.by_seq.remove(&seq);
            self.seq_of.remove(&key);
            Some(key)
        }

        /// Peek at the front (oldest) key.
        pub fn front(&self) -> Option<&Key> {
            self.by_seq.values().next()
        }

        /// Peek at the back (newest) key.
        pub fn back(&self) -> Option<&Key> {
            self.by_seq.values().next_back()
        }

        /// Remove a key from anywhere. Returns whether it was present.
        pub fn remove(&mut self, key: &Key) -> bool {
            match self.seq_of.remove(key) {
                Some(seq) => {
                    self.by_seq.remove(&seq);
                    true
                }
                None => false,
            }
        }

        /// Move an existing key to the back. Returns whether present.
        pub fn touch(&mut self, key: Key) -> bool {
            if self.remove(&key) {
                self.push_back(key);
                true
            } else {
                false
            }
        }

        /// Iterate front-to-back.
        pub fn iter(&self) -> impl DoubleEndedIterator<Item = &Key> {
            self.by_seq.values()
        }

        /// Drop everything.
        pub fn clear(&mut self) {
            self.by_seq.clear();
            self.seq_of.clear();
            self.back = 0;
            self.front = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key;

    #[test]
    fn fifo_order() {
        let mut q = OrderedQueue::new();
        q.push_back(key(0, 0, 0));
        q.push_back(key(0, 0, 1));
        q.push_back(key(0, 0, 2));
        assert_eq!(q.pop_front(), Some(key(0, 0, 0)));
        assert_eq!(q.pop_front(), Some(key(0, 0, 1)));
        assert_eq!(q.pop_front(), Some(key(0, 0, 2)));
        assert_eq!(q.pop_front(), None);
    }

    #[test]
    fn push_front_jumps_queue() {
        let mut q = OrderedQueue::new();
        q.push_back(key(0, 0, 0));
        q.push_front(key(0, 0, 1));
        assert_eq!(q.front(), Some(&key(0, 0, 1)));
        assert_eq!(q.back(), Some(&key(0, 0, 0)));
    }

    #[test]
    fn touch_moves_to_back() {
        let mut q = OrderedQueue::new();
        q.push_back(key(0, 0, 0));
        q.push_back(key(0, 0, 1));
        assert!(q.touch(key(0, 0, 0)));
        assert_eq!(q.pop_front(), Some(key(0, 0, 1)));
        assert_eq!(q.pop_front(), Some(key(0, 0, 0)));
    }

    #[test]
    fn touch_missing_returns_false() {
        let mut q = OrderedQueue::new();
        assert!(!q.touch(key(0, 0, 0)));
    }

    #[test]
    fn touch_of_tail_is_a_noop() {
        let mut q = OrderedQueue::new();
        q.push_back(key(0, 0, 0));
        q.push_back(key(0, 0, 1));
        assert!(q.touch(key(0, 0, 1)));
        let order: Vec<Key> = q.iter().copied().collect();
        assert_eq!(order, vec![key(0, 0, 0), key(0, 0, 1)]);
    }

    #[test]
    fn remove_middle() {
        let mut q = OrderedQueue::new();
        for i in 0..5 {
            q.push_back(key(0, 0, i));
        }
        assert!(q.remove(&key(0, 0, 2)));
        assert!(!q.contains(&key(0, 0, 2)));
        assert_eq!(q.len(), 4);
        let order: Vec<Key> = q.iter().copied().collect();
        assert_eq!(
            order,
            vec![key(0, 0, 0), key(0, 0, 1), key(0, 0, 3), key(0, 0, 4)]
        );
    }

    #[test]
    #[should_panic(expected = "duplicate push")]
    fn duplicate_push_panics() {
        let mut q = OrderedQueue::new();
        q.push_back(key(0, 0, 0));
        q.push_back(key(0, 0, 0));
    }

    #[test]
    fn clear_resets() {
        let mut q = OrderedQueue::new();
        q.push_back(key(0, 0, 0));
        q.clear();
        assert!(q.is_empty());
        q.push_back(key(0, 0, 0)); // no duplicate panic after clear
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_front_back() {
        let mut q = OrderedQueue::new();
        q.push_back(key(0, 0, 0));
        q.push_front(key(0, 0, 1));
        q.push_back(key(0, 0, 2));
        q.push_front(key(0, 0, 3));
        let order: Vec<Key> = q.iter().copied().collect();
        assert_eq!(
            order,
            vec![key(0, 0, 3), key(0, 0, 1), key(0, 0, 0), key(0, 0, 2)]
        );
    }

    #[test]
    fn iter_reverses() {
        let mut q = OrderedQueue::new();
        for i in 0..4 {
            q.push_back(key(0, 0, i));
        }
        let rev: Vec<Key> = q.iter().rev().copied().collect();
        assert_eq!(
            rev,
            vec![key(0, 0, 3), key(0, 0, 2), key(0, 0, 1), key(0, 0, 0)]
        );
        assert_eq!(q.iter().count(), 4);
    }

    /// Regression for the slab rewrite: interleaved push_front/push_back/
    /// pop_front/remove must preserve order across a clear and through
    /// free-list slot reuse.
    #[test]
    fn order_survives_clear_and_slot_reuse() {
        let mut q = OrderedQueue::new();
        // Round 1: populate, punch holes (freeing interior slots), clear.
        for i in 0..8 {
            q.push_back(key(0, 0, i));
        }
        assert!(q.remove(&key(0, 0, 3)));
        assert!(q.remove(&key(0, 0, 0)));
        assert_eq!(q.pop_front(), Some(key(0, 0, 1)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.front(), None);
        assert_eq!(q.back(), None);

        // Round 2: slots freed above get reused; ordering must be exactly
        // what the op sequence dictates, independent of slot numbers.
        q.push_front(key(1, 0, 0)); // [a]
        q.push_back(key(1, 0, 1)); // [a b]
        q.push_front(key(1, 0, 2)); // [c a b]
        q.push_back(key(1, 0, 3)); // [c a b d]
        assert!(q.remove(&key(1, 0, 0))); // [c b d]
        q.push_front(key(1, 0, 4)); // [e c b d]  (reuses a's slot)
        assert_eq!(q.pop_front(), Some(key(1, 0, 4))); // [c b d]
        q.push_back(key(1, 0, 5)); // [c b d f]
        assert!(q.touch(key(1, 0, 2))); // [b d f c]
        let order: Vec<Key> = q.iter().copied().collect();
        assert_eq!(
            order,
            vec![key(1, 0, 1), key(1, 0, 3), key(1, 0, 5), key(1, 0, 2)]
        );
        let rev: Vec<Key> = q.iter().rev().copied().collect();
        assert_eq!(
            rev,
            vec![key(1, 0, 2), key(1, 0, 5), key(1, 0, 3), key(1, 0, 1)]
        );
        // Drain fully; the list and index agree to the end.
        assert_eq!(q.pop_front(), Some(key(1, 0, 1)));
        assert_eq!(q.pop_front(), Some(key(1, 0, 3)));
        assert_eq!(q.pop_front(), Some(key(1, 0, 5)));
        assert_eq!(q.pop_front(), Some(key(1, 0, 2)));
        assert_eq!(q.pop_front(), None);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn oracle_matches_on_a_scripted_sequence() {
        let mut slab = OrderedQueue::new();
        let mut map = oracle::MapQueue::new();
        let ks: Vec<Key> = (0..6).map(|i| key(0, 0, i)).collect();
        for q in 0..2 {
            // Same script twice (second round exercises post-clear reuse).
            let _ = q;
            for (i, &k) in ks.iter().enumerate() {
                if i % 2 == 0 {
                    slab.push_back(k);
                    map.push_back(k);
                } else {
                    slab.push_front(k);
                    map.push_front(k);
                }
            }
            assert_eq!(slab.touch(ks[2]), map.touch(ks[2]));
            assert_eq!(slab.remove(&ks[4]), map.remove(&ks[4]));
            assert_eq!(slab.pop_front(), map.pop_front());
            let a: Vec<Key> = slab.iter().copied().collect();
            let b: Vec<Key> = map.iter().copied().collect();
            assert_eq!(a, b);
            slab.clear();
            map.clear();
        }
    }
}
