//! 2Q replacement (Johnson & Shasha, VLDB'94 — the paper's
//! reference \[29\]).
//!
//! The full (non-simplified) 2Q: newly fetched pages enter a small FIFO
//! `A1in`; pages evicted from `A1in` leave their identity in a ghost FIFO
//! `A1out`; a page re-referenced while in `A1out` has proven reuse beyond
//! correlated accesses and is promoted into the main LRU `Am`. One-shot
//! scans wash through `A1in` without ever touching `Am`.
//!
//! Tuning follows the paper's recommendation: `Kin = capacity / 4`,
//! `Kout = capacity / 2` (minimum 1 each).

use crate::policy::{InsertOutcome, Key, PolicyKind, ReplacementPolicy};
use crate::queue::OrderedQueue;

/// The 2Q policy.
#[derive(Debug)]
pub struct TwoQPolicy {
    capacity: usize,
    kin: usize,
    kout: usize,
    a1in: OrderedQueue,
    a1out: OrderedQueue, // ghost: identities only
    am: OrderedQueue,
}

impl TwoQPolicy {
    /// 2Q with the paper-recommended 25% / 50% tuning.
    pub fn new(capacity: usize) -> Self {
        TwoQPolicy {
            capacity,
            kin: (capacity / 4).max(1),
            kout: (capacity / 2).max(1),
            a1in: OrderedQueue::new(),
            a1out: OrderedQueue::new(),
            am: OrderedQueue::new(),
        }
    }

    /// Make room for one page; returns the evicted resident, if any.
    /// (The `reclaimfor` procedure of the original paper.)
    fn reclaim(&mut self) -> Option<Key> {
        if self.len() < self.capacity {
            return None;
        }
        if self.a1in.len() > self.kin {
            // Page out the A1in FIFO head, remember it in A1out.
            let victim = self.a1in.pop_front().expect("a1in non-empty");
            while self.a1out.len() >= self.kout {
                self.a1out.pop_front();
            }
            self.a1out.push_back(victim);
            Some(victim)
        } else if let Some(victim) = self.am.pop_front() {
            // Am evictions are NOT remembered in A1out (original design).
            Some(victim)
        } else {
            self.a1in.pop_front()
        }
    }
}

impl ReplacementPolicy for TwoQPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::TwoQ
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.a1in.len() + self.am.len()
    }

    fn contains(&self, key: &Key) -> bool {
        self.a1in.contains(key) || self.am.contains(key)
    }

    fn on_access(&mut self, key: Key) -> bool {
        if self.am.touch(key) {
            true
        } else {
            // A1in hit: correlated reference, page stays put.
            self.a1in.contains(&key)
        }
    }

    fn admit(&mut self, key: Key, _priority: u8) -> InsertOutcome {
        if self.contains(&key) {
            self.on_access(key);
            return InsertOutcome::AlreadyResident;
        }
        let evicted = self.reclaim();
        if self.a1out.remove(&key) {
            // Proven reuse: straight into Am.
            self.am.push_back(key);
        } else {
            self.a1in.push_back(key);
        }
        InsertOutcome::Inserted { evicted }
    }

    fn clear(&mut self) {
        self.a1in.clear();
        self.a1out.clear();
        self.am.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key;

    #[test]
    fn new_pages_enter_a1in() {
        let mut c = TwoQPolicy::new(8);
        c.on_insert(key(0, 0, 0), 1);
        assert!(c.a1in.contains(&key(0, 0, 0)));
        assert!(!c.am.contains(&key(0, 0, 0)));
    }

    #[test]
    fn ghost_hit_promotes_to_am() {
        let mut c = TwoQPolicy::new(4); // kin = 1
        c.on_insert(key(0, 0, 0), 1);
        c.on_insert(key(0, 0, 1), 1);
        c.on_insert(key(0, 0, 2), 1);
        c.on_insert(key(0, 0, 3), 1);
        // Overflow: A1in > kin → key0 pushed to A1out ghost.
        c.on_insert(key(0, 0, 4), 1);
        assert!(c.a1out.contains(&key(0, 0, 0)));
        // Re-fetch key0 → promoted to Am.
        assert!(!c.on_access(key(0, 0, 0)));
        c.on_insert(key(0, 0, 0), 1);
        assert!(c.am.contains(&key(0, 0, 0)));
    }

    #[test]
    fn a1in_hit_does_not_promote() {
        let mut c = TwoQPolicy::new(8);
        c.on_insert(key(0, 0, 0), 1);
        assert!(c.on_access(key(0, 0, 0)));
        assert!(
            c.a1in.contains(&key(0, 0, 0)),
            "correlated hit stays in A1in"
        );
    }

    #[test]
    fn scan_does_not_flush_am() {
        let mut c = TwoQPolicy::new(4);
        // Promote one page to Am via the ghost path.
        c.on_insert(key(0, 0, 0), 1);
        for i in 1..5 {
            c.on_insert(key(0, 0, i), 1);
        }
        c.on_insert(key(0, 0, 0), 1); // ghost hit → Am
        assert!(c.am.contains(&key(0, 0, 0)));
        // Long scan of fresh pages.
        for i in 100..140 {
            let k = key(0, 1, i);
            if !c.on_access(k) {
                c.on_insert(k, 1);
            }
        }
        assert!(c.contains(&key(0, 0, 0)), "Am page flushed by scan");
    }

    #[test]
    fn capacity_respected() {
        let mut c = TwoQPolicy::new(4);
        for i in 0..50 {
            let k = key(0, 0, i);
            if !c.on_access(k) {
                c.on_insert(k, 1);
            }
            assert!(c.len() <= 4);
        }
    }
}
