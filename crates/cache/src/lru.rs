//! LRU replacement: evict the least recently used chunk.

use crate::policy::{InsertOutcome, Key, PolicyKind, ReplacementPolicy};
use crate::queue::OrderedQueue;

/// Least-recently-used cache (Mattson et al. 1970 — the paper's
/// reference \[25\]). Hits refresh recency; eviction takes the stalest chunk.
#[derive(Debug)]
pub struct LruPolicy {
    capacity: usize,
    queue: OrderedQueue,
}

impl LruPolicy {
    /// LRU cache holding at most `capacity` chunks.
    pub fn new(capacity: usize) -> Self {
        LruPolicy {
            capacity,
            queue: OrderedQueue::new(),
        }
    }
}

impl ReplacementPolicy for LruPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Lru
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn contains(&self, key: &Key) -> bool {
        self.queue.contains(key)
    }

    fn on_access(&mut self, key: Key) -> bool {
        self.queue.touch(key)
    }

    fn admit(&mut self, key: Key, _priority: u8) -> InsertOutcome {
        if self.queue.touch(key) {
            return InsertOutcome::AlreadyResident;
        }
        let evicted = if self.queue.len() >= self.capacity {
            self.queue.pop_front()
        } else {
            None
        };
        self.queue.push_back(key);
        InsertOutcome::Inserted { evicted }
    }

    fn clear(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key;

    #[test]
    fn hit_refreshes_recency() {
        let mut l = LruPolicy::new(2);
        l.on_insert(key(0, 0, 0), 1);
        l.on_insert(key(0, 0, 1), 1);
        assert!(l.on_access(key(0, 0, 0)));
        // key 1 is now the LRU.
        assert_eq!(l.on_insert(key(0, 0, 2), 1).evicted(), Some(key(0, 0, 1)));
        assert!(l.contains(&key(0, 0, 0)));
    }

    #[test]
    fn sequential_scan_evicts_in_order() {
        let mut l = LruPolicy::new(3);
        for i in 0..3 {
            l.on_insert(key(0, 0, i), 1);
        }
        for i in 3..6 {
            assert_eq!(
                l.on_insert(key(0, 0, i), 1).evicted(),
                Some(key(0, 0, i - 3))
            );
        }
    }

    #[test]
    fn miss_does_not_modify_state() {
        let mut l = LruPolicy::new(2);
        l.on_insert(key(0, 0, 0), 1);
        assert!(!l.on_access(key(0, 0, 9)));
        assert_eq!(l.len(), 1);
        assert!(l.contains(&key(0, 0, 0)));
    }
}
