//! The [`ReplacementPolicy`] trait and the [`PolicyKind`] selector.

use serde::{Deserialize, Serialize};

/// Cache key: the global chunk identity.
pub type Key = fbf_codes::ChunkId;

/// What [`ReplacementPolicy::on_insert`] did with the offered key.
///
/// Every policy follows the same contract, so callers never have to guess
/// whether a duplicate insert panicked, was ignored, or aliased an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InsertOutcome {
    /// The key was admitted. `evicted` names the resident that was
    /// displaced to make room, if the cache was full.
    Inserted {
        /// The displaced resident, if any.
        evicted: Option<Key>,
    },
    /// The key was already resident; the policy treated the call as an
    /// access (recency/frequency updated, nothing evicted).
    AlreadyResident,
    /// The cache admits nothing (zero capacity); the key was not stored.
    Rejected,
}

impl InsertOutcome {
    /// The displaced resident, if this insert evicted one.
    pub fn evicted(self) -> Option<Key> {
        match self {
            InsertOutcome::Inserted { evicted } => evicted,
            _ => None,
        }
    }

    /// Is the key resident after the call?
    pub fn resident(self) -> bool {
        !matches!(self, InsertOutcome::Rejected)
    }
}

/// A cache replacement policy over unit-size chunks.
///
/// The protocol mirrors Algorithm 1 of the paper: the buffer cache first
/// calls [`on_access`](ReplacementPolicy::on_access); on a miss it fetches
/// the chunk from disk and calls [`on_insert`](ReplacementPolicy::on_insert),
/// which makes room (at most one eviction, since chunks are unit-size) and
/// records the new resident.
///
/// Policies are purely bookkeeping — they never see payloads, so they are
/// cheap to drive at simulation speed.
pub trait ReplacementPolicy: Send {
    /// Which policy this is. Display lives in one place —
    /// [`PolicyKind::name`] / [`PolicyKind`]'s `Display` impl.
    fn kind(&self) -> PolicyKind;

    /// Maximum number of resident chunks.
    fn capacity(&self) -> usize;

    /// Current number of resident chunks.
    fn len(&self) -> usize;

    /// `len() == 0`.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is the key resident? No side effects.
    fn contains(&self, key: &Key) -> bool;

    /// Record an access. Returns `true` on a hit (and updates the policy's
    /// internal ordering — recency, frequency, FBF demotion, ...).
    /// Returns `false` on a miss; ghost-list bookkeeping (ARC) is deferred
    /// to [`on_insert`](ReplacementPolicy::on_insert).
    fn on_access(&mut self, key: Key) -> bool;

    /// Insert a key that just missed. `priority` is the FBF priority
    /// (1..=3) from the recovery scheme's priority dictionary; every other
    /// policy ignores it.
    ///
    /// The outcome is fully defined — see [`InsertOutcome`]:
    /// * zero-capacity caches return [`InsertOutcome::Rejected`] (enforced
    ///   here, once, for every policy);
    /// * inserting an already-resident key is treated as an access and
    ///   returns [`InsertOutcome::AlreadyResident`] (never an eviction);
    /// * otherwise the key is admitted and
    ///   [`InsertOutcome::Inserted`]`{ evicted }` reports the displaced
    ///   resident, if the cache was full.
    fn on_insert(&mut self, key: Key, priority: u8) -> InsertOutcome {
        if self.capacity() == 0 {
            return InsertOutcome::Rejected;
        }
        self.admit(key, priority)
    }

    /// [`on_insert`](ReplacementPolicy::on_insert) behind the shared
    /// zero-capacity guard. Implementations may assume `capacity() > 0`
    /// but still own the `AlreadyResident`/eviction contract. Callers go
    /// through `on_insert`; this hook exists so the guard lives in exactly
    /// one place instead of being copy-pasted into every policy.
    fn admit(&mut self, key: Key, priority: u8) -> InsertOutcome;

    /// Drop all residents and internal history.
    fn clear(&mut self);

    /// Lifetime count of queue demotions. Only multi-queue policies with a
    /// demotion mechanism (FBF) report non-zero; the default is 0 so the
    /// hot-path `on_access` signature stays untouched.
    fn demotions(&self) -> u64 {
        0
    }

    /// Current occupancy of the policy's priority queues as
    /// `[Queue1, Queue2, Queue3]`, for policies that have them (FBF).
    /// `None` for single-queue policies.
    fn queue_occupancy(&self) -> Option<[usize; 3]> {
        None
    }
}

/// Selector for building policies from experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PolicyKind {
    /// First-in first-out.
    Fifo,
    /// Least recently used.
    Lru,
    /// Least frequently used (recency tie-break).
    Lfu,
    /// Adaptive Replacement Cache (Megiddo & Modha, FAST'03).
    Arc,
    /// Favorable Block First (this paper).
    Fbf,
    /// LRU-K (K = 2) — cited in §II-B \[28\].
    LruK,
    /// 2Q — cited in §II-B \[29\].
    TwoQ,
    /// LRFU — cited in §II-B \[30\].
    Lrfu,
    /// Frequency-based replacement — cited in §II-B \[27\].
    Fbr,
    /// Victim Disk First — the closest prior art, §II-B \[23\]. Built with
    /// an empty victim set here (plain LRU); the engine wires the real
    /// victim columns when it knows the error campaign.
    Vdf,
}

impl PolicyKind {
    /// The five policies the paper's figures compare.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Fifo,
        PolicyKind::Lru,
        PolicyKind::Lfu,
        PolicyKind::Arc,
        PolicyKind::Fbf,
    ];

    /// Every shipped policy, including the §II-B citations beyond the
    /// paper's figure set (used by the `extended_policies` bench).
    pub const EXTENDED: [PolicyKind; 10] = [
        PolicyKind::Fifo,
        PolicyKind::Lru,
        PolicyKind::Lfu,
        PolicyKind::Arc,
        PolicyKind::LruK,
        PolicyKind::TwoQ,
        PolicyKind::Lrfu,
        PolicyKind::Fbr,
        PolicyKind::Vdf,
        PolicyKind::Fbf,
    ];

    /// The four baselines (everything except FBF).
    pub const BASELINES: [PolicyKind; 4] = [
        PolicyKind::Fifo,
        PolicyKind::Lru,
        PolicyKind::Lfu,
        PolicyKind::Arc,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Lru => "LRU",
            PolicyKind::Lfu => "LFU",
            PolicyKind::Arc => "ARC",
            PolicyKind::Fbf => "FBF",
            PolicyKind::LruK => "LRU-K",
            PolicyKind::TwoQ => "2Q",
            PolicyKind::Lrfu => "LRFU",
            PolicyKind::Fbr => "FBR",
            PolicyKind::Vdf => "VDF",
        }
    }

    /// Build a boxed policy with the given capacity (in chunks).
    pub fn build(&self, capacity: usize) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Fifo => Box::new(crate::fifo::FifoPolicy::new(capacity)),
            PolicyKind::Lru => Box::new(crate::lru::LruPolicy::new(capacity)),
            PolicyKind::Lfu => Box::new(crate::lfu::LfuPolicy::new(capacity)),
            PolicyKind::Arc => Box::new(crate::arc::ArcPolicy::new(capacity)),
            PolicyKind::Fbf => Box::new(crate::fbf::FbfPolicy::new(capacity)),
            PolicyKind::LruK => Box::new(crate::lru_k::LruKPolicy::new(capacity)),
            PolicyKind::TwoQ => Box::new(crate::two_q::TwoQPolicy::new(capacity)),
            PolicyKind::Lrfu => Box::new(crate::lrfu::LrfuPolicy::new(capacity)),
            PolicyKind::Fbr => Box::new(crate::fbr::FbrPolicy::new(capacity)),
            PolicyKind::Vdf => Box::new(crate::vdf::VdfPolicy::new(capacity)),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key;

    #[test]
    fn build_all_kinds() {
        for kind in PolicyKind::EXTENDED {
            let p = kind.build(4);
            assert_eq!(p.capacity(), 4);
            assert_eq!(p.len(), 0);
            assert!(p.is_empty());
            assert_eq!(p.kind(), kind);
        }
    }

    #[test]
    fn display_matches_paper_names() {
        let names: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["FIFO", "LRU", "LFU", "ARC", "FBF"]);
    }

    #[test]
    fn basic_protocol_for_all_policies() {
        for kind in PolicyKind::EXTENDED {
            let mut p = kind.build(2);
            let (a, b, c) = (key(0, 0, 0), key(0, 0, 1), key(0, 0, 2));
            assert!(!p.on_access(a), "{kind}: cold access must miss");
            assert_eq!(p.on_insert(a, 1), InsertOutcome::Inserted { evicted: None });
            assert!(p.contains(&a), "{kind}");
            assert!(p.on_access(a), "{kind}: second access must hit");
            assert_eq!(p.on_insert(b, 1), InsertOutcome::Inserted { evicted: None });
            assert_eq!(p.len(), 2, "{kind}");
            p.on_access(c);
            let outcome = p.on_insert(c, 1);
            assert!(outcome.evicted().is_some(), "{kind}: full cache must evict");
            assert_eq!(p.len(), 2, "{kind}: len stays at capacity");
            assert!(p.contains(&c), "{kind}: new key resident");
        }
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        for kind in PolicyKind::EXTENDED {
            let mut p = kind.build(0);
            let a = key(0, 0, 0);
            assert!(!p.on_access(a));
            assert_eq!(p.on_insert(a, 3), InsertOutcome::Rejected, "{kind}");
            assert!(
                !p.contains(&a),
                "{kind}: zero-capacity cache stores nothing"
            );
            assert_eq!(p.len(), 0);
        }
    }

    #[test]
    fn duplicate_insert_is_an_access_for_every_policy() {
        // The conformance contract: re-inserting a resident key never
        // evicts, never grows the cache, and reports `AlreadyResident`.
        for kind in PolicyKind::EXTENDED {
            let mut p = kind.build(2);
            let (a, b) = (key(0, 0, 0), key(0, 0, 1));
            assert_eq!(p.on_insert(a, 2), InsertOutcome::Inserted { evicted: None });
            assert_eq!(p.on_insert(b, 1), InsertOutcome::Inserted { evicted: None });
            assert_eq!(p.on_insert(a, 2), InsertOutcome::AlreadyResident, "{kind}");
            assert_eq!(
                p.len(),
                2,
                "{kind}: duplicate insert must not grow the cache"
            );
            assert!(p.contains(&a), "{kind}");
            assert!(p.contains(&b), "{kind}: duplicate insert must not evict");
            // And with the cache full to the brim, still no eviction.
            assert_eq!(p.on_insert(b, 1), InsertOutcome::AlreadyResident, "{kind}");
            assert_eq!(p.len(), 2, "{kind}");
        }
    }

    #[test]
    fn demotion_hooks_default_to_inert_except_fbf() {
        for kind in PolicyKind::EXTENDED {
            let mut p = kind.build(4);
            let a = key(0, 0, 0);
            p.on_insert(a, 3);
            p.on_access(a);
            if kind == PolicyKind::Fbf {
                assert_eq!(p.demotions(), 1, "{kind}");
                assert!(p.queue_occupancy().is_some(), "{kind}");
            } else {
                assert_eq!(p.demotions(), 0, "{kind}");
                assert_eq!(p.queue_occupancy(), None, "{kind}");
            }
        }
    }

    #[test]
    fn clear_empties_everything() {
        for kind in PolicyKind::EXTENDED {
            let mut p = kind.build(4);
            for i in 0..4 {
                p.on_access(key(0, 0, i));
                p.on_insert(key(0, 0, i), 1);
            }
            p.clear();
            assert_eq!(p.len(), 0, "{kind}");
            assert!(!p.on_access(key(0, 0, 0)), "{kind}: cleared key must miss");
        }
    }
}
