//! LRFU replacement (Lee et al. — the paper's reference \[30\]).
//!
//! LRFU spans the spectrum between LRU and LFU with one parameter λ.
//! Every page carries a *Combined Recency and Frequency* (CRF) value
//!
//! ```text
//! C(p) = Σ_i F(t_now - t_i)   with   F(x) = (1/2)^(λ·x)
//! ```
//!
//! maintained incrementally: on each reference
//! `C ← 1 + C · 2^(-λ·(t_now - t_last))`. λ → 0 weighs all history equally
//! (LFU); λ = 1 forgets everything but the last reference (LRU). The
//! eviction victim is the page with minimum CRF *decayed to the current
//! tick*; since decay is monotone in elapsed time, comparing
//! `C · 2^(-λ·(t_now - t_last))` across pages is exact.

use crate::hash::FxHashMap;
use crate::policy::{InsertOutcome, Key, PolicyKind, ReplacementPolicy};

/// Per-page CRF state.
#[derive(Debug, Clone, Copy)]
struct Crf {
    value: f64,
    last: u64,
}

/// The LRFU policy.
#[derive(Debug)]
pub struct LrfuPolicy {
    capacity: usize,
    lambda: f64,
    tick: u64,
    pages: FxHashMap<Key, Crf>,
}

impl LrfuPolicy {
    /// LRFU with the commonly used λ = 0.001 (frequency-leaning but
    /// recency-aware).
    pub fn new(capacity: usize) -> Self {
        Self::with_lambda(capacity, 0.001)
    }

    /// LRFU with an explicit λ ∈ [0, 1].
    pub fn with_lambda(capacity: usize, lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
        LrfuPolicy {
            capacity,
            lambda,
            tick: 0,
            pages: FxHashMap::default(),
        }
    }

    #[inline]
    fn decay(&self, c: Crf, now: u64) -> f64 {
        c.value * (-self.lambda * (now - c.last) as f64 * std::f64::consts::LN_2).exp()
    }

    fn victim(&self) -> Key {
        let now = self.tick;
        *self
            .pages
            .iter()
            .min_by(|(ka, a), (kb, b)| {
                self.decay(**a, now)
                    .partial_cmp(&self.decay(**b, now))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    // Deterministic tie-break by key.
                    .then_with(|| ka.cmp(kb))
            })
            .map(|(k, _)| k)
            .expect("victim() on non-empty cache")
    }
}

impl ReplacementPolicy for LrfuPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Lrfu
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.pages.len()
    }

    fn contains(&self, key: &Key) -> bool {
        self.pages.contains_key(key)
    }

    fn on_access(&mut self, key: Key) -> bool {
        self.tick += 1;
        let now = self.tick;
        let lambda = self.lambda;
        if let Some(c) = self.pages.get_mut(&key) {
            let decayed =
                c.value * (-lambda * (now - c.last) as f64 * std::f64::consts::LN_2).exp();
            *c = Crf {
                value: 1.0 + decayed,
                last: now,
            };
            true
        } else {
            false
        }
    }

    fn admit(&mut self, key: Key, _priority: u8) -> InsertOutcome {
        if self.pages.contains_key(&key) {
            self.on_access(key);
            return InsertOutcome::AlreadyResident;
        }
        let evicted = if self.pages.len() >= self.capacity {
            let v = self.victim();
            self.pages.remove(&v);
            Some(v)
        } else {
            None
        };
        self.tick += 1;
        self.pages.insert(
            key,
            Crf {
                value: 1.0,
                last: self.tick,
            },
        );
        InsertOutcome::Inserted { evicted }
    }

    fn clear(&mut self) {
        self.pages.clear();
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key;

    #[test]
    fn high_lambda_behaves_like_lru() {
        let mut c = LrfuPolicy::with_lambda(2, 1.0);
        c.on_insert(key(0, 0, 0), 1);
        c.on_insert(key(0, 0, 1), 1);
        c.on_access(key(0, 0, 0)); // most recent
        assert_eq!(c.on_insert(key(0, 0, 2), 1).evicted(), Some(key(0, 0, 1)));
    }

    #[test]
    fn low_lambda_behaves_like_lfu() {
        let mut c = LrfuPolicy::with_lambda(2, 0.0);
        c.on_insert(key(0, 0, 0), 1);
        for _ in 0..5 {
            c.on_access(key(0, 0, 0)); // CRF 6
        }
        c.on_insert(key(0, 0, 1), 1); // CRF 1
        c.on_access(key(0, 0, 1)); // CRF 2 but more recent
                                   // λ=0: pure frequency → evict key 1 despite recency.
        assert_eq!(c.on_insert(key(0, 0, 2), 1).evicted(), Some(key(0, 0, 1)));
    }

    #[test]
    fn crf_accumulates_on_hits() {
        let mut c = LrfuPolicy::with_lambda(4, 0.1);
        c.on_insert(key(0, 0, 0), 1);
        c.on_access(key(0, 0, 0));
        let v = c.pages[&key(0, 0, 0)].value;
        assert!(v > 1.0 && v < 2.0, "decayed accumulation, got {v}");
    }

    #[test]
    fn capacity_respected_and_deterministic() {
        let mut a = LrfuPolicy::new(4);
        let mut b = LrfuPolicy::new(4);
        for i in 0..100 {
            let k = key(0, (i % 7) as usize, (i % 5) as usize);
            for c in [&mut a, &mut b] {
                if !c.on_access(k) {
                    c.on_insert(k, 1);
                }
                assert!(c.len() <= 4);
            }
        }
        let mut ka: Vec<Key> = a.pages.keys().copied().collect();
        let mut kb: Vec<Key> = b.pages.keys().copied().collect();
        ka.sort_unstable();
        kb.sort_unstable();
        assert_eq!(ka, kb);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn bad_lambda_rejected() {
        LrfuPolicy::with_lambda(4, 1.5);
    }
}
