//! VDF — Victim Disk(s) First (Wan et al., USENIX ATC'11 — the paper's
//! reference \[23\]).
//!
//! VDF is the closest prior art to FBF: an asymmetric cache that, while an
//! array is degraded, prefers to keep blocks whose miss penalty is high —
//! blocks on (or needed by) the *victim* disks under reconstruction —
//! and sacrifices blocks of healthy disks first. We model it as a
//! two-class LRU: chunks whose column is in the victim set are protected;
//! eviction drains the non-victim class first and only then the victim
//! class, LRU within each.
//!
//! Unlike FBF it knows nothing about parity-chain sharing, which is
//! exactly the gap the paper's scheme fills — the comparison bench
//! (`extended_policies`) quantifies it.

use crate::hash::{FxHashMap, FxHashSet};
use crate::policy::{InsertOutcome, Key, PolicyKind, ReplacementPolicy};
use crate::queue::OrderedQueue;
use std::sync::Arc;

/// The VDF policy.
#[derive(Debug)]
pub struct VdfPolicy {
    capacity: usize,
    victim_cols: FxHashSet<u16>,
    /// Per-stripe victim column (stripe currently under repair → its
    /// damaged column). More precise than the global set: a column is only
    /// "victim" in the stripes where it is actually broken.
    victim_map: Option<Arc<FxHashMap<u32, u16>>>,
    /// Chunks of healthy (non-victim) disks: evicted first.
    normal: OrderedQueue,
    /// Chunks of victim disks: protected.
    protected: OrderedQueue,
}

impl VdfPolicy {
    /// VDF with an empty victim set (degenerates to LRU). Use
    /// [`VdfPolicy::with_victims`] for the degraded-mode behaviour.
    pub fn new(capacity: usize) -> Self {
        Self::with_victims(capacity, FxHashSet::default())
    }

    /// VDF protecting chunks whose stripe-column is in `victim_cols`
    /// (the columns currently under repair).
    pub fn with_victims(capacity: usize, victim_cols: FxHashSet<u16>) -> Self {
        VdfPolicy {
            capacity,
            victim_cols,
            victim_map: None,
            normal: OrderedQueue::new(),
            protected: OrderedQueue::new(),
        }
    }

    /// VDF protecting, per stripe, the chunks adjacent to that stripe's
    /// damaged column (`stripe → victim column`). In a reconstruction
    /// campaign this is the faithful reading of "victim disk first": a
    /// disk is only a victim where it is actually broken.
    pub fn with_victim_map(capacity: usize, map: Arc<FxHashMap<u32, u16>>) -> Self {
        VdfPolicy {
            capacity,
            victim_cols: FxHashSet::default(),
            victim_map: Some(map),
            normal: OrderedQueue::new(),
            protected: OrderedQueue::new(),
        }
    }

    fn is_victim(&self, key: &Key) -> bool {
        if let Some(map) = &self.victim_map {
            // Protect the victim stripe's chunks wholesale: they are the
            // ones reconstruction will keep coming back for.
            map.contains_key(&key.stripe)
        } else {
            self.victim_cols.contains(&key.cell.col)
        }
    }
}

impl ReplacementPolicy for VdfPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Vdf
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.normal.len() + self.protected.len()
    }

    fn contains(&self, key: &Key) -> bool {
        self.normal.contains(key) || self.protected.contains(key)
    }

    fn on_access(&mut self, key: Key) -> bool {
        self.normal.touch(key) || self.protected.touch(key)
    }

    fn admit(&mut self, key: Key, _priority: u8) -> InsertOutcome {
        if self.contains(&key) {
            self.on_access(key);
            return InsertOutcome::AlreadyResident;
        }
        let evicted = if self.len() >= self.capacity {
            self.normal
                .pop_front()
                .or_else(|| self.protected.pop_front())
        } else {
            None
        };
        if self.is_victim(&key) {
            self.protected.push_back(key);
        } else {
            self.normal.push_back(key);
        }
        InsertOutcome::Inserted { evicted }
    }

    fn clear(&mut self) {
        self.normal.clear();
        self.protected.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key;

    fn victims(cols: &[u16]) -> FxHashSet<u16> {
        cols.iter().copied().collect()
    }

    #[test]
    fn empty_victim_set_is_lru() {
        let mut c = VdfPolicy::new(2);
        c.on_insert(key(0, 0, 0), 1);
        c.on_insert(key(0, 0, 1), 1);
        c.on_access(key(0, 0, 0));
        assert_eq!(c.on_insert(key(0, 0, 2), 1).evicted(), Some(key(0, 0, 1)));
    }

    #[test]
    fn victim_chunks_survive_healthy_ones() {
        let mut c = VdfPolicy::with_victims(3, victims(&[0]));
        c.on_insert(key(0, 0, 0), 1); // victim col 0 → protected
        c.on_insert(key(0, 0, 1), 1); // healthy
        c.on_insert(key(0, 0, 2), 1); // healthy
                                      // Despite being the oldest, the protected chunk survives.
        assert_eq!(c.on_insert(key(0, 0, 3), 1).evicted(), Some(key(0, 0, 1)));
        assert!(c.contains(&key(0, 0, 0)));
    }

    #[test]
    fn protected_class_evicts_when_normal_empty() {
        let mut c = VdfPolicy::with_victims(2, victims(&[0]));
        c.on_insert(key(0, 0, 0), 1);
        c.on_insert(key(1, 1, 0), 1);
        assert_eq!(c.on_insert(key(2, 2, 0), 1).evicted(), Some(key(0, 0, 0)));
    }

    #[test]
    fn capacity_respected() {
        let mut c = VdfPolicy::with_victims(4, victims(&[0, 1]));
        for i in 0..30 {
            let k = key(i as u32, 0, i % 6);
            if !c.on_access(k) {
                c.on_insert(k, 1);
            }
            assert!(c.len() <= 4);
        }
    }
}
