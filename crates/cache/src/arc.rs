//! ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST'03).
//!
//! The strongest classic baseline in the paper's comparison. ARC keeps two
//! resident lists — `T1` (seen once recently) and `T2` (seen at least
//! twice) — plus two *ghost* lists `B1`/`B2` remembering recently evicted
//! keys. A hit in a ghost list adapts the target size `p` of `T1`: B1 hits
//! grow it (recency is winning), B2 hits shrink it (frequency is winning).
//!
//! This is the full algorithm from Fig. 4 of the ARC paper, mapped onto the
//! two-call protocol of [`ReplacementPolicy`]: `on_access` serves resident
//! hits (cases I); `on_insert` handles ghost hits and cold misses
//! (cases II–IV), because that is the point where the cache actually
//! fetches and places the chunk.

use crate::policy::{InsertOutcome, Key, PolicyKind, ReplacementPolicy};
use crate::queue::OrderedQueue;

/// Adaptive Replacement Cache.
#[derive(Debug)]
pub struct ArcPolicy {
    capacity: usize,
    /// Target size for T1 (the "recency" side), `0..=capacity`.
    p: usize,
    t1: OrderedQueue,
    t2: OrderedQueue,
    b1: OrderedQueue,
    b2: OrderedQueue,
}

impl ArcPolicy {
    /// ARC cache holding at most `capacity` chunks (ghost lists hold up to
    /// another `capacity` keys of metadata, per the original algorithm).
    pub fn new(capacity: usize) -> Self {
        ArcPolicy {
            capacity,
            p: 0,
            t1: OrderedQueue::new(),
            t2: OrderedQueue::new(),
            b1: OrderedQueue::new(),
            b2: OrderedQueue::new(),
        }
    }

    /// Current adaptation target for T1; exposed for tests/diagnostics.
    pub fn target_p(&self) -> usize {
        self.p
    }

    /// REPLACE(x, p) from the paper: demote one resident page to its ghost
    /// list and return it.
    fn replace(&mut self, requested_in_b2: bool) -> Option<Key> {
        let t1_len = self.t1.len();
        if t1_len >= 1 && (t1_len > self.p || (requested_in_b2 && t1_len == self.p)) {
            let victim = self.t1.pop_front().expect("t1 non-empty");
            self.b1.push_back(victim);
            Some(victim)
        } else if let Some(victim) = self.t2.pop_front() {
            self.b2.push_back(victim);
            Some(victim)
        } else {
            None
        }
    }
}

impl ReplacementPolicy for ArcPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Arc
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.t1.len() + self.t2.len()
    }

    fn contains(&self, key: &Key) -> bool {
        self.t1.contains(key) || self.t2.contains(key)
    }

    fn on_access(&mut self, key: Key) -> bool {
        // Case I: hit in T1 or T2 → move to MRU of T2.
        if self.t1.remove(&key) {
            self.t2.push_back(key);
            true
        } else {
            self.t2.touch(key)
        }
    }

    fn admit(&mut self, key: Key, _priority: u8) -> InsertOutcome {
        let c = self.capacity;
        if self.contains(&key) {
            // Case I after all: treat as the resident hit it is.
            self.on_access(key);
            return InsertOutcome::AlreadyResident;
        }

        // Case II: ghost hit in B1 → favour recency.
        if self.b1.contains(&key) {
            let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
            self.p = (self.p + delta).min(c);
            let evicted = self.replace(false);
            self.b1.remove(&key);
            self.t2.push_back(key);
            return InsertOutcome::Inserted { evicted };
        }

        // Case III: ghost hit in B2 → favour frequency.
        if self.b2.contains(&key) {
            let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
            self.p = self.p.saturating_sub(delta);
            let evicted = self.replace(true);
            self.b2.remove(&key);
            self.t2.push_back(key);
            return InsertOutcome::Inserted { evicted };
        }

        // Case IV: brand-new key.
        let l1 = self.t1.len() + self.b1.len();
        let total = l1 + self.t2.len() + self.b2.len();
        let evicted = if l1 == c {
            if self.t1.len() < c {
                self.b1.pop_front();
                self.replace(false)
            } else {
                // B1 empty, T1 full: evict T1's LRU outright (no ghost).
                self.t1.pop_front()
            }
        } else if l1 < c && total >= c {
            if total == 2 * c {
                self.b2.pop_front();
            }
            self.replace(false)
        } else {
            None
        };
        self.t1.push_back(key);
        InsertOutcome::Inserted { evicted }
    }

    fn clear(&mut self) {
        self.t1.clear();
        self.t2.clear();
        self.b1.clear();
        self.b2.clear();
        self.p = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key;

    /// Drive the miss path: access (miss) then insert.
    fn miss(arc: &mut ArcPolicy, k: Key) -> Option<Key> {
        assert!(!arc.on_access(k));
        arc.on_insert(k, 1).evicted()
    }

    #[test]
    fn resident_hit_promotes_to_t2() {
        let mut arc = ArcPolicy::new(4);
        miss(&mut arc, key(0, 0, 0));
        assert_eq!(arc.t1.len(), 1);
        assert!(arc.on_access(key(0, 0, 0)));
        assert_eq!(arc.t1.len(), 0);
        assert_eq!(arc.t2.len(), 1);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut arc = ArcPolicy::new(4);
        for i in 0..50 {
            let k = key(0, 0, i);
            if !arc.on_access(k) {
                arc.on_insert(k, 1);
            }
            assert!(
                arc.len() <= 4,
                "resident {} > capacity after {i}",
                arc.len()
            );
            assert!(arc.b1.len() + arc.b2.len() <= 4 + 1, "ghosts overgrown");
        }
    }

    #[test]
    fn t1_overflow_without_ghosts_evicts_outright() {
        // Case IV with |L1| = c and B1 empty: the T1 LRU leaves the cache
        // without entering a ghost list (ARC paper, case IV(a) else-branch).
        let mut arc = ArcPolicy::new(2);
        miss(&mut arc, key(0, 0, 0));
        miss(&mut arc, key(0, 0, 1));
        let evicted = miss(&mut arc, key(0, 0, 2));
        assert_eq!(evicted, Some(key(0, 0, 0)));
        assert!(
            !arc.b1.contains(&key(0, 0, 0)),
            "no ghost when B1 path not taken"
        );
    }

    #[test]
    fn ghost_hit_in_b1_grows_p() {
        let mut arc = ArcPolicy::new(2);
        // Put key 0 in T2, so the next overflow demotes from T1 into B1.
        miss(&mut arc, key(0, 0, 0));
        arc.on_access(key(0, 0, 0)); // T2 = [0]
        miss(&mut arc, key(0, 0, 1)); // T1 = [1]
        miss(&mut arc, key(0, 0, 2)); // REPLACE: T1 LRU (1) → B1
        assert!(arc.b1.contains(&key(0, 0, 1)));
        let p_before = arc.target_p();
        miss(&mut arc, key(0, 0, 1)); // ghost hit in B1
        assert!(arc.target_p() > p_before);
        // Ghost-hit key is resident again, in T2.
        assert!(arc.t2.contains(&key(0, 0, 1)));
    }

    #[test]
    fn ghost_hit_in_b2_shrinks_p() {
        let mut arc = ArcPolicy::new(2);
        // Fill T2 entirely, then overflow: REPLACE takes the T2 LRU → B2.
        miss(&mut arc, key(0, 0, 0));
        arc.on_access(key(0, 0, 0)); // T2 = [0]
        miss(&mut arc, key(0, 0, 1));
        arc.on_access(key(0, 0, 1)); // T2 = [0, 1]
        miss(&mut arc, key(0, 0, 2)); // T1 empty → T2 LRU (0) → B2
        assert!(
            arc.b2.contains(&key(0, 0, 0)),
            "b2={:?}",
            arc.b2.iter().collect::<Vec<_>>()
        );
        // Grow p first so there is something to shrink.
        arc.p = 2;
        miss(&mut arc, key(0, 0, 0));
        assert!(arc.target_p() < 2);
        assert!(arc.t2.contains(&key(0, 0, 0)));
    }

    #[test]
    fn scan_resistance() {
        // ARC's signature: a one-pass scan must not flush the frequently
        // used working set out of T2.
        let mut arc = ArcPolicy::new(4);
        let hot: Vec<Key> = (0..2).map(|i| key(0, 0, i)).collect();
        for &h in &hot {
            miss(&mut arc, h);
            arc.on_access(h); // promote to T2
        }
        // Long cold scan.
        for i in 100..130 {
            let k = key(0, 1, i);
            if !arc.on_access(k) {
                arc.on_insert(k, 1);
            }
        }
        for &h in &hot {
            assert!(arc.contains(&h), "hot key {h} flushed by scan");
        }
    }

    #[test]
    fn total_directory_bounded_by_two_c() {
        let mut arc = ArcPolicy::new(3);
        for i in 0..100 {
            let k = key(0, 0, i);
            if !arc.on_access(k) {
                arc.on_insert(k, 1);
            }
            let total = arc.t1.len() + arc.t2.len() + arc.b1.len() + arc.b2.len();
            assert!(total <= 2 * 3, "directory {total} exceeds 2c");
        }
    }
}
