//! Re-export of the workspace's fast hasher, which now lives in
//! [`fbf_codes::hash`] so that every layer (workload generation, scheme
//! planning, cache policies, the simulator) can share it. Kept as a module
//! so `fbf_cache::hash::FxHashMap` paths keep working.

pub use fbf_codes::hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
