//! Partial-stripe error campaign generation (§IV-A's synthetic traces).

use fbf_codes::hash::FxHashSet;
use fbf_codes::StripeCode;
use fbf_recovery::{ErrorGroup, PartialStripeError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Distribution of error run lengths (in chunks).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LengthDistribution {
    /// Uniform on `[1, p-1]` — the paper's primary setting ("the sizes of
    /// partial stripe errors obeys uniform distribution, with the average
    /// number lies in the half size of the stripe").
    Uniform,
    /// Geometric with success probability `stop`, truncated to `[1, p-1]` —
    /// skews short, for the "other distributions" footnote.
    Geometric {
        /// Per-chunk stop probability in `(0, 1]`.
        stop: f64,
    },
    /// Every error is exactly `len` chunks (clamped to `[1, p-1]`).
    Fixed(usize),
}

/// Configuration of one error campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorGenConfig {
    /// Stripes in the array's data zone.
    pub stripes: u32,
    /// Number of partial stripe errors to produce (each on a distinct
    /// stripe).
    pub count: usize,
    /// Run-length distribution.
    pub length: LengthDistribution,
    /// Probability that an error lands near the previous one (spatial
    /// locality of latent sector errors; 0 disables clustering).
    pub clustering: f64,
    /// "Near" means within this many stripes.
    pub cluster_span: u32,
    /// Probability that a damaged stripe carries a *second* error on
    /// another disk (the spatially correlated multi-disk case; 0 disables).
    ///
    /// Note: chain-by-chain repair can be unorderable for some two-column
    /// patterns on STAR (its adjuster chains span many columns); such
    /// campaigns surface `SchemeError::Unschedulable` from planning and
    /// would be handled by joint decoding in a real controller. The
    /// adjuster-free codes (TIP/HDD1/Triple-STAR) schedule all two-column
    /// damage.
    pub multi_col_prob: f64,
    /// RNG seed — campaigns are fully reproducible.
    pub seed: u64,
}

impl ErrorGenConfig {
    /// A sensible default shaped like the paper's runs: moderate clustering,
    /// uniform lengths.
    pub fn paper_default(stripes: u32, count: usize, seed: u64) -> Self {
        ErrorGenConfig {
            stripes,
            count,
            length: LengthDistribution::Uniform,
            clustering: 0.5,
            cluster_span: 16,
            multi_col_prob: 0.0,
            seed,
        }
    }
}

/// Generate a campaign of partial stripe errors for `code`.
///
/// Every error sits on its own stripe (same-stripe damage merges into one
/// run in practice); the failed column, start row and length are sampled
/// per [`ErrorGenConfig`]. Panics if `count` exceeds `stripes` (cannot
/// place distinct-stripe errors).
pub fn generate_errors(code: &StripeCode, cfg: &ErrorGenConfig) -> ErrorGroup {
    assert!(
        cfg.count as u64 <= cfg.stripes as u64,
        "cannot place {} errors on {} stripes",
        cfg.count,
        cfg.stripes
    );
    let rows = code.rows();
    let max_len = rows; // p - 1 chunks
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut used: FxHashSet<u32> =
        FxHashSet::with_capacity_and_hasher(cfg.count, Default::default());
    let mut group = ErrorGroup::new();
    let mut last_stripe: Option<u32> = None;

    while used.len() < cfg.count {
        let stripe = match last_stripe {
            Some(prev) if rng.random_bool(cfg.clustering.clamp(0.0, 1.0)) => {
                // Spatially local: within cluster_span of the previous error.
                let lo = prev.saturating_sub(cfg.cluster_span);
                let hi = (prev.saturating_add(cfg.cluster_span)).min(cfg.stripes - 1);
                rng.random_range(lo..=hi)
            }
            _ => rng.random_range(0..cfg.stripes),
        };
        if !used.insert(stripe) {
            // Stripe already damaged; in a real array the runs would merge.
            // Resample (termination is guaranteed since count <= stripes and
            // the uniform branch eventually hits every free stripe).
            continue;
        }
        let col = rng.random_range(0..code.cols());
        let len = sample_length(&mut rng, cfg.length, max_len);
        let first_row = rng.random_range(0..=(rows - len));
        let e = PartialStripeError::new(code, stripe, col, first_row, len)
            .expect("sampled within bounds");
        group.push(e);
        // Spatially correlated second failure on another disk of the same
        // stripe (counted within `count`: it damages no new stripe).
        if rng.random_bool(cfg.multi_col_prob.clamp(0.0, 1.0)) {
            let col2 = (col + 1 + rng.random_range(0..code.cols() - 1)) % code.cols();
            let len2 = sample_length(&mut rng, cfg.length, max_len);
            let first2 = rng.random_range(0..=(rows - len2));
            group.push(
                PartialStripeError::new(code, stripe, col2, first2, len2)
                    .expect("sampled within bounds"),
            );
        }
        last_stripe = Some(stripe);
    }
    group
}

fn sample_length(rng: &mut StdRng, dist: LengthDistribution, max_len: usize) -> usize {
    match dist {
        LengthDistribution::Uniform => rng.random_range(1..=max_len),
        LengthDistribution::Geometric { stop } => {
            let stop = stop.clamp(1e-6, 1.0);
            let mut len = 1;
            while len < max_len && !rng.random_bool(stop) {
                len += 1;
            }
            len
        }
        LengthDistribution::Fixed(len) => len.clamp(1, max_len),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbf_codes::CodeSpec;

    fn code() -> StripeCode {
        StripeCode::build(CodeSpec::Tip, 7).unwrap()
    }

    #[test]
    fn generates_requested_count_on_distinct_stripes() {
        let cfg = ErrorGenConfig::paper_default(1000, 200, 42);
        let g = generate_errors(&code(), &cfg);
        assert_eq!(g.len(), 200);
        let stripes: FxHashSet<u32> = g.errors.iter().map(|e| e.stripe).collect();
        assert_eq!(stripes.len(), 200, "one error per stripe");
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = ErrorGenConfig::paper_default(500, 100, 7);
        let a = generate_errors(&code(), &cfg);
        let b = generate_errors(&code(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = ErrorGenConfig::paper_default(500, 100, 7);
        let a = generate_errors(&code(), &cfg);
        cfg.seed = 8;
        let b = generate_errors(&code(), &cfg);
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_lengths_cover_full_range_and_average_half() {
        let cfg = ErrorGenConfig {
            clustering: 0.0,
            ..ErrorGenConfig::paper_default(20_000, 5_000, 3)
        };
        let c = code();
        let g = generate_errors(&c, &cfg);
        let lens: Vec<usize> = g.errors.iter().map(|e| e.len).collect();
        assert_eq!(*lens.iter().min().unwrap(), 1);
        assert_eq!(*lens.iter().max().unwrap(), c.rows());
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        let expect = (1 + c.rows()) as f64 / 2.0;
        assert!(
            (mean - expect).abs() < 0.15,
            "mean length {mean} should approximate {expect}"
        );
    }

    #[test]
    fn errors_fit_inside_stripes() {
        let c = code();
        let cfg = ErrorGenConfig::paper_default(300, 300, 11);
        let g = generate_errors(&c, &cfg);
        for e in &g.errors {
            assert!(e.first_row + e.len <= c.rows());
            assert!(e.col < c.cols());
            assert!(e.len >= 1);
        }
    }

    #[test]
    fn clustering_concentrates_stripes() {
        let c = code();
        let spread = |clustering: f64| -> f64 {
            let cfg = ErrorGenConfig {
                clustering,
                cluster_span: 4,
                ..ErrorGenConfig::paper_default(100_000, 500, 99)
            };
            let g = generate_errors(&c, &cfg);
            let mut gaps: Vec<u64> = g
                .errors
                .windows(2)
                .map(|w| w[0].stripe.abs_diff(w[1].stripe) as u64)
                .collect();
            gaps.sort_unstable();
            gaps[gaps.len() / 2] as f64 // median consecutive gap
        };
        assert!(
            spread(0.9) < spread(0.0),
            "clustered campaigns must have smaller consecutive-stripe gaps"
        );
    }

    #[test]
    fn geometric_skews_short() {
        let c = code();
        let cfg = ErrorGenConfig {
            length: LengthDistribution::Geometric { stop: 0.6 },
            clustering: 0.0,
            ..ErrorGenConfig::paper_default(20_000, 4_000, 5)
        };
        let g = generate_errors(&c, &cfg);
        let mean = g.errors.iter().map(|e| e.len).sum::<usize>() as f64 / g.len() as f64;
        assert!(mean < 2.5, "geometric(0.6) mean {mean} should be short");
    }

    #[test]
    fn fixed_lengths() {
        let c = code();
        let cfg = ErrorGenConfig {
            length: LengthDistribution::Fixed(3),
            ..ErrorGenConfig::paper_default(100, 50, 1)
        };
        let g = generate_errors(&c, &cfg);
        assert!(g.errors.iter().all(|e| e.len == 3));
    }

    #[test]
    fn multi_col_damage_lands_on_distinct_disks() {
        let c = code();
        let cfg = ErrorGenConfig {
            multi_col_prob: 1.0,
            ..ErrorGenConfig::paper_default(1000, 100, 77)
        };
        let g = generate_errors(&c, &cfg);
        assert_eq!(g.errors.len(), 200, "every stripe gets a second error");
        let damages = g.damage_by_stripe();
        assert_eq!(damages.len(), 100);
        for d in &damages {
            let cols: FxHashSet<u16> = d.cells.iter().map(|c| c.col).collect();
            assert_eq!(
                cols.len(),
                2,
                "stripe {} damage on {} disks",
                d.stripe,
                cols.len()
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn too_many_errors_rejected() {
        let cfg = ErrorGenConfig::paper_default(10, 11, 0);
        generate_errors(&code(), &cfg);
    }
}
