//! # fbf-workload — synthetic traces for the FBF evaluation
//!
//! The paper evaluates with "synthetic traces of situations where disks
//! with random size of partial stripes fail" (§IV-A). The authors' traces
//! were never released, so this crate regenerates the same *distribution
//! family* they describe, seeded for reproducibility:
//!
//! * [`errors`] — partial-stripe error campaigns: run lengths uniform on
//!   `[1, p-1]` chunks (mean `(p-1)/2`), contiguous within a stripe, with
//!   optional spatial clustering of affected stripes (latent sector errors
//!   are strongly spatially local — the paper cites \[7\], \[8\]). Geometric
//!   and fixed-length distributions cover the paper's footnote that "FBF
//!   can be proved under other distributions as well".
//! * [`app_io`] — a background application read stream, for experiments
//!   where recovery competes with foreground traffic.
//! * [`trace`] — a plain-text serialisation of error campaigns so runs can
//!   be archived and replayed without extra dependencies.
//! * [`loadgen`] — campaign sharding and per-class latency aggregation for
//!   driving the repair daemon from concurrent client connections.

pub mod app_io;
pub mod errors;
pub mod loadgen;
pub mod trace;

pub use app_io::{generate_app_reads, generate_scrub_reads, AppIoConfig, ScrubConfig};
pub use errors::{generate_errors, ErrorGenConfig, LengthDistribution};
pub use loadgen::{client_trace_ids, shard_campaign, LoadReport};
pub use trace::{parse_trace, render_trace, validate_against};
