//! Plain-text error-trace serialisation.
//!
//! One line per error: `stripe col first_row len`, `#`-comments and blank
//! lines allowed. Keeps campaigns archivable/replayable without pulling a
//! serialisation dependency beyond what the workspace already approves.

use fbf_recovery::{ErrorGroup, PartialStripeError};

/// Render a campaign as trace text.
pub fn render_trace(group: &ErrorGroup) -> String {
    let mut out = String::with_capacity(group.len() * 16 + 64);
    out.push_str("# fbf partial-stripe error trace v1\n");
    out.push_str("# stripe col first_row len\n");
    for e in &group.errors {
        out.push_str(&format!(
            "{} {} {} {}\n",
            e.stripe, e.col, e.first_row, e.len
        ));
    }
    out
}

/// Parse trace text back into a campaign. Validation against a specific
/// code's geometry is the caller's job (traces are geometry-agnostic).
pub fn parse_trace(text: &str) -> Result<ErrorGroup, String> {
    let mut group = ErrorGroup::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(format!(
                "line {}: expected 4 fields, got {}",
                lineno + 1,
                fields.len()
            ));
        }
        let parse = |i: usize| -> Result<usize, String> {
            fields[i]
                .parse::<usize>()
                .map_err(|e| format!("line {}: field {}: {e}", lineno + 1, i + 1))
        };
        let stripe = parse(0)? as u32;
        let (col, first_row, len) = (parse(1)?, parse(2)?, parse(3)?);
        if len == 0 {
            return Err(format!("line {}: zero-length error", lineno + 1));
        }
        group.push(PartialStripeError {
            stripe,
            col,
            first_row,
            len,
        });
    }
    Ok(group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::{generate_errors, ErrorGenConfig};
    use fbf_codes::{CodeSpec, StripeCode};

    #[test]
    fn roundtrip() {
        let code = StripeCode::build(CodeSpec::Tip, 7).unwrap();
        let g = generate_errors(&code, &ErrorGenConfig::paper_default(100, 40, 21));
        let text = render_trace(&g);
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(g, parsed);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n3 0 1 2\n   \n# tail\n";
        let g = parse_trace(text).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.errors[0].stripe, 3);
        assert_eq!(g.errors[0].len, 2);
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(parse_trace("1 2 3").is_err());
        assert!(parse_trace("a b c d").is_err());
        assert!(parse_trace("1 2 3 0").is_err(), "zero length rejected");
    }

    #[test]
    fn empty_trace_is_empty_group() {
        assert!(parse_trace("# nothing\n").unwrap().is_empty());
    }
}
