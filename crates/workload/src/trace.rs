//! Plain-text error-trace serialisation.
//!
//! One line per error: `stripe col first_row len`, `#`-comments and blank
//! lines allowed. Keeps campaigns archivable/replayable without pulling a
//! serialisation dependency beyond what the workspace already approves.

use fbf_codes::StripeCode;
use fbf_recovery::{ErrorGroup, PartialStripeError};

/// Render a campaign as trace text.
pub fn render_trace(group: &ErrorGroup) -> String {
    let mut out = String::with_capacity(group.len() * 16 + 64);
    out.push_str("# fbf partial-stripe error trace v1\n");
    out.push_str("# stripe col first_row len\n");
    for e in &group.errors {
        out.push_str(&format!(
            "{} {} {} {}\n",
            e.stripe, e.col, e.first_row, e.len
        ));
    }
    out
}

/// Parse trace text back into a campaign. Validation against a specific
/// code's geometry is [`validate_against`]'s job (traces themselves are
/// geometry-agnostic), but structural nonsense — malformed lines,
/// zero-length errors, stripe numbers past `u32` — is rejected here.
pub fn parse_trace(text: &str) -> Result<ErrorGroup, String> {
    let mut group = ErrorGroup::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(format!(
                "line {}: expected 4 fields, got {}",
                lineno + 1,
                fields.len()
            ));
        }
        let parse = |i: usize| -> Result<usize, String> {
            fields[i]
                .parse::<usize>()
                .map_err(|e| format!("line {}: field {}: {e}", lineno + 1, i + 1))
        };
        // Checked, not `as u32`: a stripe number past u32::MAX must be an
        // error, not a silent truncation onto some unrelated stripe.
        let stripe = u32::try_from(parse(0)?)
            .map_err(|_| format!("line {}: stripe {} exceeds u32::MAX", lineno + 1, fields[0]))?;
        let (col, first_row, len) = (parse(1)?, parse(2)?, parse(3)?);
        if len == 0 {
            return Err(format!("line {}: zero-length error", lineno + 1));
        }
        group.push(PartialStripeError {
            stripe,
            col,
            first_row,
            len,
        });
    }
    Ok(group)
}

/// Check every error of a parsed trace against `code`'s geometry, using
/// the same constructor the synthetic generator goes through
/// ([`PartialStripeError::new`]): column in range, the run of rows within
/// the stripe, length under `p - 1`. `stripes` bounds the stripe index
/// (the campaign being replayed must fit the configured array).
pub fn validate_against(
    group: &ErrorGroup,
    code: &StripeCode,
    stripes: usize,
) -> Result<(), String> {
    for (i, e) in group.errors.iter().enumerate() {
        if e.stripe as usize >= stripes {
            return Err(format!(
                "error {}: stripe {} out of range (campaign has {} stripes)",
                i + 1,
                e.stripe,
                stripes
            ));
        }
        PartialStripeError::new(code, e.stripe, e.col, e.first_row, e.len)
            .map_err(|msg| format!("error {}: {msg}", i + 1))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::{generate_errors, ErrorGenConfig};
    use fbf_codes::CodeSpec;

    #[test]
    fn roundtrip() {
        let code = StripeCode::build(CodeSpec::Tip, 7).unwrap();
        let g = generate_errors(&code, &ErrorGenConfig::paper_default(100, 40, 21));
        let text = render_trace(&g);
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(g, parsed);
        validate_against(&parsed, &code, 100).unwrap();
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n3 0 1 2\n   \n# tail\n";
        let g = parse_trace(text).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.errors[0].stripe, 3);
        assert_eq!(g.errors[0].len, 2);
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(parse_trace("1 2 3").is_err());
        assert!(parse_trace("a b c d").is_err());
        assert!(parse_trace("1 2 3 0").is_err(), "zero length rejected");
    }

    #[test]
    fn oversized_stripe_is_an_error_not_a_truncation() {
        // 2^32 used to truncate to stripe 0 via `as u32`; it must fail.
        let text = "4294967296 0 0 1\n";
        let err = parse_trace(text).unwrap_err();
        assert!(err.contains("u32::MAX"), "{err}");
        // u32::MAX itself still parses (the type's full range is legal).
        assert!(parse_trace("4294967295 0 0 1\n").is_ok());
    }

    #[test]
    fn out_of_geometry_traces_rejected() {
        let code = StripeCode::build(CodeSpec::Tip, 7).unwrap();
        // TIP p=7 has 7 data columns (0..7) and 7 rows; len < p - 1.
        let bad_col = parse_trace("0 99 0 1\n").unwrap();
        assert!(validate_against(&bad_col, &code, 10).is_err());
        let bad_run = parse_trace("0 0 6 3\n").unwrap();
        assert!(validate_against(&bad_run, &code, 10).is_err());
        let bad_stripe = parse_trace("10 0 0 1\n").unwrap();
        assert!(validate_against(&bad_stripe, &code, 10).is_err());
        let fine = parse_trace("9 0 0 1\n").unwrap();
        assert!(validate_against(&fine, &code, 10).is_ok());
    }

    #[test]
    fn empty_trace_is_empty_group() {
        assert!(parse_trace("# nothing\n").unwrap().is_empty());
    }
}
