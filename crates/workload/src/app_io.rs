//! Background application I/O during reconstruction.
//!
//! The paper motivates holding favorable blocks partly because "the
//! application can access these chunks during partial stripe
//! reconstruction" (§III-A-1). This generator produces a foreground read
//! stream — uniform or hot-spotted — that the online-recovery experiments
//! run alongside the reconstruction workers.

use fbf_codes::{Cell, ChunkId, StripeCode};
use fbf_disksim::{Op, RequestClass, SimTime, WorkerScript};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the application read stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppIoConfig {
    /// Stripes in the array's data zone.
    pub stripes: u32,
    /// Number of chunk reads to issue.
    pub reads: usize,
    /// Fraction of reads targeting the hot set (0 = uniform).
    pub hot_fraction: f64,
    /// Size of the hot set as a fraction of all stripes.
    pub hot_set: f64,
    /// Think time between consecutive reads.
    pub think_time: SimTime,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AppIoConfig {
    fn default() -> Self {
        AppIoConfig {
            stripes: 1024,
            reads: 1000,
            hot_fraction: 0.8,
            hot_set: 0.2,
            think_time: SimTime::from_millis(1),
            seed: 0,
        }
    }
}

/// Generate one application worker's read script. Reads target data cells
/// only (applications never address parity).
pub fn generate_app_reads(code: &StripeCode, cfg: &AppIoConfig) -> WorkerScript {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA99_C0FFEE);
    let data_cells: Vec<Cell> = code.data_cells();
    assert!(!data_cells.is_empty());
    let hot_stripes = ((cfg.stripes as f64 * cfg.hot_set) as u32).max(1);

    let mut ops = Vec::with_capacity(cfg.reads * 2);
    for _ in 0..cfg.reads {
        let stripe = if rng.random_bool(cfg.hot_fraction.clamp(0.0, 1.0)) {
            rng.random_range(0..hot_stripes)
        } else {
            rng.random_range(0..cfg.stripes)
        };
        let cell = data_cells[rng.random_range(0..data_cells.len())];
        ops.push(Op::Read {
            chunk: ChunkId::new(stripe, cell),
            priority: 1,
        });
        if cfg.think_time > SimTime::ZERO {
            ops.push(Op::Compute {
                duration: cfg.think_time,
            });
        }
    }
    WorkerScript {
        ops,
        class: RequestClass::App,
        ..Default::default()
    }
}

/// Configuration of a background scrub pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScrubConfig {
    /// Stripes in the array's data zone.
    pub stripes: u32,
    /// Stride between scrubbed stripes (1 = every stripe; a full-array
    /// scrub during recovery would swamp the experiment).
    pub stride: u32,
    /// Pause between consecutive stripe verifications.
    pub pause: SimTime,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        ScrubConfig {
            stripes: 1024,
            stride: 16,
            pause: SimTime::from_millis(10),
        }
    }
}

/// Generate a background scrub worker: a sequential sweep reading every
/// cell (data *and* parity — scrub verifies redundancy) of every
/// `stride`-th stripe, tagged [`RequestClass::Scrub`] so its disk traffic
/// is attributed separately from app and recovery I/O.
pub fn generate_scrub_reads(code: &StripeCode, cfg: &ScrubConfig) -> WorkerScript {
    let stride = cfg.stride.max(1);
    let cells: Vec<Cell> = code.layout().cells().collect();
    let mut ops = Vec::new();
    let mut stripe = 0u32;
    while stripe < cfg.stripes {
        for &cell in &cells {
            ops.push(Op::Read {
                chunk: ChunkId::new(stripe, cell),
                priority: 1,
            });
        }
        if cfg.pause > SimTime::ZERO {
            ops.push(Op::Compute {
                duration: cfg.pause,
            });
        }
        stripe += stride;
    }
    WorkerScript {
        ops,
        class: RequestClass::Scrub,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbf_codes::CodeSpec;

    fn code() -> StripeCode {
        StripeCode::build(CodeSpec::Tip, 7).unwrap()
    }

    #[test]
    fn produces_requested_reads() {
        let cfg = AppIoConfig {
            reads: 100,
            ..Default::default()
        };
        let s = generate_app_reads(&code(), &cfg);
        assert_eq!(s.reads(), 100);
    }

    #[test]
    fn reads_target_data_cells_only() {
        let c = code();
        let cfg = AppIoConfig {
            reads: 500,
            ..Default::default()
        };
        let s = generate_app_reads(&c, &cfg);
        for op in &s.ops {
            if let Op::Read { chunk, .. } = op {
                assert!(c.layout().kind(chunk.cell).is_data(), "{chunk}");
                assert!(chunk.stripe < cfg.stripes);
            }
        }
    }

    #[test]
    fn hot_spotting_concentrates_traffic() {
        let c = code();
        let hot = AppIoConfig {
            reads: 2000,
            hot_fraction: 0.9,
            hot_set: 0.1,
            seed: 5,
            ..Default::default()
        };
        let s = generate_app_reads(&c, &hot);
        let hot_stripes = (hot.stripes as f64 * hot.hot_set) as u32;
        let in_hot = s
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Read { chunk, .. } if chunk.stripe < hot_stripes))
            .count();
        assert!(
            in_hot as f64 > 0.8 * s.reads() as f64,
            "hot set captured only {in_hot} of {}",
            s.reads()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let c = code();
        let cfg = AppIoConfig {
            reads: 50,
            seed: 9,
            ..Default::default()
        };
        assert_eq!(generate_app_reads(&c, &cfg), generate_app_reads(&c, &cfg));
    }

    #[test]
    fn zero_think_time_emits_reads_only() {
        let c = code();
        let cfg = AppIoConfig {
            reads: 10,
            think_time: SimTime::ZERO,
            ..Default::default()
        };
        let s = generate_app_reads(&c, &cfg);
        assert_eq!(s.ops.len(), 10);
    }

    #[test]
    fn app_stream_is_classed_app() {
        let s = generate_app_reads(&code(), &AppIoConfig::default());
        assert_eq!(s.class, RequestClass::App);
    }

    #[test]
    fn scrub_sweeps_strided_stripes_and_is_classed_scrub() {
        let c = code();
        let cfg = ScrubConfig {
            stripes: 64,
            stride: 16,
            pause: SimTime::ZERO,
        };
        let s = generate_scrub_reads(&c, &cfg);
        assert_eq!(s.class, RequestClass::Scrub);
        let cells_per_stripe = c.layout().cells().count();
        assert_eq!(s.reads(), 4 * cells_per_stripe, "stripes 0,16,32,48");
        // Scrub reads parity cells too — it verifies redundancy.
        let touches_parity = s.ops.iter().any(
            |op| matches!(op, Op::Read { chunk, .. } if !c.layout().kind(chunk.cell).is_data()),
        );
        assert!(touches_parity);
    }

    #[test]
    fn scrub_zero_stride_clamps() {
        let cfg = ScrubConfig {
            stripes: 4,
            stride: 0,
            pause: SimTime::ZERO,
        };
        let s = generate_scrub_reads(&code(), &cfg);
        assert!(s.reads() > 0, "stride 0 must clamp to 1, not loop forever");
    }
}
