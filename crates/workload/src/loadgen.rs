//! Trace-driven load generation for the repair daemon.
//!
//! `fbf client load` replays an error campaign against a running `fbfd`
//! from several concurrent connections. This module holds the pure parts
//! — sharding a campaign across connections and aggregating per-class
//! round-trip latencies — so they stay testable without a live socket.
//!
//! Latencies land in the mergeable [`Digest`] histograms the
//! observability layer already exposes, which means a load run's report
//! composes the same way sweep metrics do: each connection records into
//! its own [`LoadReport`], the driver merges them, and the quantile
//! estimates stay within one bucket width of exact.

use fbf_obs::Digest;
use fbf_recovery::ErrorGroup;
use std::collections::BTreeMap;

/// Split a campaign into `shards` disjoint sub-campaigns, round-robin by
/// error index. Round-robin (rather than contiguous chunks) keeps each
/// shard's stripe spread representative of the whole campaign, so every
/// connection exercises a similar mix of light and heavy stripes.
///
/// The union of the shards is exactly the input, relative order within a
/// shard is preserved, and no shard is emitted empty: with fewer errors
/// than `shards`, only `group.len()` shards come back. `shards == 0` is
/// treated as 1.
pub fn shard_campaign(group: &ErrorGroup, shards: usize) -> Vec<ErrorGroup> {
    let shards = shards.max(1).min(group.len().max(1));
    let mut out: Vec<ErrorGroup> = (0..shards).map(|_| ErrorGroup::new()).collect();
    for (i, e) in group.errors.iter().enumerate() {
        out[i % shards].push(*e);
    }
    out.retain(|g| !g.errors.is_empty());
    out
}

/// Mint one trace id per load connection.
///
/// The daemon adopts a request-supplied `trace_id` (falling back to its
/// own allocator), so a load run that stamps its requests can later pick
/// each connection's spans out of the daemon's trace stream. Ids carry
/// `salt` (typically the client pid) in the high bits and the connection
/// index in the low bits: disjoint from the daemon's small sequential
/// ids and from other load clients running against the same daemon. All
/// ids stay below 2^53 so they survive a round-trip through JSON
/// numbers.
pub fn client_trace_ids(salt: u64, connections: usize) -> Vec<u64> {
    let salt = (salt & 0x1fff_ffff).max(1); // 29 bits; 29 + 24 = 53
    (0..connections)
        .map(|i| (salt << 24) | (i as u64 + 1))
        .collect()
}

/// Latency/outcome aggregation for one load run (or one connection's
/// slice of it — reports [`merge`](LoadReport::merge) associatively).
///
/// Classes are free-form labels, one digest per request kind the driver
/// issues (`repair`, `status`, `read`, …).
#[derive(Debug, Default)]
pub struct LoadReport {
    classes: BTreeMap<String, Digest>,
    failures: BTreeMap<String, u64>,
}

impl LoadReport {
    /// Empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one successful request's round-trip time.
    pub fn record(&mut self, class: &str, latency_ns: u64) {
        self.classes
            .entry(class.to_string())
            .or_default()
            .record_ns(latency_ns);
    }

    /// Record one failed request (error reply, transport error, timeout).
    pub fn record_failure(&mut self, class: &str) {
        *self.failures.entry(class.to_string()).or_insert(0) += 1;
    }

    /// Fold another report in (order-independent).
    pub fn merge(&mut self, other: &LoadReport) {
        for (class, digest) in &other.classes {
            self.classes.entry(class.clone()).or_default().merge(digest);
        }
        for (class, n) in &other.failures {
            *self.failures.entry(class.clone()).or_insert(0) += n;
        }
    }

    /// Successful requests of one class (0 for unseen classes).
    pub fn count(&self, class: &str) -> u64 {
        self.classes.get(class).map_or(0, Digest::count)
    }

    /// Failures of one class.
    pub fn failure_count(&self, class: &str) -> u64 {
        self.failures.get(class).copied().unwrap_or(0)
    }

    /// Successful requests across every class.
    pub fn total(&self) -> u64 {
        self.classes.values().map(Digest::count).sum()
    }

    /// Failures across every class.
    pub fn total_failures(&self) -> u64 {
        self.failures.values().sum()
    }

    /// The class's latency digest, when it saw traffic.
    pub fn digest(&self, class: &str) -> Option<&Digest> {
        self.classes.get(class)
    }

    /// Human-readable summary table: one row per class with count, mean,
    /// and tail quantiles in milliseconds.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<10} {:>8} {:>6} {:>10} {:>10} {:>10} {:>10}\n",
            "class", "count", "fail", "mean_ms", "p50_ms", "p99_ms", "p999_ms"
        );
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut rows: BTreeMap<&str, ()> = BTreeMap::new();
        for class in self.classes.keys() {
            rows.insert(class, ());
        }
        for class in self.failures.keys() {
            rows.insert(class, ());
        }
        for (class, ()) in rows {
            let (count, mean, p50, p99, p999) = match self.classes.get(class) {
                Some(d) if !d.is_empty() => (
                    d.count(),
                    (d.sum_ns() / d.count() as u128) as u64,
                    d.quantile_ns(0.50).unwrap_or(0),
                    d.quantile_ns(0.99).unwrap_or(0),
                    d.quantile_ns(0.999).unwrap_or(0),
                ),
                _ => (0, 0, 0, 0, 0),
            };
            out.push_str(&format!(
                "{:<10} {:>8} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>10.3}\n",
                class,
                count,
                self.failure_count(class),
                ms(mean),
                ms(p50),
                ms(p99),
                ms(p999),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::{generate_errors, ErrorGenConfig};
    use fbf_codes::{CodeSpec, StripeCode};

    fn campaign(n: usize) -> ErrorGroup {
        let code = StripeCode::build(CodeSpec::Tip, 7).unwrap();
        generate_errors(&code, &ErrorGenConfig::paper_default(4096, n, 21))
    }

    #[test]
    fn shards_partition_the_campaign() {
        let group = campaign(100);
        let shards = shard_campaign(&group, 7);
        assert_eq!(shards.len(), 7);
        let total: usize = shards.iter().map(|s| s.errors.len()).sum();
        assert_eq!(total, group.errors.len());
        // Round-robin: shard sizes differ by at most one.
        let sizes: Vec<usize> = shards.iter().map(|s| s.errors.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "{sizes:?}");
        // Reassembling round-robin reproduces the original order.
        let mut rebuilt = Vec::new();
        for i in 0..group.errors.len() {
            rebuilt.push(shards[i % 7].errors[i / 7]);
        }
        assert_eq!(rebuilt, group.errors);
    }

    #[test]
    fn degenerate_shard_counts() {
        let group = campaign(5);
        assert_eq!(shard_campaign(&group, 0).len(), 1);
        assert_eq!(shard_campaign(&group, 1)[0], group);
        // More shards than errors: one error each, no empties.
        let many = shard_campaign(&group, 64);
        assert_eq!(many.len(), group.errors.len());
        assert!(many.iter().all(|s| s.errors.len() == 1));
        // Empty campaign shards to nothing.
        assert!(shard_campaign(&ErrorGroup::new(), 4).is_empty());
    }

    #[test]
    fn client_trace_ids_are_distinct_and_json_safe() {
        let a = client_trace_ids(12345, 8);
        assert_eq!(a.len(), 8);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 8);
        assert!(a.iter().all(|&id| id != 0 && id < (1u64 << 53)), "{a:?}");
        // Different salts (two clients) never collide; salt 0 still mints.
        let b = client_trace_ids(54321, 8);
        assert!(a.iter().all(|id| !b.contains(id)));
        assert!(client_trace_ids(0, 1)[0] != 0);
        // Exactly round-trippable through an f64 JSON number.
        for &id in &a {
            assert_eq!(id as f64 as u64, id);
        }
    }

    #[test]
    fn report_merges_like_a_single_recorder() {
        let mut a = LoadReport::new();
        let mut b = LoadReport::new();
        let mut whole = LoadReport::new();
        for i in 0..100u64 {
            let ns = (i + 1) * 1_000_000; // 1..=100 ms
            let part = if i % 2 == 0 { &mut a } else { &mut b };
            part.record("repair", ns);
            whole.record("repair", ns);
        }
        b.record_failure("status");
        let mut merged = LoadReport::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.count("repair"), whole.count("repair"));
        assert_eq!(
            merged.digest("repair").unwrap().quantile_ns(0.99),
            whole.digest("repair").unwrap().quantile_ns(0.99)
        );
        assert_eq!(merged.failure_count("status"), 1);
        assert_eq!(merged.total(), 100);
        assert_eq!(merged.total_failures(), 1);
    }

    #[test]
    fn render_lists_every_class_including_failure_only_ones() {
        let mut r = LoadReport::new();
        r.record("repair", 2_000_000);
        r.record_failure("read");
        let table = r.render();
        assert!(table.contains("repair"), "{table}");
        assert!(table.contains("read"), "{table}");
        assert!(table.lines().count() >= 3, "{table}");
    }
}
