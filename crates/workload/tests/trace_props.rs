//! Property tests for the plain-text error-trace parser.
//!
//! Two families: well-formed campaigns must survive a render → parse
//! round trip exactly, and structurally corrupted text must come back as
//! `Err`, never a panic or a silently different campaign.

use fbf_codes::{CodeSpec, StripeCode};
use fbf_recovery::{ErrorGroup, PartialStripeError};
use fbf_workload::{parse_trace, render_trace, validate_against};
use proptest::prelude::*;

fn to_group(tuples: Vec<(u32, usize, usize, usize)>) -> ErrorGroup {
    let mut g = ErrorGroup::new();
    for (stripe, col, first_row, len) in tuples {
        g.push(PartialStripeError {
            stripe,
            col,
            first_row,
            len,
        });
    }
    g
}

/// Arbitrary *geometry-valid* error groups for the TIP code at p = 7
/// (6 rows, 8 columns, runs capped at p - 1 = 6 rows).
fn group_strategy() -> impl Strategy<Value = ErrorGroup> {
    proptest::collection::vec((0u32..200, 0usize..8, 0usize..6, 1usize..=6), 0..40).prop_map(
        |tuples| {
            to_group(
                tuples
                    .into_iter()
                    .map(|(s, c, r, l)| (s, c, r, l.min(6 - r)))
                    .collect(),
            )
        },
    )
}

/// Arbitrary structurally-valid trace *values*, unconstrained by any
/// code's geometry — parse_trace must accept these; validate_against
/// decides separately.
fn raw_group_strategy(min: usize) -> impl Strategy<Value = ErrorGroup> {
    proptest::collection::vec(
        (0u32..=u32::MAX, 0usize..64, 0usize..64, 1usize..64),
        min..40,
    )
    .prop_map(to_group)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// render → parse is the identity on any structurally valid group,
    /// whatever the geometry.
    #[test]
    fn roundtrip_is_identity(group in raw_group_strategy(0)) {
        let text = render_trace(&group);
        let parsed = parse_trace(&text).expect("rendered traces always parse");
        prop_assert_eq!(parsed, group);
    }

    /// Geometry-valid groups also pass validate_against after the trip.
    #[test]
    fn roundtrip_validates(group in group_strategy()) {
        let code = StripeCode::build(CodeSpec::Tip, 7).unwrap();
        let parsed = parse_trace(&render_trace(&group)).unwrap();
        validate_against(&parsed, &code, 200).expect("geometry-valid group validates");
    }

    /// Interleaving comments, blank lines, and stray whitespace around a
    /// rendered trace never changes what parses out of it.
    #[test]
    fn noise_lines_are_transparent(group in raw_group_strategy(0), seed in 0u64..u64::MAX) {
        let text = render_trace(&group);
        let mut noisy = String::new();
        let mut s = seed;
        for line in text.lines() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            match s >> 60 {
                0 => noisy.push_str("# interjection\n"),
                1 => noisy.push('\n'),
                2 => noisy.push_str("   \n"),
                _ => {}
            }
            noisy.push_str("  ");
            noisy.push_str(line);
            noisy.push('\n');
        }
        prop_assert_eq!(parse_trace(&noisy).unwrap(), group);
    }

    /// Wrong field counts are rejected with a line number, never a panic.
    /// (Arity 4 is the valid shape; 0 fields would be a blank line — both
    /// are mapped out of the generated range.)
    #[test]
    fn wrong_arity_rejected(
        arity in (1usize..7).prop_map(|n| if n >= 4 { n + 1 } else { n }),
        value in 0usize..100,
    ) {
        let line = vec![value.to_string(); arity].join(" ");
        let err = parse_trace(&line).unwrap_err();
        prop_assert!(err.contains("line 1"), "{}", err);
    }

    /// Non-numeric garbage in any field is an error naming the line.
    #[test]
    fn garbage_fields_rejected(which in 0usize..4, junk_idx in 0usize..6) {
        const JUNK: [&str; 6] = ["zero", "-1", "3.5", "0x10", "NaN", "!!"];
        let mut fields = ["1", "2", "3", "2"];
        fields[which] = JUNK[junk_idx];
        let line = fields.join(" ");
        let err = parse_trace(&line).unwrap_err();
        prop_assert!(err.contains("line 1"), "{}", err);
    }

    /// Zero-length runs and stripe numbers past u32 are always rejected.
    #[test]
    fn semantic_nonsense_rejected(stripe in 0u64..u64::MAX, col in 0usize..16) {
        let zero_len = format!("{stripe} {col} 0 0\n");
        prop_assert!(parse_trace(&zero_len).is_err());
        let too_big = format!("{} {col} 0 1\n", (u32::MAX as u64) + 1 + (stripe >> 33));
        let err = parse_trace(&too_big).unwrap_err();
        prop_assert!(err.contains("u32::MAX"), "{}", err);
    }

    /// A bad line anywhere poisons the whole parse — no partial groups
    /// leak out of a corrupt file.
    #[test]
    fn corruption_rejects_whole_file(group in raw_group_strategy(1), pos_seed in 0u64..u64::MAX) {
        let text = render_trace(&group);
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        // Corrupt one real (non-comment) line, chosen by the seed.
        let real: Vec<usize> = (0..lines.len())
            .filter(|&i| !lines[i].trim_start().starts_with('#') && !lines[i].trim().is_empty())
            .collect();
        let idx = real[(pos_seed as usize) % real.len()];
        lines[idx] = "0 0 zero 1".to_string();
        let corrupt = lines.join("\n");
        prop_assert!(parse_trace(&corrupt).is_err());
    }
}
