//! Microbenchmarks of the building blocks: XOR kernel, cache policies,
//! scheme generation, encode/decode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fbf_cache::{key, PolicyKind};
use fbf_codes::encode::encode;
use fbf_codes::{decode::decode, Cell, CodeSpec, Stripe, StripeCode};
use fbf_recovery::{
    scheme::generate, scrub::scrub, ErrorGroup, PartialStripeError, PriorityDictionary,
    RecoveryController, SchemeKind,
};
use std::hint::black_box;

fn bench_xor(c: &mut Criterion) {
    let mut group = c.benchmark_group("xor_into");
    for size in [4 << 10, 32 << 10, 256 << 10] {
        let src = vec![0xA5u8; size];
        let mut dst = vec![0x5Au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| fbf_codes::xor::xor_into(black_box(&mut dst), black_box(&src)));
        });
    }
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_access_insert");
    // A recovery-like trace: runs of sequential keys with periodic reuse.
    let trace: Vec<_> = (0..10_000u32)
        .map(|i| key(i / 40, (i % 6) as usize, ((i / 3) % 7) as usize))
        .collect();
    for kind in PolicyKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut policy = kind.build(64);
                    let mut hits = 0u64;
                    for &k in &trace {
                        if policy.on_access(k) {
                            hits += 1;
                        } else {
                            policy.on_insert(k, 1 + (k.cell.row % 3) as u8);
                        }
                    }
                    black_box(hits)
                });
            },
        );
    }
    group.finish();
}

fn bench_scheme_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheme_generation");
    for spec in CodeSpec::ALL {
        let code = StripeCode::build(spec, 13).unwrap();
        let error = PartialStripeError::new(&code, 0, 0, 0, code.rows() - 1).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(spec.name()), &spec, |b, _| {
            b.iter(|| {
                let s = generate(&code, &error, SchemeKind::FbfCycling).unwrap();
                let d = PriorityDictionary::from_scheme(&s);
                black_box((s.unique_reads(), d.len()))
            });
        });
    }
    group.finish();
}

fn bench_encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_decode");
    for spec in CodeSpec::ALL {
        let code = StripeCode::build(spec, 7).unwrap();
        let mut stripe = Stripe::patterned(code.layout(), 32 << 10);
        encode(&code, &mut stripe).unwrap();
        group.bench_with_input(BenchmarkId::new("encode", spec.name()), &spec, |b, _| {
            let mut s = stripe.clone();
            b.iter(|| encode(&code, black_box(&mut s)).unwrap());
        });
        group.bench_with_input(
            BenchmarkId::new("decode_partial", spec.name()),
            &spec,
            |b, _| {
                let erased: Vec<Cell> = (0..code.rows() - 1).map(|r| Cell::new(r, 0)).collect();
                b.iter_batched(
                    || {
                        let mut s = stripe.clone();
                        for &e in &erased {
                            s.erase(code.layout(), e);
                        }
                        s
                    },
                    |mut s| decode(&code, black_box(&mut s), &erased).unwrap(),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_scrub(c: &mut Criterion) {
    let mut group = c.benchmark_group("scrub_pass");
    for spec in [CodeSpec::Tip, CodeSpec::Star] {
        let code = StripeCode::build(spec, 11).unwrap();
        let mut stripe = Stripe::patterned(code.layout(), 4096);
        encode(&code, &mut stripe).unwrap();
        group.bench_with_input(BenchmarkId::new("clean", spec.name()), &spec, |b, _| {
            let mut s = stripe.clone();
            b.iter(|| black_box(scrub(&code, &mut s, 1)));
        });
        group.bench_with_input(
            BenchmarkId::new("one_corruption", spec.name()),
            &spec,
            |b, _| {
                b.iter_batched(
                    || {
                        let mut s = stripe.clone();
                        let mut buf = s.get(code.layout(), Cell::new(1, 2)).to_vec();
                        buf[0] ^= 0xFF;
                        s.set(code.layout(), Cell::new(1, 2), buf.into());
                        s
                    },
                    |mut s| black_box(scrub(&code, &mut s, 1)),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_controller_memoisation(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_controller");
    let code = StripeCode::build(CodeSpec::Tip, 13).unwrap();
    let mut campaign = ErrorGroup::new();
    for stripe in 0..256u32 {
        // 16 distinct formats recurring 16 times each.
        let first = (stripe as usize) % 4;
        let len = 1 + (stripe as usize / 4) % 4;
        campaign.push(PartialStripeError::new(&code, stripe, 0, first, len).unwrap());
    }
    group.bench_function("memoised_campaign", |b| {
        b.iter(|| {
            let mut ctl = RecoveryController::new(&code, SchemeKind::FbfCycling);
            black_box(ctl.plan_campaign(&campaign).unwrap())
        });
    });
    group.finish();
}

fn bench_ordered_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("ordered_queue_churn");
    // Steady-state churn at realistic occupancy: MRU touches (hit path)
    // plus evict/insert pairs (miss path), slab vs the map-backed oracle.
    const OCCUPANCY: usize = 4096;
    macro_rules! churn {
        ($group:expr, $label:expr, $queue:ty) => {
            $group.bench_function($label, |b| {
                let mut q = <$queue>::new();
                for i in 0..OCCUPANCY {
                    q.push_back(key(i as u32, 0, 0));
                }
                let mut next_id = OCCUPANCY as u32;
                b.iter(|| {
                    for i in (0..OCCUPANCY).step_by(3) {
                        q.touch(key(i as u32, 0, 0));
                    }
                    for _ in 0..OCCUPANCY / 4 {
                        q.pop_front();
                        q.push_back(key(next_id, 1, 1));
                        next_id += 1;
                    }
                    while q.len() < OCCUPANCY {
                        q.push_back(key(next_id, 2, 2));
                        next_id += 1;
                    }
                    black_box(q.len())
                });
            });
        };
    }
    churn!(group, "slab", fbf_cache::queue::OrderedQueue);
    churn!(group, "map_oracle", fbf_cache::queue::oracle::MapQueue);
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_xor, bench_policies, bench_ordered_queue, bench_scheme_generation,
        bench_encode_decode, bench_scrub, bench_controller_memoisation
);
criterion_main!(benches);
