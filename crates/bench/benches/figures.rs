//! Criterion wrappers over the figure experiments: one representative grid
//! point per paper artefact, so `cargo bench` exercises every reproduction
//! path end to end and tracks its cost over time. The full grids live in
//! the `fbf-bench` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbf_cache::PolicyKind;
use fbf_codes::CodeSpec;
use fbf_core::{run_experiment, ExperimentConfig};
use std::hint::black_box;

/// A scaled-down figure point that still runs the full pipeline.
fn cfg(code: CodeSpec, p: usize, policy: PolicyKind, cache_mb: usize) -> ExperimentConfig {
    ExperimentConfig::builder()
        .code(code)
        .p(p)
        .policy(policy)
        .cache_mb(cache_mb)
        .stripes(512)
        .error_count(128)
        .workers(32)
        .gen_threads(1)
        .build()
        .expect("bench grid point is valid")
}

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_hit_ratio_point");
    for policy in PolicyKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &policy| {
                let cfg = cfg(CodeSpec::Tip, 11, policy, 64);
                b.iter(|| black_box(run_experiment(&cfg).unwrap().hit_ratio));
            },
        );
    }
    group.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_read_ops_point");
    for p in [5usize, 13] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let cfg = cfg(CodeSpec::Tip, p, PolicyKind::Fbf, 64);
            b.iter(|| black_box(run_experiment(&cfg).unwrap().disk_reads));
        });
    }
    group.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_response_point");
    for code in CodeSpec::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(code.name()),
            &code,
            |b, &code| {
                let cfg = cfg(code, 7, PolicyKind::Fbf, 64);
                b.iter(|| black_box(run_experiment(&cfg).unwrap().avg_response_ms));
            },
        );
    }
    group.finish();
}

fn bench_fig11_and_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_reconstruction_point");
    group.bench_function("tip_p7_fbf_vs", |b| {
        let fbf = cfg(CodeSpec::Tip, 7, PolicyKind::Fbf, 32);
        let lru = cfg(CodeSpec::Tip, 7, PolicyKind::Lru, 32);
        b.iter(|| {
            let a = run_experiment(&fbf).unwrap().reconstruction_s;
            let b_ = run_experiment(&lru).unwrap().reconstruction_s;
            black_box((a, b_))
        });
    });
    // Table IV's measured quantity: scheme+priority generation time.
    group.bench_function("table4_overhead_path", |b| {
        let cfg = cfg(CodeSpec::Star, 13, PolicyKind::Fbf, 64);
        b.iter(|| black_box(run_experiment(&cfg).unwrap().overhead_per_stripe_ms));
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig8, bench_fig9, bench_fig10, bench_fig11_and_tables
);
criterion_main!(benches);
