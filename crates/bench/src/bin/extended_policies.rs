//! Extended policy comparison: the paper's five figures policies plus the
//! other §II-B citations — LRU-K, 2Q, LRFU, FBR and VDF (the closest
//! prior art).
//!
//! Expected outcome: the recency/frequency refinements (LRU-K, 2Q, LRFU,
//! FBR) land between LRU and ARC — none of them understands parity-chain
//! sharing; VDF protects victim-disk chunks (which FBF also implicitly
//! favours) but not the shared *surviving* chunks, so FBF still leads.

use fbf_bench::{base_config, save_csv, CACHE_MB};
use fbf_cache::PolicyKind;
use fbf_codes::CodeSpec;
use fbf_core::{report::f, sweep, Table};

fn main() {
    let p = 11;
    let headers: Vec<String> = std::iter::once("cache_mb".to_string())
        .chain(PolicyKind::EXTENDED.iter().map(|k| k.name().to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut hit = Table::new(
        format!("Extended policies, hit ratio — TIP(p={p})"),
        &header_refs,
    );
    let mut reads = Table::new(
        format!("Extended policies, disk reads — TIP(p={p})"),
        &header_refs,
    );

    let configs: Vec<_> = CACHE_MB
        .iter()
        .flat_map(|&mb| {
            PolicyKind::EXTENDED
                .iter()
                .map(move |&policy| base_config(CodeSpec::Tip, p, policy, mb))
        })
        .collect();
    let points = sweep(&configs, 0).expect("sweep failed");

    let n = PolicyKind::EXTENDED.len();
    for (i, &mb) in CACHE_MB.iter().enumerate() {
        let row = &points[i * n..(i + 1) * n];
        hit.push_row(
            std::iter::once(mb.to_string())
                .chain(row.iter().map(|pt| f(pt.metrics.hit_ratio, 4)))
                .collect(),
        );
        reads.push_row(
            std::iter::once(mb.to_string())
                .chain(row.iter().map(|pt| pt.metrics.disk_reads.to_string()))
                .collect(),
        );
    }
    println!("{}", hit.render());
    println!("{}", reads.render());
    save_csv("extended_policies_hit", &hit);
    save_csv("extended_policies_reads", &reads);
}
