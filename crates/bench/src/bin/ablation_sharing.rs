//! Ablation: per-worker cache partitioning vs one shared cache.
//!
//! The paper's SOR setup gives each reconstruction process "a small part of
//! cache". A shared cache would let workers poach each other's chunks but
//! also reuse nothing across stripes (chunk identities are stripe-local),
//! so the main effect is how eviction pressure distributes. This bench
//! quantifies it per policy at a limited cache size.

use fbf_bench::{base_config, save_csv, CACHE_MB};
use fbf_cache::PolicyKind;
use fbf_codes::CodeSpec;
use fbf_core::{report::f, sweep, Table};
use fbf_disksim::CacheSharing;

fn main() {
    let p = 11;
    let mut table = Table::new(
        format!("Cache-sharing ablation — TIP(p={p}), hit ratio"),
        &["cache_mb", "policy", "partitioned", "shared"],
    );
    for &mb in &CACHE_MB[..6] {
        let configs: Vec<_> = PolicyKind::ALL
            .iter()
            .flat_map(|&policy| {
                [CacheSharing::Partitioned, CacheSharing::Shared].map(|sharing| {
                    let mut cfg = base_config(CodeSpec::Tip, p, policy, mb);
                    cfg.sharing = sharing;
                    cfg
                })
            })
            .collect();
        let points = sweep(&configs, 0).expect("sweep failed");
        for pair in points.chunks(2) {
            table.push_row(vec![
                mb.to_string(),
                pair[0].config.policy.name().to_string(),
                f(pair[0].metrics.hit_ratio, 4),
                f(pair[1].metrics.hit_ratio, 4),
            ]);
        }
    }
    println!("{}", table.render());
    save_csv("ablation_sharing", &table);
}
