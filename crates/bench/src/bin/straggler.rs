//! Failure injection: reconstruction with one aged straggler disk.
//!
//! Disks in the failure-prone regime the paper targets (§II-C: error
//! rates grow as drives age) rarely degrade uniformly — one disk serving
//! at 3× its normal latency throttles every chain that crosses it. This
//! bench measures how each policy's reconstruction tolerates a straggler:
//! the more reads a policy serves from cache, the fewer land on the slow
//! disk's queue.

use fbf_bench::{base_config, save_csv};
use fbf_cache::PolicyKind;
use fbf_codes::CodeSpec;
use fbf_core::{report::f, sweep, Table};

fn main() {
    let p = 11;
    let cache_mb = 64;
    let mut table = Table::new(
        format!("Straggler injection — TIP(p={p}), {cache_mb}MB, disk 0 at N× latency"),
        &[
            "slowdown",
            "policy",
            "hit_ratio",
            "recon_s",
            "slowdown_cost_pct",
        ],
    );

    for factor in [1.0f64, 2.0, 4.0] {
        let configs: Vec<_> = PolicyKind::ALL
            .iter()
            .map(|&policy| {
                let mut cfg = base_config(CodeSpec::Tip, p, policy, cache_mb);
                if factor > 1.0 {
                    cfg.straggler = Some((0, factor));
                }
                cfg
            })
            .collect();
        let points = sweep(&configs, 0).expect("sweep failed");
        // Baseline (healthy) reconstruction per policy, for the cost column.
        let healthy: Vec<_> = if factor == 1.0 {
            points
                .iter()
                .map(|pt| pt.metrics.reconstruction_s)
                .collect()
        } else {
            let base: Vec<_> = PolicyKind::ALL
                .iter()
                .map(|&policy| base_config(CodeSpec::Tip, p, policy, cache_mb))
                .collect();
            sweep(&base, 0)
                .expect("sweep failed")
                .iter()
                .map(|pt| pt.metrics.reconstruction_s)
                .collect()
        };
        for (pt, h) in points.iter().zip(&healthy) {
            table.push_row(vec![
                format!("{factor}x"),
                pt.config.policy.name().to_string(),
                f(pt.metrics.hit_ratio, 4),
                f(pt.metrics.reconstruction_s, 3),
                f(100.0 * (pt.metrics.reconstruction_s - h) / h, 1),
            ]);
        }
    }
    println!("{}", table.render());
    save_csv("straggler", &table);
}
