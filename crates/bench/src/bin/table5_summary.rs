//! Table V — maximum improvement of FBF over each baseline policy.
//!
//! Re-runs the TIP sweeps behind Figs. 8–11 and reports, per baseline, the
//! maximum improvement FBF achieves on each of the four metrics anywhere
//! in the (P, cache size) grid — the same aggregation the paper uses.

use fbf_bench::{base_config, save_csv, CACHE_MB, TIP_PRIMES};
use fbf_cache::PolicyKind;
use fbf_codes::CodeSpec;
use fbf_core::report::{improvement_pct_higher_better, improvement_pct_lower_better};
use fbf_core::{report::f, sweep, SweepPoint, Table};

fn main() {
    // One sweep covering all policies over the full TIP grid.
    let configs: Vec<_> = TIP_PRIMES
        .iter()
        .flat_map(|&p| {
            CACHE_MB.iter().flat_map(move |&mb| {
                PolicyKind::ALL
                    .iter()
                    .map(move |&policy| base_config(CodeSpec::Tip, p, policy, mb))
            })
        })
        .collect();
    let points = sweep(&configs, 0).expect("sweep failed");

    // Index results by (p, cache, policy).
    let find = |p: usize, mb: usize, policy: PolicyKind| -> &SweepPoint {
        points
            .iter()
            .find(|pt| pt.config.p == p && pt.config.cache_mb == mb && pt.config.policy == policy)
            .expect("grid point present")
    };

    let mut table = Table::new(
        "Table V — max improvement of FBF over baselines (TIP grid)",
        &["metric", "FIFO", "LRU", "LFU", "ARC"],
    );

    /// A metric extractor: (fbf point, baseline point) → improvement %.
    type Improvement = Box<dyn Fn(&SweepPoint, &SweepPoint) -> f64>;
    let metrics: [(&str, Improvement); 4] = [
        (
            "hit ratio (%)",
            Box::new(|fbf, base| {
                improvement_pct_higher_better(fbf.metrics.hit_ratio, base.metrics.hit_ratio)
            }),
        ),
        (
            "disk reads (%)",
            Box::new(|fbf, base| {
                improvement_pct_lower_better(
                    fbf.metrics.disk_reads as f64,
                    base.metrics.disk_reads as f64,
                )
            }),
        ),
        (
            "response time (%)",
            Box::new(|fbf, base| {
                improvement_pct_lower_better(
                    fbf.metrics.avg_response_ms,
                    base.metrics.avg_response_ms,
                )
            }),
        ),
        (
            "reconstruction time (%)",
            Box::new(|fbf, base| {
                improvement_pct_lower_better(
                    fbf.metrics.reconstruction_s,
                    base.metrics.reconstruction_s,
                )
            }),
        ),
    ];

    for (name, imp) in &metrics {
        let mut cells = vec![name.to_string()];
        for baseline in PolicyKind::BASELINES {
            let mut best = f64::MIN;
            for &p in &TIP_PRIMES {
                for &mb in &CACHE_MB {
                    let fbf = find(p, mb, PolicyKind::Fbf);
                    let base = find(p, mb, baseline);
                    best = best.max(imp(fbf, base));
                }
            }
            cells.push(f(best, 2));
        }
        table.push_row(cells);
    }

    println!("{}", table.render());
    println!("(positive = FBF better; the paper reports up to 247.67% hit-ratio,");
    println!(" 22.52% reads, 31.39% response-time and 14.90% reconstruction-time gains)");
    save_csv("table5_summary", &table);
}
