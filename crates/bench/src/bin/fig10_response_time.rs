//! Fig. 10 — average response time of the disk array during recovery.
//!
//! Shapes to look for (paper §IV-B-3): response time falls with cache
//! size; FBF is fastest under every code, with the advantage fading once
//! the cache is very large (beyond ~2048 MB in the paper).

use fbf_bench::{base_config, save_csv, CACHE_MB, FIG8_PRIMES};
use fbf_cache::PolicyKind;
use fbf_codes::CodeSpec;
use fbf_core::{report::f, sweep, Table};

fn main() {
    for code in CodeSpec::ALL {
        for p in FIG8_PRIMES {
            if p < code.min_prime() {
                continue;
            }
            let configs: Vec<_> = CACHE_MB
                .iter()
                .flat_map(|&mb| {
                    PolicyKind::ALL
                        .iter()
                        .map(move |&policy| base_config(code, p, policy, mb))
                })
                .collect();
            let points = sweep(&configs, 0).expect("sweep failed");

            let mut table = Table::new(
                format!("Fig.10 avg response time (ms) — {}(p={p})", code.name()),
                &["cache_mb", "FIFO", "LRU", "LFU", "ARC", "FBF"],
            );
            for (i, &mb) in CACHE_MB.iter().enumerate() {
                let row = &points[i * PolicyKind::ALL.len()..(i + 1) * PolicyKind::ALL.len()];
                let mut cells = vec![mb.to_string()];
                cells.extend(row.iter().map(|pt| f(pt.metrics.avg_response_ms, 3)));
                table.push_row(cells);
            }
            println!("{}", table.render());
            save_csv(
                &format!("fig10_{}_p{p}", code.name().to_lowercase()),
                &table,
            );
        }
    }
}
