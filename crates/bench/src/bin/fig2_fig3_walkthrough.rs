//! Figs. 2–3 + Table III — recovery-scheme selection, step by step.
//!
//! Reproduces the paper's worked examples:
//!
//! * Fig. 2 — TIP(p=5): a 4-chunk error on disk 0, repaired by the typical
//!   (horizontal-only) scheme vs the FBF direction-cycling scheme; prints
//!   both read sets and the chunk-sharing gain.
//! * Fig. 3 / Table III — TIP(p=7, n=8): a 5-chunk error on disk 0; prints
//!   the chosen chain per lost chunk and the resulting priority dictionary
//!   in Table III's format (cells grouped by priority).
//!
//! The exact cells differ from the paper's table (our TIP layout is a
//! documented geometric reconstruction, DESIGN.md §2), but the *shape* —
//! a couple of multiply-shared favorable blocks, many single-reference
//! chunks — is the point being demonstrated.

use fbf_codes::{CodeSpec, StripeCode};
use fbf_recovery::{scheme::generate, PartialStripeError, PriorityDictionary, SchemeKind};

fn show_error(code: &StripeCode, len: usize, title: &str) {
    println!("=== {title} — {} ===", code.describe());
    let error = PartialStripeError::new(code, 0, 0, 0, len).unwrap();
    println!(
        "error: {} lost chunks on disk 0, rows 0..{len}\n",
        error.len
    );

    for kind in [SchemeKind::Typical, SchemeKind::FbfCycling] {
        let scheme = generate(code, &error, kind).unwrap();
        println!("{} scheme:", kind.name());
        for r in &scheme.repairs {
            let reads: Vec<String> = r.option.reads.iter().map(|c| c.to_string()).collect();
            println!(
                "  {} via {:>13} chain: reads {}",
                r.target,
                r.option.direction.to_string(),
                reads.join(" ")
            );
        }
        println!(
            "  -> {} read slots, {} distinct chunks, {} reads saved by sharing\n",
            scheme.total_read_slots(),
            scheme.unique_reads(),
            scheme.shared_savings()
        );

        if kind == SchemeKind::FbfCycling {
            let dict = PriorityDictionary::from_scheme(&scheme);
            println!("priority dictionary (Table III format):");
            for prio in (1..=3).rev() {
                let cells = dict.cells_with_priority(0, prio);
                let names: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
                println!(
                    "  priority {prio}: {}",
                    if names.is_empty() {
                        "-".into()
                    } else {
                        names.join(", ")
                    }
                );
            }
            println!();
        }
    }
}

fn main() {
    // Fig. 2: TIP-code, p = 5 (6 disks), 4-chunk error.
    let tip5 = StripeCode::build(CodeSpec::Tip, 5).unwrap();
    show_error(&tip5, 4, "Fig. 2");

    // Fig. 3 / Table III: TIP-code, p = 7 (8 disks), 5-chunk error.
    let tip7 = StripeCode::build(CodeSpec::Tip, 7).unwrap();
    show_error(&tip7, 5, "Fig. 3 / Table III");
}
