//! Tail latency of recovery reads — beyond the paper's mean-only Fig. 10.
//!
//! Mean response time understates what a deep disk queue does to the
//! unlucky requests. This bench reports p50 / p95 / p99 read latency per
//! policy at a contended cache size: every cache hit FBF wins is a request
//! that *skips the queue entirely*, so the tail compresses more than the
//! mean suggests.

use fbf_bench::{base_config, save_csv};
use fbf_cache::PolicyKind;
use fbf_codes::CodeSpec;
use fbf_core::{report::f, sweep, Table};

fn main() {
    let p = 13;
    let mut table = Table::new(
        format!("Read latency distribution — TIP(p={p}), 64MB cache"),
        &["policy", "mean_ms", "p50_ms", "p95_ms", "p99_ms"],
    );
    let configs: Vec<_> = PolicyKind::ALL
        .iter()
        .map(|&policy| base_config(CodeSpec::Tip, p, policy, 64))
        .collect();
    let points = sweep(&configs, 0).expect("sweep failed");
    for pt in &points {
        table.push_row(vec![
            pt.config.policy.name().to_string(),
            f(pt.metrics.avg_response_ms, 3),
            f(pt.metrics.p50_response_ms, 3),
            f(pt.metrics.p95_response_ms, 3),
            f(pt.metrics.p99_response_ms, 3),
        ]);
    }
    println!("{}", table.render());
    save_csv("tail_latency", &table);
}
