//! Structural comparison of the shipped erasure codes — the table every
//! code paper opens with: disks, storage efficiency, update complexity,
//! chain length, single-chunk repair cost.

use fbf_bench::save_csv;
use fbf_codes::{analyze, CodeSpec, StripeCode};
use fbf_core::{report::f, Table};

fn main() {
    for p in [7usize, 13] {
        let mut table = Table::new(
            format!("Code structure comparison (p={p})"),
            &[
                "code",
                "disks",
                "tolerance",
                "storage_eff",
                "avg_update",
                "max_update",
                "avg_chain_len",
                "avg_repair_reads",
            ],
        );
        for spec in CodeSpec::EXTENDED {
            if p < spec.min_prime() {
                continue;
            }
            let code = StripeCode::build(spec, p).expect("prime");
            let m = analyze(&code);
            table.push_row(vec![
                spec.name().to_string(),
                code.cols().to_string(),
                spec.fault_tolerance().to_string(),
                f(m.storage_efficiency, 3),
                f(m.avg_update_complexity, 2),
                m.max_update_complexity.to_string(),
                f(m.avg_chain_length, 2),
                f(m.avg_repair_reads, 2),
            ]);
        }
        println!("{}", table.render());
        save_csv(&format!("code_comparison_p{p}"), &table);
    }
}
