//! Degraded reads under concurrent reconstruction: does FBF's warm cache
//! also speed up application reads that hit lost chunks?
//!
//! Setup: a campaign of partial stripe errors is being repaired by SOR
//! workers while an application issues hot-spotted reads; reads that land
//! on lost chunks become parallel fan-out repairs (Op::Gather) through the
//! *shared* buffer cache. FBF keeps the multiply-referenced favorable
//! blocks resident, so a fan-out finds more of its chain already cached.

use fbf_bench::save_csv;
use fbf_cache::PolicyKind;
use fbf_codes::{CodeSpec, StripeCode};
use fbf_core::{report::f, Table};
use fbf_disksim::{ArrayMapping, CacheSharing, Engine, EngineConfig, SimTime};
use fbf_recovery::{
    build_scripts, degrade_script, generate_schemes_parallel, ExecConfig, LostMap,
    PriorityDictionary, SchemeKind,
};
use fbf_workload::{generate_app_reads, generate_errors, AppIoConfig, ErrorGenConfig};

fn main() {
    let p = 11;
    let stripes = 2048u32;
    let code = StripeCode::build(CodeSpec::Tip, p).expect("prime");

    // Reconstruction campaign and its schemes.
    let errors = generate_errors(&code, &ErrorGenConfig::paper_default(stripes, 384, 4242));
    let schemes =
        generate_schemes_parallel(&code, &errors, SchemeKind::FbfCycling, 0).expect("schemes");
    let dict = PriorityDictionary::from_schemes(&schemes);
    let lost = LostMap::from_group(&errors);

    // Application stream, biased toward the damaged region so a good
    // fraction of reads degrade.
    let app = generate_app_reads(
        &code,
        &AppIoConfig {
            stripes,
            reads: 3000,
            hot_fraction: 0.7,
            hot_set: 0.3,
            think_time: SimTime::from_micros(200),
            seed: 99,
        },
    );
    let (degraded_app, degraded_count) =
        degrade_script(&code, &app, &lost, &dict, SimTime::from_micros(8));
    println!(
        "application stream: {} reads, {} degraded ({:.1}%)\n",
        app.reads(),
        degraded_count,
        100.0 * degraded_count as f64 / app.reads() as f64
    );

    let mut table = Table::new(
        format!("Degraded reads under reconstruction — TIP(p={p}), shared 64MB cache"),
        &[
            "policy",
            "hit_ratio",
            "disk_reads",
            "makespan_s",
            "avg_read_ms",
        ],
    );
    for policy in PolicyKind::ALL {
        let mut scripts = build_scripts(
            &schemes,
            &dict,
            &ExecConfig {
                workers: 32,
                ..Default::default()
            },
        );
        scripts.push(degraded_app.clone());
        let engine = Engine::new(EngineConfig {
            sharing: CacheSharing::Shared,
            ..EngineConfig::paper(
                policy,
                64 * 1024 / 32,
                ArrayMapping::new(code.cols(), code.rows(), false),
                stripes as u64,
            )
        });
        let report = engine.run(&scripts);
        table.push_row(vec![
            policy.name().to_string(),
            f(report.cache.hit_ratio(), 4),
            report.disk_reads.to_string(),
            f(report.makespan.as_secs_f64(), 3),
            f(report.read_response.avg_millis(), 3),
        ]);
    }
    println!("{}", table.render());
    save_csv("degraded_reads", &table);
}
