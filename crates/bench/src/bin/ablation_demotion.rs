//! Ablation: the FBF demotion mechanism.
//!
//! The paper's §III-A-2 is ambiguous about where a demoted chunk lands in
//! the lower queue ("start point" in the text vs "attached to the end" in
//! the figures). This ablation measures all three variants across the
//! cache-size sweep:
//!
//! * `demote-back`  — demoted chunk to the lower queue's MRU end (default);
//! * `demote-front` — to the LRU end (evicted sooner once downgraded);
//! * `no-demotion`  — hits keep a chunk in its original queue.

use fbf_bench::{base_config, save_csv, CACHE_MB};
use fbf_cache::{DemotePosition, FbfConfig, PolicyKind};
use fbf_codes::CodeSpec;
use fbf_core::{report::f, sweep, Table};

fn main() {
    let p = 11;
    let variants: [(&str, FbfConfig); 3] = [
        (
            "demote-back",
            FbfConfig {
                demote_to: DemotePosition::Back,
                disable_demotion: false,
            },
        ),
        (
            "demote-front",
            FbfConfig {
                demote_to: DemotePosition::Front,
                disable_demotion: false,
            },
        ),
        (
            "no-demotion",
            FbfConfig {
                demote_to: DemotePosition::Back,
                disable_demotion: true,
            },
        ),
    ];

    let mut table = Table::new(
        format!("FBF demotion ablation — TIP(p={p})"),
        &["cache_mb", "demote-back", "demote-front", "no-demotion"],
    );

    let configs: Vec<_> = CACHE_MB
        .iter()
        .flat_map(|&mb| {
            variants.iter().map(move |&(_, fbf)| {
                let mut cfg = base_config(CodeSpec::Tip, p, PolicyKind::Fbf, mb);
                cfg.fbf = fbf;
                cfg
            })
        })
        .collect();
    let points = sweep(&configs, 0).expect("sweep failed");

    for (i, &mb) in CACHE_MB.iter().enumerate() {
        let row = &points[i * variants.len()..(i + 1) * variants.len()];
        let mut cells = vec![mb.to_string()];
        cells.extend(row.iter().map(|pt| f(pt.metrics.hit_ratio, 4)));
        table.push_row(cells);
    }
    println!("{}", table.render());
    save_csv("ablation_demotion", &table);
}
