//! Perf-regression gate: diff two `BENCH_*.json` snapshots.
//!
//! ```text
//! perf_gate BASELINE.json CANDIDATE.json [--quick]
//! ```
//!
//! Compares every baseline bench's `ns_per_op` against the candidate
//! under the noise tolerances in [`fbf_bench::gate`] (`--quick` selects
//! the looser smoke-mode tolerances that pair with `scripts/bench.sh
//! --quick`). Refuses outright (exit 2) when the snapshots came from
//! different instruction sets — the machine `arch`/`simd` stamps must
//! match. Prints a per-bench verdict table and exits nonzero when any
//! baseline bench regressed or vanished — CI runs this against the
//! committed `BENCH_<date>.json`.

use fbf_bench::gate::{check_comparable, diff, parse_machine, parse_snapshot, MachineInfo};

fn load(path: &str) -> (Vec<(String, f64)>, MachineInfo) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perf_gate: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let benches = parse_snapshot(&text).unwrap_or_else(|e| {
        eprintln!("perf_gate: {path}: {e}");
        std::process::exit(2);
    });
    (benches, parse_machine(&text))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [baseline, candidate] = files.as_slice() else {
        eprintln!("usage: perf_gate BASELINE.json CANDIDATE.json [--quick]");
        std::process::exit(2);
    };

    let (base_benches, base_machine) = load(baseline);
    let (cand_benches, cand_machine) = load(candidate);
    match check_comparable(&base_machine, &cand_machine) {
        Ok(None) => {}
        Ok(Some(notice)) => eprintln!("perf_gate: note: {notice}"),
        Err(e) => {
            eprintln!("perf_gate: REFUSED: {e}");
            std::process::exit(2);
        }
    }

    let report = diff(&base_benches, &cand_benches, quick);
    print!("{}", report.render());
    if report.pass() {
        println!("perf gate: PASS ({} benches)", report.entries.len());
    } else {
        let failed: Vec<&str> = report.failures().map(|e| e.name.as_str()).collect();
        println!(
            "perf gate: FAIL ({}/{} benches regressed: {})",
            failed.len(),
            report.entries.len(),
            failed.join(", ")
        );
        std::process::exit(1);
    }
}
