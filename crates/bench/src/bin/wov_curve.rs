//! Repair-progress curve: how fast the window of vulnerability closes.
//!
//! Total reconstruction time (Fig. 11) is the moment the *last* chunk is
//! repaired, but data-loss exposure shrinks with every spare write. This
//! bench reports, per policy, the virtual time by which 25/50/75/90/100%
//! of the lost chunks were rewritten — FBF's cache hits pull the whole
//! curve left, not just its endpoint.

use fbf_bench::{base_config, save_csv};
use fbf_cache::PolicyKind;
use fbf_codes::CodeSpec;
use fbf_core::{report::f, sweep, Table};

fn main() {
    let p = 11;
    let cache_mb = 64;
    let mut table = Table::new(
        format!("Repair progress — TIP(p={p}), {cache_mb}MB cache"),
        &["policy", "p50_s", "p90_s", "complete_s"],
    );
    let configs: Vec<_> = PolicyKind::ALL
        .iter()
        .map(|&policy| base_config(CodeSpec::Tip, p, policy, cache_mb))
        .collect();
    let points = sweep(&configs, 0).expect("sweep failed");
    for pt in &points {
        table.push_row(vec![
            pt.config.policy.name().to_string(),
            f(pt.metrics.repair_p50_s, 3),
            f(pt.metrics.repair_p90_s, 3),
            f(pt.metrics.reconstruction_s, 3),
        ]);
    }
    println!("{}", table.render());
    save_csv("wov_curve", &table);
}
