//! Ablation: disk head-scheduling discipline under the detailed
//! mechanical model.
//!
//! The paper's DiskSim runs use its default disk model; our fixed-latency
//! configuration makes scheduling irrelevant (every order costs the same).
//! This ablation switches to the seek+rotation+transfer model and sweeps
//! FCFS / SSTF / C-LOOK, checking two things:
//!
//! * reordering reduces reconstruction time (seek locality exists in
//!   recovery traffic: stripes map to contiguous LBAs);
//! * the FBF-vs-LRU ranking is *robust* to the disk model — the paper's
//!   conclusion does not depend on the fixed-latency simplification.

use fbf_bench::{base_config, save_csv};
use fbf_cache::PolicyKind;
use fbf_codes::CodeSpec;
use fbf_core::{report::f, sweep, Table};
use fbf_disksim::{DiskModel, DiskSched};

fn main() {
    let p = 11;
    let cache_mb = 64;
    let mut table = Table::new(
        format!("Disk-scheduling ablation — TIP(p={p}), {cache_mb}MB, detailed disk model"),
        &[
            "discipline",
            "policy",
            "hit_ratio",
            "avg_resp_ms",
            "recon_s",
        ],
    );

    for sched in DiskSched::ALL {
        let configs: Vec<_> = [PolicyKind::Lru, PolicyKind::Fbf]
            .iter()
            .map(|&policy| {
                let mut cfg = base_config(CodeSpec::Tip, p, policy, cache_mb);
                cfg.disk_model = DiskModel::detailed_default();
                cfg.disk_sched = sched;
                cfg
            })
            .collect();
        let points = sweep(&configs, 0).expect("sweep failed");
        for pt in &points {
            table.push_row(vec![
                sched.name().to_string(),
                pt.config.policy.name().to_string(),
                f(pt.metrics.hit_ratio, 4),
                f(pt.metrics.avg_response_ms, 3),
                f(pt.metrics.reconstruction_s, 3),
            ]);
        }
        // Robustness check: FBF still wins under every discipline.
        assert!(
            points[1].metrics.reconstruction_s <= points[0].metrics.reconstruction_s,
            "{}: FBF should not lose to LRU",
            sched.name()
        );
    }
    println!("{}", table.render());
    save_csv("ablation_scheduling", &table);
}
