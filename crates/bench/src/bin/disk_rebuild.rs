//! Whole-disk rebuild: hybrid chain selection vs the all-horizontal
//! baseline (the paper's reference \[22\], generalised to 3DFT codes).
//!
//! Reports, per code, the read *ratio* of each scheme generator against
//! horizontal-only (the known RDP optimum is 0.75), and simulates a
//! full-disk rebuild campaign to show the end-to-end time difference.

use fbf_bench::save_csv;
use fbf_cache::PolicyKind;
use fbf_codes::{CodeSpec, StripeCode};
use fbf_core::{report::f, Table};
use fbf_disksim::{ArrayMapping, Engine, EngineConfig};
use fbf_recovery::{
    build_scripts, rebuild_read_ratio, rebuild_schemes, ExecConfig, PriorityDictionary, SchemeKind,
};

fn main() {
    let p = 11;
    let stripes = 512u32;

    let mut ratios = Table::new(
        format!("Full-disk rebuild read ratio vs horizontal-only (p={p})"),
        &["code", "fbf_cycling", "greedy"],
    );
    for spec in CodeSpec::EXTENDED {
        if p < spec.min_prime() {
            continue;
        }
        let code = StripeCode::build(spec, p).expect("prime");
        let cyc = rebuild_read_ratio(&code, 0, SchemeKind::FbfCycling).expect("scheme");
        let grd = rebuild_read_ratio(&code, 0, SchemeKind::Greedy).expect("scheme");
        ratios.push_row(vec![spec.name().to_string(), f(cyc, 3), f(grd, 3)]);
    }
    println!("{}", ratios.render());
    save_csv("disk_rebuild_ratios", &ratios);

    // End-to-end: rebuild a whole disk of TIP(p=11) under FBF vs LRU.
    let code = StripeCode::build(CodeSpec::Tip, p).expect("prime");
    let mut times = Table::new(
        format!("Full-disk rebuild time — TIP(p={p}), {stripes} stripes, 64MB cache"),
        &["scheme", "policy", "disk_reads", "rebuild_s"],
    );
    for kind in [
        SchemeKind::Typical,
        SchemeKind::FbfCycling,
        SchemeKind::Greedy,
    ] {
        let schemes = rebuild_schemes(&code, 0, stripes, kind).expect("schemes");
        let dict = PriorityDictionary::from_schemes(&schemes);
        let scripts = build_scripts(
            &schemes,
            &dict,
            &ExecConfig {
                workers: 64,
                ..Default::default()
            },
        );
        for policy in [PolicyKind::Lru, PolicyKind::Fbf] {
            let engine = Engine::new(EngineConfig::paper(
                policy,
                64 * 1024 / 32,
                ArrayMapping::new(code.cols(), code.rows(), false),
                stripes as u64,
            ));
            let report = engine.run(&scripts);
            times.push_row(vec![
                kind.name().to_string(),
                policy.name().to_string(),
                report.disk_reads.to_string(),
                f(report.makespan.as_secs_f64(), 3),
            ]);
        }
    }
    println!("{}", times.render());
    save_csv("disk_rebuild_times", &times);
}
