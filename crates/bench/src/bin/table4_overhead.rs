//! Table IV — temporal overhead of FBF during partial stripe recovery.
//!
//! The overhead is the host time spent generating recovery schemes and the
//! priority dictionary (the paper's "extra calculation"), reported per
//! stripe in milliseconds and as a percentage of the (virtual)
//! reconstruction time. The paper finds < 2.8% everywhere, growing mildly
//! with P.

use fbf_bench::{base_config, finish_obs, init_obs, save_csv, TIP_PRIMES};
use fbf_cache::PolicyKind;
use fbf_codes::CodeSpec;
use fbf_core::{report::f, run_experiment, Table};

fn main() {
    init_obs();
    let mut table = Table::new(
        "Table IV — FBF temporal overhead",
        &[
            "p",
            "code",
            "memo_ms_per_stripe",
            "memo_pct",
            "full_ms_per_stripe",
            "full_pct",
        ],
    );
    for p in TIP_PRIMES {
        for code in [
            CodeSpec::Star,
            CodeSpec::TripleStar,
            CodeSpec::Tip,
            CodeSpec::Hdd1,
        ] {
            if p < code.min_prime() {
                continue;
            }
            // gen_threads == 1 → the paper's format-memoised controller
            // ("priorities can be enumerated once a same format ... is
            // detected again"); gen_threads == 2 disables the memo and
            // regenerates every stripe, bounding the unmemoised cost.
            let mut cfg = base_config(code, p, PolicyKind::Fbf, 64);
            cfg.gen_threads = 1;
            let memo = run_experiment(&cfg).expect("run failed");
            cfg.gen_threads = 2;
            let full = run_experiment(&cfg).expect("run failed");
            table.push_row(vec![
                p.to_string(),
                code.name().to_string(),
                f(memo.overhead_per_stripe_ms, 4),
                f(memo.overhead_pct, 3),
                f(full.overhead_per_stripe_ms, 4),
                f(full.overhead_pct, 3),
            ]);
        }
    }
    println!("{}", table.render());
    save_csv("table4_overhead", &table);
    finish_obs();
}
