//! Performance baseline: the PR-3 hot paths, measured before/after.
//!
//! Times the structures the simulator hot loop lives in — the recency
//! queue (slab vs the retained map-backed oracle), a full replacement
//! policy, the XOR kernels, the event engine, and one Fig. 8-shaped
//! end-to-end sweep point — and writes a machine-readable snapshot to
//! `BENCH_<date>.json` at the repo root (schema below). Run via
//! `scripts/bench.sh` or directly:
//!
//! ```text
//! cargo run --release -p fbf-bench --bin perf_baseline
//! ```
//!
//! Knobs:
//! * `FBF_BENCH_QUICK=1` — tiny iteration counts (CI smoke; numbers are
//!   meaningless, only the schema and exit code matter).
//! * `FBF_BENCH_OUT=<path>` — write the JSON somewhere else.
//! * `FBF_BENCH_DATE=YYYY-MM-DD` — override the date stamp.
//!
//! JSON schema (stable; extend by adding keys, never renaming):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "date": "2026-08-06",
//!   "commit": "abc123…",
//!   "machine": { "os": "linux", "arch": "x86_64", "cpus": 16, "simd": "avx2" },
//!   "benches": [ { "name": "…", "ns_per_op": 12.3, "ops_per_sec": 8.1e7 } ]
//! }
//! ```

use fbf_bench::env_usize;
use fbf_cache::queue::{oracle::MapQueue, OrderedQueue};
use fbf_cache::{key, PolicyKind};
use fbf_codes::xor::{
    active_kernel, is_zero, supported_kernels, xor_fold_into_with, xor_many, xor_many_with,
};
use fbf_codes::{Cell, ChunkId};
use fbf_core::{
    run_experiment, run_planned_on, sim_backend_for, ExperimentConfig, PlanSource, PlannedCampaign,
    RebuildSpec,
};
use fbf_disksim::{
    equeue::oracle::HeapQueue, ArrayMapping, CalendarQueue, DiskModel, DiskSched, Engine,
    EngineConfig, EngineScratch, EventQueue, FaultPlan, Op, Placement, SimTime, WorkerScript,
};
use std::time::Instant;

/// One measured benchmark.
struct Bench {
    name: &'static str,
    ns_per_op: f64,
    ops_per_sec: f64,
}

/// Time `iters` calls of `op` (after `warmup` unmeasured calls) and
/// convert to per-"unit" cost — `units_per_iter` lets a single call count
/// as many logical operations (e.g. one queue churn pass = N ops).
fn measure<F: FnMut()>(
    name: &'static str,
    warmup: usize,
    iters: usize,
    units_per_iter: usize,
    mut op: F,
) -> Bench {
    for _ in 0..warmup {
        op();
    }
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    let units = (iters * units_per_iter) as f64;
    let ns_per_op = elapsed / units;
    Bench {
        name,
        ns_per_op,
        ops_per_sec: 1e9 / ns_per_op,
    }
}

/// One churn pass over a queue at `occupancy` resident keys: touch a
/// striding subset (MRU refresh — the cache-hit path), then evict+insert
/// (the miss path). Mirrors what every policy does per simulated access.
macro_rules! queue_churn {
    ($queue:ty, $occupancy:expr, $passes:expr) => {{
        let occupancy = $occupancy;
        let mut q = <$queue>::new();
        for i in 0..occupancy {
            q.push_back(key(i as u32, 0, 0));
        }
        let mut next_id = occupancy as u32;
        move || {
            for p in 0..$passes {
                // Hit path: refresh every 3rd resident key's recency.
                for i in ((p % 3)..occupancy).step_by(3) {
                    q.touch(key(i as u32, 0, 0));
                }
                // Miss path: evict LRU, insert fresh.
                for _ in 0..occupancy / 4 {
                    q.pop_front();
                    q.push_back(key(next_id, 1, 1));
                    next_id += 1;
                }
                // Keep the working set stable for the next pass.
                while q.len() > occupancy {
                    q.pop_front();
                }
                while q.len() < occupancy {
                    q.push_back(key(next_id, 2, 2));
                    next_id += 1;
                }
            }
        }
    }};
}

fn policy_trace(len: usize) -> Vec<(u32, usize, usize, u8)> {
    let mut state = 0x3DF7_u64;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (
                (state >> 8) as u32 % 512,
                (state >> 20) as usize % 11,
                (state >> 28) as usize % 13,
                1 + (state % 3) as u8,
            )
        })
        .collect()
}

fn engine_scripts(workers: usize, ops: usize) -> Vec<WorkerScript> {
    let mut state: u64 = 0xE46_14E5;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..workers)
        .map(|_| {
            let mut s = WorkerScript::default();
            for _ in 0..ops {
                let r = next();
                let c = ChunkId::new(
                    (r >> 8) as u32 % 64,
                    Cell::new((r >> 20) as usize % 7, (r >> 28) as usize % 7),
                );
                match r % 4 {
                    0 | 1 => s.ops.push(Op::Read {
                        chunk: c,
                        priority: 1 + (r % 3) as u8,
                    }),
                    2 => s.ops.push(Op::Compute {
                        duration: SimTime::from_micros(100),
                    }),
                    _ => s.ops.push(Op::Write { chunk: c }),
                }
            }
            s
        })
        .collect()
}

/// One event-queue churn pass at steady occupancy 128: pop the minimum,
/// push a replacement a near-monotone xorshift delta into the future.
/// This is the hold-and-advance pattern the engine main loop produces —
/// the regime the calendar wheel is tuned for. Returns a checksum so the
/// work cannot be optimised away.
fn equeue_churn<Q: EventQueue>(ops: usize) -> u64 {
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut q = Q::default();
    for i in 0..128usize {
        q.push((SimTime::from_nanos(next() % 50_000), (i % 3) as u8, i));
    }
    let mut acc = 0u64;
    for i in 0..ops {
        let (now, kind, id) = q.pop().expect("occupancy is constant");
        acc = acc
            .wrapping_add(now.as_nanos())
            .wrapping_add(kind as u64)
            .wrapping_add(id as u64);
        let delta = 200 + next() % 20_000;
        q.push((
            SimTime::from_nanos(now.as_nanos() + delta),
            (i % 3) as u8,
            i,
        ));
    }
    acc
}

/// Civil date (UTC) from the system clock — Howard Hinnant's
/// `civil_from_days`, so no chrono dependency.
fn today() -> String {
    if let Ok(d) = std::env::var("FBF_BENCH_DATE") {
        return d;
    }
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn commit_hash() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let quick = std::env::var("FBF_BENCH_QUICK").is_ok_and(|v| v == "1");
    // Iteration scale: quick mode only proves the harness runs end to end.
    let scale = if quick { 1 } else { 50 };
    let occupancy = env_usize("FBF_BENCH_OCCUPANCY", 4096);
    let passes = 4usize;
    // Units per churn iter: touches (~occ/3 per pass) + evict/insert pairs.
    let churn_units = passes * (occupancy / 3 + occupancy / 4 * 2);

    eprintln!(
        "perf_baseline: occupancy={occupancy}, scale={scale}{}",
        if quick { " (quick)" } else { "" }
    );

    let mut benches = Vec::new();

    benches.push(measure(
        "queue_slab_churn",
        scale.min(5),
        10 * scale,
        churn_units,
        queue_churn!(OrderedQueue, occupancy, passes),
    ));
    benches.push(measure(
        "queue_map_churn",
        scale.min(5),
        10 * scale,
        churn_units,
        queue_churn!(MapQueue, occupancy, passes),
    ));

    // Full policy under a recurring trace (hits + misses + evictions).
    let trace = policy_trace(if quick { 2_000 } else { 200_000 });
    for (bench_name, kind) in [
        ("policy_fbf_access", PolicyKind::Fbf),
        ("policy_lru_access", PolicyKind::Lru),
    ] {
        let mut policy = kind.build(1024);
        benches.push(measure(
            bench_name,
            1,
            2 * scale.min(10),
            trace.len(),
            || {
                for &(s, r, c, prio) in &trace {
                    let k = key(s, r, c);
                    if !policy.on_access(k) {
                        policy.on_insert(k, prio);
                    }
                }
            },
        ));
    }

    // XOR kernels at the paper's 32 KiB chunk size.
    let chunk_bytes = 32 * 1024;
    let srcs: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i * 37 + 1; chunk_bytes]).collect();
    let src_refs: Vec<&[u8]> = srcs.iter().map(|s| s.as_slice()).collect();
    let mut dst = vec![0u8; chunk_bytes];
    benches.push(measure(
        "xor_many_6x32k",
        scale.min(5),
        40 * scale,
        1,
        || {
            xor_many(&mut dst, &src_refs);
            std::hint::black_box(&dst);
        },
    ));
    benches.push(measure("is_zero_32k", scale.min(5), 200 * scale, 1, || {
        std::hint::black_box(is_zero(std::hint::black_box(&dst)));
    }));

    // The same 6-source decode on the best kernel the host supports,
    // explicitly — immune to an FBF_XOR_KERNEL downgrade of the
    // dispatched path above.
    let best = *supported_kernels().last().expect("scalar always present");
    benches.push(measure(
        "xor_many_simd_6x32k",
        scale.min(5),
        40 * scale,
        1,
        || {
            xor_many_with(best, &mut dst, &src_refs);
            std::hint::black_box(&dst);
        },
    ));
    // One seeded fold-of-4 pass — the primitive the multi-source driver
    // is built from (dst is written, never read).
    benches.push(measure(
        "xor_fold4_6x32k",
        scale.min(5),
        40 * scale,
        1,
        || {
            xor_fold_into_with(best, &mut dst, &src_refs[..4], true);
            std::hint::black_box(&dst);
        },
    ));

    // Event engine over a fixed workload, scratch reused like a sweep
    // worker would.
    let scripts = engine_scripts(8, if quick { 40 } else { 400 });
    let events: usize = scripts.iter().map(|s| s.ops.len()).sum();
    let mut scratch = EngineScratch::new();
    let engine_cfg = || EngineConfig {
        sched: DiskSched::Fcfs,
        disk_model: DiskModel::paper_default(),
        ..EngineConfig::paper(PolicyKind::Fbf, 256, ArrayMapping::new(7, 7, false), 64)
    };
    benches.push(measure("engine_run_8x", 2, scale.min(20), events, || {
        let report = Engine::new(engine_cfg()).run_with_scratch(&scripts, &mut scratch);
        std::hint::black_box(report.makespan);
    }));

    // The event queue in isolation: the calendar wheel the engine now
    // runs on, and the BinaryHeap oracle it replaced, under identical
    // churn streams.
    let churn_ops = if quick { 2_000 } else { 100_000 };
    benches.push(measure(
        "calendar_queue_churn",
        2,
        scale.min(10),
        churn_ops,
        || {
            std::hint::black_box(equeue_churn::<CalendarQueue>(churn_ops));
        },
    ));
    benches.push(measure(
        "binary_heap_churn",
        2,
        scale.min(10),
        churn_ops,
        || {
            std::hint::black_box(equeue_churn::<HeapQueue>(churn_ops));
        },
    ));

    // The fault-injection guard: the same workload with the fault plan
    // explicitly `none()`. Its ratio against `engine_run_8x` bounds what
    // the per-op fault checks cost when no faults are configured — the
    // disabled path must stay ≈ 1.0x (bench.sh prints the ratio).
    benches.push(measure(
        "engine_run_8x_faults_disabled",
        2,
        scale.min(20),
        events,
        || {
            let cfg = EngineConfig {
                faults: FaultPlan::none(),
                ..engine_cfg()
            };
            let report = Engine::new(cfg).run_with_scratch(&scripts, &mut scratch);
            std::hint::black_box(report.makespan);
        },
    ));

    // The observability guard, both sides. Disabled: a span creation is
    // one relaxed atomic load and must stay in the single-digit ns range.
    // Enabled: the same engine workload with `obs: true` and a no-op
    // subscriber, bounding the cost traces add to a real run.
    benches.push(measure(
        "obs_span_disabled",
        scale.min(5),
        100 * scale,
        1_000,
        || {
            for _ in 0..1_000 {
                let span = fbf_obs::span("bench", "disabled");
                std::hint::black_box(&span);
                span.end();
            }
        },
    ));
    fbf_obs::install(std::sync::Arc::new(fbf_obs::NoopSubscriber));
    benches.push(measure(
        "engine_run_8x_obs",
        2,
        scale.min(20),
        events,
        || {
            let cfg = EngineConfig {
                obs: true,
                ..engine_cfg()
            };
            let report = Engine::new(cfg).run_with_scratch(&scripts, &mut scratch);
            std::hint::black_box(report.makespan);
        },
    ));
    fbf_obs::uninstall();

    // The flight-recorder guard, both sides. Disabled: the engine obs
    // workload with neither subscriber nor recorder installed — events
    // die at the same relaxed-load gate as `obs_span_disabled`, so the
    // ratio against `engine_run_8x` must stay ≈ 1.0x. Enabled: the ring
    // alone (no subscriber), bounding what always-on capture adds; the
    // acceptance bar is ≤ 1.05x against `engine_run_8x_obs` (bench.sh
    // prints both ratios).
    benches.push(measure(
        "obs_ring_disabled",
        2,
        scale.min(20),
        events,
        || {
            let cfg = EngineConfig {
                obs: true,
                ..engine_cfg()
            };
            let report = Engine::new(cfg).run_with_scratch(&scripts, &mut scratch);
            std::hint::black_box(report.makespan);
        },
    ));
    fbf_obs::ring::install_default();
    benches.push(measure(
        "obs_ring_enabled",
        2,
        scale.min(20),
        events,
        || {
            let cfg = EngineConfig {
                obs: true,
                ..engine_cfg()
            };
            let report = Engine::new(cfg).run_with_scratch(&scripts, &mut scratch);
            std::hint::black_box(report.makespan);
        },
    ));
    fbf_obs::ring::uninstall();

    // One Fig. 8-shaped end-to-end point (plan + simulate), env-scaled.
    let e2e_cfg = ExperimentConfig::builder()
        .policy(PolicyKind::Fbf)
        .cache_mb(16)
        .stripes(env_usize("FBF_STRIPES", if quick { 64 } else { 512 }) as u32)
        .error_count(env_usize("FBF_ERRORS", if quick { 16 } else { 64 }))
        .workers(env_usize("FBF_WORKERS", 16))
        .gen_threads(1)
        .build()
        .expect("bench config is valid");
    benches.push(measure(
        "fig8_point_e2e",
        1,
        if quick { 1 } else { 5 },
        1,
        || {
            let m = run_experiment(&e2e_cfg).expect("bench experiment runs");
            std::hint::black_box(m.disk_reads);
        },
    ));

    // The batched data plane alone: plan once (cold) outside the timed
    // region, then replay the same campaign through a fresh sim backend
    // each iteration at decode_batch = 8. Isolates gather/decode/write
    // from scheme generation.
    let batch_cfg = ExperimentConfig::builder()
        .policy(PolicyKind::Fbf)
        .cache_mb(4)
        .chunk_kb(8)
        .stripes(128)
        .error_count(32)
        .workers(16)
        .decode_batch(8)
        .gen_threads(1)
        .build()
        .expect("bench config is valid");
    let batch_plan = PlannedCampaign::cold(&batch_cfg).expect("bench campaign plans");
    benches.push(measure(
        "decode_batch_8x",
        1,
        if quick { 1 } else { 2 * scale.min(10) },
        1,
        || {
            let mut backend =
                sim_backend_for(&batch_cfg, &batch_plan).expect("bench backend builds");
            let m = run_planned_on(&batch_cfg, &batch_plan, PlanSource::Cold, &mut backend)
                .expect("bench campaign runs");
            std::hint::black_box(m.chunks_recovered);
        },
    ));

    // Array-wide rebuild: discover + shard + plan + admit + simulate one
    // whole-disk campaign per iteration, on both placements. The pair
    // gates the scheduler's own overhead and keeps the declustered
    // admission path (per-wave footprint projection) honest.
    let rebuild_spec = |placement: Placement| {
        let base = ExperimentConfig::builder()
            .policy(PolicyKind::Fbf)
            .cache_mb(4)
            .chunk_kb(8)
            .stripes(if quick { 96 } else { 256 })
            .error_count(32)
            .workers(16)
            .gen_threads(1)
            .build()
            .expect("bench config is valid");
        let mut spec = RebuildSpec::new(base, 48);
        spec.placement = placement;
        spec
    };
    for (bench_name, placement) in [
        (
            "rebuild_declustered_e2e",
            Placement::Declustered { seed: 0x5EED },
        ),
        ("rebuild_clustered_e2e", Placement::Fixed),
    ] {
        let spec = rebuild_spec(placement);
        benches.push(measure(
            bench_name,
            1,
            if quick { 1 } else { scale.min(10) },
            1,
            || {
                let outcome = fbf_core::run_rebuild(&spec).expect("bench rebuild runs");
                std::hint::black_box(outcome.report.disk_reads);
            },
        ));
    }

    // Report.
    let slab = benches
        .iter()
        .find(|b| b.name == "queue_slab_churn")
        .unwrap()
        .ns_per_op;
    let map = benches
        .iter()
        .find(|b| b.name == "queue_map_churn")
        .unwrap()
        .ns_per_op;
    println!("{:<22} {:>12} {:>16}", "bench", "ns/op", "ops/sec");
    for b in &benches {
        println!(
            "{:<22} {:>12.2} {:>16.0}",
            b.name, b.ns_per_op, b.ops_per_sec
        );
    }
    println!("queue speedup (map/slab): {:.2}x", map / slab);

    // JSON snapshot.
    let rows: Vec<String> = benches
        .iter()
        .map(|b| {
            format!(
                "    {{ \"name\": \"{}\", \"ns_per_op\": {:.3}, \"ops_per_sec\": {:.1} }}",
                b.name, b.ns_per_op, b.ops_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"date\": \"{}\",\n  \"commit\": \"{}\",\n  \"quick\": {},\n  \"machine\": {{ \"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {}, \"simd\": \"{}\" }},\n  \"queue_speedup_map_over_slab\": {:.2},\n  \"benches\": [\n{}\n  ]\n}}\n",
        today(),
        commit_hash(),
        quick,
        std::env::consts::OS,
        std::env::consts::ARCH,
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        active_kernel().name(),
        map / slab,
        rows.join(",\n")
    );
    let out = std::env::var("FBF_BENCH_OUT").unwrap_or_else(|_| format!("BENCH_{}.json", today()));
    match std::fs::write(&out, &json) {
        Ok(()) => eprintln!("(snapshot saved to {out})"),
        Err(e) => {
            eprintln!("error: could not write {out}: {e}");
            std::process::exit(1);
        }
    }
}
