//! Generality check: FBF on RAID-6 codes (RDP, EVENODD).
//!
//! §IV-C claims FBF applies to "a wide range of storage arrays" since it
//! consumes only chain structure. With two chain directions instead of
//! three, the maximum share count per chunk drops, so the gap between FBF
//! and LRU narrows — but the ranking should hold. This bench runs the
//! Fig. 8-style hit-ratio sweep on both RAID-6 codes.

use fbf_bench::{base_config, save_csv, CACHE_MB};
use fbf_cache::PolicyKind;
use fbf_codes::CodeSpec;
use fbf_core::{report::f, sweep, Table};

fn main() {
    for code in [CodeSpec::Rdp, CodeSpec::Evenodd] {
        for p in [7usize, 13] {
            let configs: Vec<_> = CACHE_MB
                .iter()
                .flat_map(|&mb| {
                    PolicyKind::ALL
                        .iter()
                        .map(move |&policy| base_config(code, p, policy, mb))
                })
                .collect();
            let points = sweep(&configs, 0).expect("sweep failed");

            let mut table = Table::new(
                format!("RAID-6 hit ratio — {}(p={p})", code.name()),
                &["cache_mb", "FIFO", "LRU", "LFU", "ARC", "FBF"],
            );
            for (i, &mb) in CACHE_MB.iter().enumerate() {
                let row = &points[i * PolicyKind::ALL.len()..(i + 1) * PolicyKind::ALL.len()];
                let mut cells = vec![mb.to_string()];
                cells.extend(row.iter().map(|pt| f(pt.metrics.hit_ratio, 4)));
                table.push_row(cells);
            }
            println!("{}", table.render());
            save_csv(
                &format!("raid6_{}_p{p}", code.name().to_lowercase()),
                &table,
            );
        }
    }
}
