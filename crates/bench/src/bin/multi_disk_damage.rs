//! Multi-disk damage: stripes carrying errors on more than one disk.
//!
//! LSE studies (the paper's \[8\]/\[9\]) show errors cluster spatially — a
//! stripe hit once is disproportionately likely to be hit again. With two
//! damaged columns, more repairs are forced off the horizontal direction
//! and more chains cross, so sharing — and FBF's edge — *grows*. This
//! bench sweeps the probability of a second same-stripe error.

use fbf_bench::save_csv;
use fbf_cache::PolicyKind;
use fbf_codes::{CodeSpec, StripeCode};
use fbf_core::{report::f, Metrics, PlanSource, Table};
use fbf_disksim::{ArrayMapping, Engine, EngineConfig};
use fbf_recovery::{build_scripts, ExecConfig, RecoveryController, SchemeKind};
use fbf_workload::{generate_errors, ErrorGenConfig};

fn run(code: &StripeCode, multi_col_prob: f64, policy: PolicyKind, cache_mb: usize) -> Metrics {
    let stripes = 4096u32;
    let errors = generate_errors(
        code,
        &ErrorGenConfig {
            multi_col_prob,
            ..ErrorGenConfig::paper_default(stripes, 512, 0x5EED)
        },
    );
    let t0 = std::time::Instant::now();
    let mut ctl = RecoveryController::new(code, SchemeKind::FbfCycling);
    let (schemes, dict) = ctl.plan_campaign(&errors).expect("plan");
    let overhead = t0.elapsed();
    let scripts = build_scripts(
        &schemes,
        &dict,
        &ExecConfig {
            workers: 128,
            ..Default::default()
        },
    );
    let engine = Engine::new(EngineConfig::paper(
        policy,
        cache_mb * 1024 / 32,
        ArrayMapping::new(code.cols(), code.rows(), false),
        stripes as u64,
    ));
    let report = engine.run(&scripts);
    let recovered: usize = errors
        .damage_by_stripe()
        .iter()
        .map(|d| d.cells.len())
        .sum();
    Metrics::from_run(
        &report,
        overhead,
        schemes.len(),
        recovered,
        PlanSource::Cold,
    )
}

fn main() {
    let code = StripeCode::build(CodeSpec::Tip, 11).expect("prime");
    let cache_mb = 64;
    let mut table = Table::new(
        format!("Multi-disk damage sweep — TIP(p=11), {cache_mb}MB"),
        &[
            "second_error_prob",
            "policy",
            "hit_ratio",
            "disk_reads",
            "recon_s",
        ],
    );
    for prob in [0.0f64, 0.25, 0.5, 1.0] {
        for policy in [PolicyKind::Lru, PolicyKind::Arc, PolicyKind::Fbf] {
            let m = run(&code, prob, policy, cache_mb);
            table.push_row(vec![
                format!("{prob:.2}"),
                policy.name().to_string(),
                f(m.hit_ratio, 4),
                m.disk_reads.to_string(),
                f(m.reconstruction_s, 3),
            ]);
        }
    }
    println!("{}", table.render());
    save_csv("multi_disk_damage", &table);
}
