//! Clustered vs declustered whole-disk rebuild at array scale.
//!
//! Runs the array-wide rebuild scheduler over a 128-disk array (and a
//! rotated middle ground) after the failure of one disk, and reports the
//! numbers the declustering literature turns on: how many stripes the
//! failure actually touches, how skewed the rebuild reads land on the
//! survivors (max/mean), the merged-clock reconstruction time, and the
//! foreground p99 while the rebuild runs. The committed
//! `results/rebuild_compare.csv` is the acceptance evidence that
//! declustered placement beats clustered at >= 100 disks.
//!
//! Knobs: `FBF_DISKS` (default 128), `FBF_STRIPES` (default 1024),
//! `FBF_BENCH_QUICK=1` shrinks the campaign for CI smoke.

use fbf_bench::{env_usize, save_csv};
use fbf_core::{report::f, run_rebuild, ExperimentConfig, RebuildSpec, Table};
use fbf_disksim::Placement;

fn main() {
    let quick = std::env::var("FBF_BENCH_QUICK").is_ok_and(|v| v == "1");
    let disks = env_usize("FBF_DISKS", 128);
    let stripes = env_usize("FBF_STRIPES", if quick { 192 } else { 1024 }) as u32;

    let base = ExperimentConfig::builder()
        .cache_mb(8)
        .chunk_kb(8)
        .stripes(stripes)
        .error_count(64)
        .workers(32)
        .gen_threads(1)
        .build()
        .expect("compare config is valid");

    let mut table = Table::new(
        format!("Whole-disk rebuild, {disks} disks, {stripes} stripes (disk 0 fails)"),
        &[
            "placement",
            "stripes_affected",
            "rebuild_skew",
            "reconstruction_s",
            "waves",
            "app_p99_ms",
        ],
    );

    let mut skews = Vec::new();
    for placement in [
        Placement::Fixed,
        Placement::Rotated,
        Placement::Declustered { seed: base.seed },
    ] {
        let mut spec = RebuildSpec::new(base, disks);
        spec.placement = placement;
        let outcome = run_rebuild(&spec).expect("rebuild runs");
        assert_eq!(
            outcome.stripes_rebuilt,
            outcome.stripes_affected,
            "{} rebuild left stripes behind",
            placement.name()
        );
        skews.push((placement.name(), outcome.rebuild_skew));
        table.push_row(vec![
            placement.name().to_string(),
            outcome.stripes_affected.to_string(),
            f(outcome.rebuild_skew, 3),
            f(outcome.reconstruction_s, 3),
            outcome.waves.to_string(),
            outcome.app_p99_ms.map_or("-".to_string(), |ms| f(ms, 3)),
        ]);
    }
    println!("{}", table.render());
    save_csv("rebuild_compare", &table);

    // The claim this benchmark exists to check: declustering cuts the
    // max/mean rebuild-read skew against clustered placement.
    let skew_of = |name: &str| {
        skews
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, s)| s)
            .expect("placement ran")
    };
    let (clustered, declustered) = (skew_of("clustered"), skew_of("declustered"));
    println!(
        "declustered/clustered skew: {:.3} ({:.3} vs {:.3})",
        declustered / clustered,
        declustered,
        clustered
    );
    assert!(
        declustered < clustered,
        "declustered skew {declustered:.3} must beat clustered {clustered:.3}"
    );
}
