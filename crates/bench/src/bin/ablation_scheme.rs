//! Ablation: how much of FBF's win is the recovery *scheme* vs the cache
//! *policy*?
//!
//! Runs every (scheme generator × cache policy) pair at a fixed, limited
//! cache size. Expected outcome: with the horizontal-only typical scheme no
//! chunk is re-referenced, so every policy's hit ratio collapses to ~0 and
//! the policies tie; the shared-chunk schemes (cycling, greedy) create the
//! reuse that the FBF *policy* then protects better than the baselines.

use fbf_bench::{base_config, save_csv};
use fbf_cache::PolicyKind;
use fbf_codes::CodeSpec;
use fbf_core::{report::f, sweep, Table};
use fbf_recovery::SchemeKind;

fn main() {
    let cache_mb = 64;
    let p = 11;
    let mut table = Table::new(
        format!("Scheme ablation — TIP(p={p}), cache {cache_mb}MB"),
        &["scheme", "policy", "hit_ratio", "disk_reads", "recon_s"],
    );
    for scheme in SchemeKind::ALL {
        let configs: Vec<_> = PolicyKind::ALL
            .iter()
            .map(|&policy| {
                let mut cfg = base_config(CodeSpec::Tip, p, policy, cache_mb);
                cfg.scheme = scheme;
                cfg
            })
            .collect();
        let points = sweep(&configs, 0).expect("sweep failed");
        for pt in &points {
            table.push_row(vec![
                scheme.name().to_string(),
                pt.config.policy.name().to_string(),
                f(pt.metrics.hit_ratio, 4),
                pt.metrics.disk_reads.to_string(),
                f(pt.metrics.reconstruction_s, 3),
            ]);
        }
    }
    println!("{}", table.render());
    save_csv("ablation_scheme", &table);
}
