//! Fig. 11 — partial stripe reconstruction time, TIP-code.
//!
//! Shapes to look for (paper §IV-B-4): reconstruction time decreases with
//! cache size, FBF finishes first in most cells; improvements are smaller
//! than for response time because XOR computation and spare writes cost
//! the same for every policy (up to ~15% over LRU in the paper).

use fbf_bench::{base_config, save_csv, CACHE_MB, TIP_PRIMES};
use fbf_cache::PolicyKind;
use fbf_codes::CodeSpec;
use fbf_core::{report::f, sweep, Table};

fn main() {
    for p in TIP_PRIMES {
        let configs: Vec<_> = CACHE_MB
            .iter()
            .flat_map(|&mb| {
                PolicyKind::ALL
                    .iter()
                    .map(move |&policy| base_config(CodeSpec::Tip, p, policy, mb))
            })
            .collect();
        let points = sweep(&configs, 0).expect("sweep failed");

        let mut table = Table::new(
            format!("Fig.11 reconstruction time (s) — TIP(p={p})"),
            &["cache_mb", "FIFO", "LRU", "LFU", "ARC", "FBF"],
        );
        for (i, &mb) in CACHE_MB.iter().enumerate() {
            let row = &points[i * PolicyKind::ALL.len()..(i + 1) * PolicyKind::ALL.len()];
            let mut cells = vec![mb.to_string()];
            cells.extend(row.iter().map(|pt| f(pt.metrics.reconstruction_s, 3)));
            table.push_row(cells);
        }
        println!("{}", table.render());
        save_csv(&format!("fig11_tip_p{p}"), &table);
    }
}
