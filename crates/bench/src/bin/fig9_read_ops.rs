//! Fig. 9 — number of disk read operations during recovery, TIP-code.
//!
//! Shapes to look for (paper §IV-B-2): reads fall as cache grows and
//! stabilise (stable point postponed as P grows); FBF reads least, with the
//! biggest margin at restricted cache sizes (up to ~22% fewer than LFU in
//! the paper).

use fbf_bench::{base_config, finish_obs, init_obs, save_csv, CACHE_MB, TIP_PRIMES};
use fbf_cache::PolicyKind;
use fbf_codes::CodeSpec;
use fbf_core::{sweep, Table};

fn main() {
    init_obs();
    for p in TIP_PRIMES {
        let configs: Vec<_> = CACHE_MB
            .iter()
            .flat_map(|&mb| {
                PolicyKind::ALL
                    .iter()
                    .map(move |&policy| base_config(CodeSpec::Tip, p, policy, mb))
            })
            .collect();
        let points = sweep(&configs, 0).expect("sweep failed");

        let mut table = Table::new(
            format!("Fig.9 disk reads — TIP(p={p})"),
            &["cache_mb", "FIFO", "LRU", "LFU", "ARC", "FBF"],
        );
        for (i, &mb) in CACHE_MB.iter().enumerate() {
            let row = &points[i * PolicyKind::ALL.len()..(i + 1) * PolicyKind::ALL.len()];
            let mut cells = vec![mb.to_string()];
            cells.extend(row.iter().map(|pt| pt.metrics.disk_reads.to_string()));
            table.push_row(cells);
        }
        println!("{}", table.render());
        save_csv(&format!("fig9_tip_p{p}"), &table);
    }
    finish_obs();
}
