//! Fig. 8 — cache hit ratio during partial stripe reconstruction.
//!
//! One sub-table per (code, P): rows are cache sizes, columns the five
//! policies. The paper's observations to look for in the output:
//! FBF dominates at limited cache sizes, plateaus earliest, and all curves
//! converge once the cache exceeds the per-stripe working set; STAR shows
//! the highest ratios because its adjuster chunks are referenced many times.

//! `FBF_FIG8_SMOKE=1` shrinks the grid to one (TIP, p=7) sub-table over
//! two cache sizes — the CI smoke configuration that pairs with
//! `--trace` to exercise the whole observability path in seconds.

use fbf_bench::{
    base_config, finish_obs, init_obs, save_csv, save_metrics_snapshot, CACHE_MB, FIG8_PRIMES,
};
use fbf_cache::PolicyKind;
use fbf_codes::CodeSpec;
use fbf_core::{report::f, sweep, Table};

fn main() {
    init_obs();
    let mut all_points = Vec::new();
    let smoke = std::env::var("FBF_FIG8_SMOKE").is_ok_and(|v| v == "1");
    let codes: &[CodeSpec] = if smoke {
        &[CodeSpec::Tip]
    } else {
        &CodeSpec::ALL
    };
    let primes: &[usize] = if smoke { &[7] } else { &FIG8_PRIMES };
    let sizes: &[usize] = if smoke { &[2, 64] } else { &CACHE_MB };

    for &code in codes {
        for &p in primes {
            if p < code.min_prime() {
                continue;
            }
            let configs: Vec<_> = sizes
                .iter()
                .flat_map(|&mb| {
                    PolicyKind::ALL
                        .iter()
                        .map(move |&policy| base_config(code, p, policy, mb))
                })
                .collect();
            let points = sweep(&configs, 0).expect("sweep failed");

            let mut table = Table::new(
                format!("Fig.8 hit ratio — {}(p={p})", code.name()),
                &["cache_mb", "FIFO", "LRU", "LFU", "ARC", "FBF"],
            );
            for (i, &mb) in sizes.iter().enumerate() {
                let row = &points[i * PolicyKind::ALL.len()..(i + 1) * PolicyKind::ALL.len()];
                let mut cells = vec![mb.to_string()];
                cells.extend(row.iter().map(|pt| f(pt.metrics.hit_ratio, 4)));
                table.push_row(cells);
            }
            println!("{}", table.render());
            save_csv(&format!("fig8_{}_p{p}", code.name().to_lowercase()), &table);
            all_points.extend(points);
        }
    }
    save_metrics_snapshot(&all_points);
    finish_obs();
}
