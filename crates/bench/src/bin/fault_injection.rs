//! Seeded fault-injection smoke: determinism + byte-exact verification.
//!
//! Runs one campaign under a hostile fault plan — hard media errors, a
//! transiently-stalling array, a straggler disk, and a mid-campaign
//! whole-disk kill — **twice**, and fails (non-zero exit) unless the two
//! runs produce identical `Metrics` (including every fault counter, the
//! replan/round counts, and the data-loss list). Then replays the same
//! campaign through `verify_campaign_faulted`, proving every surviving
//! repaired stripe decodes bit-for-bit and every lost stripe genuinely
//! exceeds the code's fault tolerance.
//!
//! CI runs this on every push (`FBF_BENCH_QUICK=1` shrinks the scale;
//! the assertions are identical). Scale knobs: `FBF_STRIPES`,
//! `FBF_ERRORS`, `FBF_WORKERS`.

use fbf_bench::env_usize;
use fbf_cache::PolicyKind;
use fbf_codes::CodeSpec;
use fbf_core::{run_experiment, verify_campaign_faulted, ExperimentConfig, Metrics};
use fbf_disksim::{DiskKill, FaultPlan, RetryPolicy, SimTime, SlowDisk};

fn campaign() -> ExperimentConfig {
    let quick = std::env::var("FBF_BENCH_QUICK").is_ok();
    let mut cfg = ExperimentConfig::builder()
        .code(CodeSpec::Tip)
        .p(7)
        .policy(PolicyKind::Fbf)
        .cache_mb(16)
        .stripes(env_usize("FBF_STRIPES", if quick { 128 } else { 512 }) as u32)
        .error_count(env_usize("FBF_ERRORS", if quick { 48 } else { 128 }))
        .workers(env_usize("FBF_WORKERS", 16))
        .gen_threads(1)
        .build()
        .expect("smoke config is valid");
    cfg.faults = FaultPlan {
        seed: 0xfb_f5,
        media_per_mille: 15,
        transient_per_mille: 40,
        straggler: Some(SlowDisk {
            disk: 2,
            scale_milli: 1500,
        }),
        disk_kill: Some(DiskKill {
            disk: 3,
            at: SimTime::from_millis(40),
        }),
        retry: RetryPolicy::default(),
        ..FaultPlan::none()
    };
    cfg
}

/// Zero the two host-wall-clock fields (scheme-generation overhead is
/// measured on the host, not the virtual clock) so `==` checks exactly
/// the simulated, seed-determined portion of the metrics.
fn simulated(mut m: Metrics) -> Metrics {
    m.overhead_per_stripe_ms = 0.0;
    m.overhead_pct = 0.0;
    m
}

fn main() {
    let cfg = campaign();
    eprintln!(
        "fault-injection smoke: {} stripes, {} errors, media=15‰ transient=40‰ \
         straggler(disk 2 @1.5x) kill(disk 3 @40ms), seed {:#x}",
        cfg.stripes, cfg.error_count, cfg.faults.seed
    );

    let first: Metrics = simulated(run_experiment(&cfg).expect("faulted run completes"));
    let second: Metrics = simulated(run_experiment(&cfg).expect("faulted rerun completes"));
    if first != second {
        eprintln!("DETERMINISM FAILURE: two runs of the same seeded fault plan diverged");
        eprintln!("first:  {}", first.to_json());
        eprintln!("second: {}", second.to_json());
        std::process::exit(1);
    }
    if first.faults.is_empty() {
        eprintln!("SMOKE MISCONFIGURED: hostile fault plan injected nothing");
        std::process::exit(1);
    }

    let verify = verify_campaign_faulted(&cfg).expect("faulted verification completes");
    if verify.stripes + verify.lost != first.stripes_repaired + first.stripes_lost {
        eprintln!(
            "ACCOUNTING FAILURE: verify saw {} stripes (+{} lost) but the run \
             repaired {} (+{} lost)",
            verify.stripes, verify.lost, first.stripes_repaired, first.stripes_lost
        );
        std::process::exit(1);
    }

    // Hand-rolled JSON, same discipline as Metrics::to_json (no serde).
    println!(
        "{{\"deterministic\":true,\"verified_stripes\":{},\"verified_chunks\":{},\
         \"verified_bytes\":{},\"lost_stripes\":{},\"metrics\":{}}}",
        verify.stripes,
        verify.chunks,
        verify.bytes,
        verify.lost,
        first.to_json()
    );
    eprintln!(
        "ok: identical metrics across reruns; {} surviving stripes verified \
         byte-exact ({} chunks), {} correctly declared lost; \
         {} media / {} transient ({} retries, {} exhausted) / {} dead-disk, \
         {} replans over {} rounds",
        verify.stripes,
        verify.chunks,
        verify.lost,
        first.faults.media_errors,
        first.faults.transient_faults,
        first.faults.retries,
        first.faults.retries_exhausted,
        first.faults.dead_disk_reads,
        first.replans,
        first.replan_rounds,
    );
}
