//! Exhaustive fault-tolerance audit: decode every combination of
//! `fault_tolerance` simultaneous whole-column erasures, for every shipped
//! code and every paper prime.
//!
//! This is the repo's MDS-property certificate: the 3DFT codes (TIP, HDD1,
//! Triple-STAR, STAR) must survive all column triples, the RAID-6 codes
//! (RDP, EVENODD) all column pairs. Any `bad > 0` is a construction bug.

use fbf_codes::decode::decode;
use fbf_codes::encode::encode;
use fbf_codes::{Cell, CodeSpec, Stripe, StripeCode};

fn main() {
    let mut failures = 0usize;
    for spec in CodeSpec::EXTENDED {
        for p in [5usize, 7, 11, 13] {
            if p < spec.min_prime() {
                continue;
            }
            let code = StripeCode::build(spec, p).unwrap();
            let mut stripe = Stripe::patterned(code.layout(), 8);
            encode(&code, &mut stripe).unwrap();
            let n = code.cols();
            let k = spec.fault_tolerance();
            let (mut ok, mut bad) = (0usize, 0usize);

            // All size-k column subsets (k is 2 or 3).
            let mut combos: Vec<Vec<usize>> = Vec::new();
            if k == 2 {
                for a in 0..n {
                    for b in a + 1..n {
                        combos.push(vec![a, b]);
                    }
                }
            } else {
                for a in 0..n {
                    for b in a + 1..n {
                        for c in b + 1..n {
                            combos.push(vec![a, b, c]);
                        }
                    }
                }
            }
            for cols in combos {
                let erased: Vec<Cell> = cols
                    .iter()
                    .flat_map(|&c| (0..code.rows()).map(move |r| Cell::new(r, c)))
                    .collect();
                let mut s = stripe.clone();
                for &e in &erased {
                    s.erase(code.layout(), e);
                }
                match decode(&code, &mut s, &erased) {
                    Ok(_) => {
                        // Verify payloads, not just solvability.
                        let intact = erased
                            .iter()
                            .all(|&e| s.get(code.layout(), e) == stripe.get(code.layout(), e));
                        if intact {
                            ok += 1;
                        } else {
                            bad += 1;
                        }
                    }
                    Err(_) => bad += 1,
                }
            }
            println!(
                "{:<10} p={:<2} tolerance={}: {ok} combinations ok, {bad} bad",
                spec.name(),
                p,
                k
            );
            failures += bad;
        }
    }
    if failures == 0 {
        println!("\nall codes are exhaustively erasure-tolerant at their rated level ✓");
    } else {
        println!("\nFAILURES: {failures}");
        std::process::exit(1);
    }
}
