//! Reliability translation of Fig. 11: what FBF's faster reconstruction
//! buys in MTTDL.
//!
//! The paper argues that cutting reconstruction time narrows the window of
//! vulnerability and so cuts the chance of a fourth concurrent failure.
//! This bench measures each policy's reconstruction time (TIP grid),
//! scales a nearline 3DFT array's repair window accordingly, and reports
//! the exact Markov-model MTTDL — making the WOV argument quantitative.

use fbf_bench::{base_config, save_csv};
use fbf_cache::PolicyKind;
use fbf_codes::CodeSpec;
use fbf_core::{report::f, run_experiment, ReliabilityParams};

fn main() {
    let p = 11;
    let cache_mb = 64; // the contended regime, where FBF's gain is real
    let mut table = fbf_core::Table::new(
        format!("MTTDL under each policy — TIP(p={p}), {cache_mb}MB cache, nearline 3DFT"),
        &[
            "policy",
            "recon_s",
            "relative_wov",
            "mttdl_years",
            "gain_vs_lru",
        ],
    );

    let mut recon: Vec<(PolicyKind, f64)> = Vec::new();
    for policy in PolicyKind::ALL {
        let m = run_experiment(&base_config(CodeSpec::Tip, p, policy, cache_mb)).expect("run");
        recon.push((policy, m.reconstruction_s));
    }
    let lru_recon = recon
        .iter()
        .find(|(k, _)| *k == PolicyKind::Lru)
        .expect("LRU present")
        .1;

    let base = ReliabilityParams::nearline_3dft(CodeSpec::Tip.disks(p));
    let lru_mttdl = fbf_core::mttdl_years(&ReliabilityParams { ..base });
    for (policy, rs) in &recon {
        let scaled = ReliabilityParams {
            mttr_hours: base.mttr_hours * rs / lru_recon,
            ..base
        };
        let years = fbf_core::mttdl_years(&scaled);
        table.push_row(vec![
            policy.name().to_string(),
            f(*rs, 3),
            f(rs / lru_recon, 4),
            format!("{years:.3e}"),
            f(years / lru_mttdl, 3),
        ]);
    }
    println!("{}", table.render());
    println!("(WOV scales with reconstruction time; MTTDL ∝ 1/WOV³ for a 3DFT,");
    println!(" so the paper's ~15% reconstruction gain is worth ~1.6x in MTTDL)");
    save_csv("reliability_gain", &table);
}
