//! # fbf-bench — harness regenerating every table and figure of the paper
//!
//! One binary per artefact (run with `cargo run --release -p fbf-bench
//! --bin <name>`):
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `fig8_hit_ratio` | Fig. 8 — hit ratio vs cache size, 4 codes × P ∈ {7,11,13} |
//! | `fig9_read_ops` | Fig. 9 — disk reads, TIP, P ∈ {5,7,11,13} |
//! | `fig10_response_time` | Fig. 10 — avg response time, codes × P ∈ {7,11,13} |
//! | `fig11_reconstruction_time` | Fig. 11 — reconstruction time, TIP, P ∈ {5,7,11,13} |
//! | `table4_overhead` | Table IV — FBF temporal overhead |
//! | `table5_summary` | Table V — max improvement of FBF over each baseline |
//! | `ablation_scheme` | scheme generator ablation (typical / cycling / greedy) |
//! | `ablation_demotion` | FBF demotion-mechanism ablation |
//! | `ablation_sharing` | partitioned vs shared cache ablation |
//! | `fig2_fig3_walkthrough` | Figs. 2–3 + Table III — scheme selection demo |
//!
//! Every binary prints aligned tables and drops CSVs under `results/`.
//! Campaign scale is controlled by `FBF_ERRORS` / `FBF_STRIPES` /
//! `FBF_WORKERS` environment variables (defaults reproduce the shapes in
//! minutes on a laptop).

use fbf_cache::PolicyKind;
use fbf_codes::CodeSpec;
use fbf_core::{ExperimentConfig, Table};

/// Cache sizes (MiB) swept by the figures, matching the paper's x-axes.
pub const CACHE_MB: [usize; 8] = [2, 8, 32, 64, 128, 256, 512, 2048];

/// Primes used by the multi-code figures (Figs. 8 and 10).
pub const FIG8_PRIMES: [usize; 3] = [7, 11, 13];
/// TIP-only figures (Figs. 9 and 11) sweep all four primes.
pub const TIP_PRIMES: [usize; 4] = [5, 7, 11, 13];

/// Read a scale knob from the environment.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The figure-scale experiment base: paper constants, campaign sized by
/// env knobs.
pub fn base_config(
    code: CodeSpec,
    p: usize,
    policy: PolicyKind,
    cache_mb: usize,
) -> ExperimentConfig {
    ExperimentConfig::builder()
        .code(code)
        .p(p)
        .policy(policy)
        .cache_mb(cache_mb)
        .stripes(env_usize("FBF_STRIPES", 4096) as u32)
        .error_count(env_usize("FBF_ERRORS", 512))
        .workers(env_usize("FBF_WORKERS", 128))
        .build()
        .expect("paper-shaped figure configuration is valid")
}

/// Write a table's CSV under `results/<name>.csv` (best effort — printing
/// is the primary output).
pub fn save_csv(name: &str, table: &Table) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = std::fs::write(&path, table.to_csv()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("(csv saved to {})", path.display());
        }
    }
}

/// Pretty-print a ratio like `2.47x`.
pub fn times(ours: f64, theirs: f64) -> String {
    if theirs == 0.0 {
        "inf".to_string()
    } else {
        format!("{:.2}x", ours / theirs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_config_uses_paper_constants() {
        let cfg = base_config(CodeSpec::Tip, 7, PolicyKind::Fbf, 64);
        assert_eq!(cfg.chunk_kb, 32);
        assert_eq!(cfg.cache_mb, 64);
        assert_eq!(cfg.code, CodeSpec::Tip);
    }

    #[test]
    fn times_formats() {
        assert_eq!(times(2.0, 1.0), "2.00x");
        assert_eq!(times(1.0, 0.0), "inf");
    }
}
