//! # fbf-bench — harness regenerating every table and figure of the paper
//!
//! One binary per artefact (run with `cargo run --release -p fbf-bench
//! --bin <name>`):
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `fig8_hit_ratio` | Fig. 8 — hit ratio vs cache size, 4 codes × P ∈ {7,11,13} |
//! | `fig9_read_ops` | Fig. 9 — disk reads, TIP, P ∈ {5,7,11,13} |
//! | `fig10_response_time` | Fig. 10 — avg response time, codes × P ∈ {7,11,13} |
//! | `fig11_reconstruction_time` | Fig. 11 — reconstruction time, TIP, P ∈ {5,7,11,13} |
//! | `table4_overhead` | Table IV — FBF temporal overhead |
//! | `table5_summary` | Table V — max improvement of FBF over each baseline |
//! | `ablation_scheme` | scheme generator ablation (typical / cycling / greedy) |
//! | `ablation_demotion` | FBF demotion-mechanism ablation |
//! | `ablation_sharing` | partitioned vs shared cache ablation |
//! | `fig2_fig3_walkthrough` | Figs. 2–3 + Table III — scheme selection demo |
//!
//! Every binary prints aligned tables and drops CSVs under `results/`.
//! Campaign scale is controlled by `FBF_ERRORS` / `FBF_STRIPES` /
//! `FBF_WORKERS` environment variables (defaults reproduce the shapes in
//! minutes on a laptop).
//!
//! The figure binaries that call [`init_obs`] also accept `--trace
//! <path>` (stream a chrome://tracing JSONL run trace) and `--obs`
//! (pretty-print events to stderr), or the equivalent `FBF_TRACE` /
//! `FBF_OBS=1` environment knobs.

use fbf_cache::PolicyKind;
use fbf_codes::CodeSpec;
use fbf_core::{ExperimentConfig, Table};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

pub mod gate;

/// Cache sizes (MiB) swept by the figures, matching the paper's x-axes.
pub const CACHE_MB: [usize; 8] = [2, 8, 32, 64, 128, 256, 512, 2048];

/// Primes used by the multi-code figures (Figs. 8 and 10).
pub const FIG8_PRIMES: [usize; 3] = [7, 11, 13];
/// TIP-only figures (Figs. 9 and 11) sweep all four primes.
pub const TIP_PRIMES: [usize; 4] = [5, 7, 11, 13];

/// Read a scale knob from the environment.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Set once [`init_obs`] installs a subscriber; consulted by
/// [`base_config`] so every experiment the harness builds carries
/// `obs = true` and the engine/runner/sweep emission sites light up.
static OBS_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Whether [`init_obs`] installed a subscriber for this process.
pub fn obs_requested() -> bool {
    OBS_REQUESTED.load(Ordering::Relaxed)
}

/// Observability bootstrap shared by the figure/table binaries.
///
/// Recognises `--trace <path>` (or `--trace=<path>`) and `--obs` on the
/// command line, plus `FBF_TRACE=<path>` and `FBF_OBS=1` in the
/// environment. `--trace` streams chrome://tracing-compatible JSONL to
/// the given file; `--obs` pretty-prints events to stderr; both together
/// fan out to both sinks. With neither present this is a no-op and the
/// run stays on the zero-cost disabled path.
///
/// Call at the top of `main`, and pair with [`finish_obs`] before exit —
/// `std::process::exit` skips destructors, so the trace file must be
/// flushed explicitly.
pub fn init_obs() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace: Option<String> = None;
    let mut stderr = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--obs" => stderr = true,
            "--trace" => {
                if let Some(p) = args.get(i + 1) {
                    trace = Some(p.clone());
                    i += 1;
                }
            }
            s => {
                if let Some(p) = s.strip_prefix("--trace=") {
                    trace = Some(p.to_string());
                }
            }
        }
        i += 1;
    }
    if trace.is_none() {
        if let Ok(p) = std::env::var("FBF_TRACE") {
            if !p.is_empty() {
                trace = Some(p);
            }
        }
    }
    stderr = stderr || std::env::var("FBF_OBS").is_ok_and(|v| v == "1");

    let mut sinks: Vec<Arc<dyn fbf_obs::Subscriber>> = Vec::new();
    if let Some(path) = trace {
        match fbf_obs::TraceWriter::create(std::path::Path::new(&path)) {
            Ok(w) => {
                eprintln!("(trace streaming to {path})");
                sinks.push(Arc::new(w));
            }
            Err(e) => eprintln!("warning: cannot open trace file {path}: {e}"),
        }
    }
    if stderr {
        sinks.push(Arc::new(fbf_obs::StderrSubscriber::default()));
    }
    if sinks.is_empty() {
        return;
    }
    let sub: Arc<dyn fbf_obs::Subscriber> = if sinks.len() == 1 {
        sinks.pop().expect("one sink")
    } else {
        Arc::new(fbf_obs::FanoutSubscriber::new(sinks))
    };
    fbf_obs::install(sub);
    OBS_REQUESTED.store(true, Ordering::Relaxed);
}

/// Flush and detach the subscriber installed by [`init_obs`] (no-op if
/// none was). Call as the last line of a bench `main`.
pub fn finish_obs() {
    if OBS_REQUESTED.load(Ordering::Relaxed) {
        fbf_obs::uninstall();
    }
}

/// The Prometheus snapshot path requested via `--metrics <path>`,
/// `--metrics=<path>`, or `FBF_METRICS=<path>` — the metrics counterpart
/// of [`init_obs`]'s `--trace`. Figure binaries that sweep call
/// [`fbf_core::prometheus_snapshot`] on their points and write it here.
pub fn metrics_path() -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--metrics" {
            if let Some(p) = args.get(i + 1) {
                return Some(p.clone());
            }
        } else if let Some(p) = args[i].strip_prefix("--metrics=") {
            return Some(p.to_string());
        }
        i += 1;
    }
    std::env::var("FBF_METRICS").ok().filter(|p| !p.is_empty())
}

/// Write a Prometheus snapshot of `points` to the path from
/// [`metrics_path`], if one was requested (best effort, like
/// [`save_csv`]).
pub fn save_metrics_snapshot(points: &[fbf_core::SweepPoint]) {
    let Some(path) = metrics_path() else {
        return;
    };
    match std::fs::write(&path, fbf_core::prometheus_snapshot(points)) {
        Ok(()) => eprintln!("(metrics snapshot written to {path})"),
        Err(e) => eprintln!("warning: cannot write metrics snapshot {path}: {e}"),
    }
}

/// The figure-scale experiment base: paper constants, campaign sized by
/// env knobs.
pub fn base_config(
    code: CodeSpec,
    p: usize,
    policy: PolicyKind,
    cache_mb: usize,
) -> ExperimentConfig {
    ExperimentConfig::builder()
        .code(code)
        .p(p)
        .policy(policy)
        .cache_mb(cache_mb)
        .stripes(env_usize("FBF_STRIPES", 4096) as u32)
        .error_count(env_usize("FBF_ERRORS", 512))
        .workers(env_usize("FBF_WORKERS", 128))
        .obs(obs_requested())
        .build()
        .expect("paper-shaped figure configuration is valid")
}

/// Write a table's CSV under `results/<name>.csv` (best effort — printing
/// is the primary output).
pub fn save_csv(name: &str, table: &Table) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = std::fs::write(&path, table.to_csv()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("(csv saved to {})", path.display());
        }
    }
}

/// Pretty-print a ratio like `2.47x`.
pub fn times(ours: f64, theirs: f64) -> String {
    if theirs == 0.0 {
        "inf".to_string()
    } else {
        format!("{:.2}x", ours / theirs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_config_uses_paper_constants() {
        let cfg = base_config(CodeSpec::Tip, 7, PolicyKind::Fbf, 64);
        assert_eq!(cfg.chunk_kb, 32);
        assert_eq!(cfg.cache_mb, 64);
        assert_eq!(cfg.code, CodeSpec::Tip);
    }

    #[test]
    fn times_formats() {
        assert_eq!(times(2.0, 1.0), "2.00x");
        assert_eq!(times(1.0, 0.0), "inf");
    }
}
