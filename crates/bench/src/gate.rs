//! Performance-regression gate over `BENCH_*.json` snapshots.
//!
//! [`diff`] compares a candidate snapshot (freshly produced by
//! `scripts/bench.sh`) against a committed baseline and flags any bench
//! whose `ns_per_op` grew beyond its noise tolerance. The `perf_gate`
//! binary wraps this for CI: exit 0 when every baseline bench is present
//! and within tolerance, nonzero otherwise.
//!
//! ## Noise model
//!
//! Tolerances are per-bench multipliers on the baseline `ns_per_op`
//! (see DESIGN.md §11):
//!
//! * **Full mode** allows 1.5× — generous against scheduler jitter and
//!   thermal variance on shared runners, tight enough to flag a 2×
//!   slowdown unambiguously.
//! * **Quick mode** (`--quick`, paired with `FBF_BENCH_QUICK=1` runs)
//!   allows 4.0× — quick iteration counts are CI smoke, their absolute
//!   numbers are noisy by design; only gross regressions are actionable.
//! * Benches under 10 ns/op get an extra 0.5× headroom in either mode:
//!   at that scale one cache miss or timer-granularity artefact moves
//!   the number double digits of percent.
//! * A handful of benches carry per-name entries in [`NOISE_MODEL`]
//!   (tight SIMD loops, whole-campaign decode) whose empirical variance
//!   doesn't fit the mode base.
//!
//! Snapshots also stamp the machine's `arch` and dispatched SIMD kernel;
//! [`check_comparable`] refuses to gate across instruction sets, where
//! the ratios would be confidently wrong in both directions.
//!
//! A baseline bench *missing* from the candidate fails the gate (a bench
//! that silently disappears is how regressions hide); a candidate bench
//! absent from the baseline is fine (new benches land before their
//! baseline refresh).

/// One bench's comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct GateEntry {
    /// Bench name (snapshot `benches[].name`).
    pub name: String,
    /// Baseline cost, ns/op.
    pub baseline_ns: f64,
    /// Candidate cost, ns/op (`None` = missing from candidate).
    pub candidate_ns: Option<f64>,
    /// Allowed `candidate / baseline` ratio.
    pub tolerance: f64,
    /// Within tolerance (missing ⇒ `false`)?
    pub pass: bool,
}

impl GateEntry {
    /// Observed slowdown ratio (`None` when missing).
    pub fn ratio(&self) -> Option<f64> {
        self.candidate_ns.map(|c| {
            if self.baseline_ns > 0.0 {
                c / self.baseline_ns
            } else {
                1.0
            }
        })
    }
}

/// The whole gate outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// One entry per baseline bench, in baseline order.
    pub entries: Vec<GateEntry>,
    /// Candidate benches with no baseline (informational, never failing).
    pub new_benches: Vec<String>,
    /// Quick-mode tolerances in effect?
    pub quick: bool,
}

impl GateReport {
    /// Every baseline bench present and within tolerance?
    pub fn pass(&self) -> bool {
        !self.entries.is_empty() && self.entries.iter().all(|e| e.pass)
    }

    /// Entries that failed.
    pub fn failures(&self) -> impl Iterator<Item = &GateEntry> {
        self.entries.iter().filter(|e| !e.pass)
    }

    /// Human-readable table for the CI log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "perf gate ({} tolerances)\n{:<32} {:>12} {:>12} {:>8} {:>6}  verdict\n",
            if self.quick { "quick" } else { "full" },
            "bench",
            "baseline",
            "candidate",
            "ratio",
            "allow",
        ));
        for e in &self.entries {
            let (cand, ratio) = match (e.candidate_ns, e.ratio()) {
                (Some(c), Some(r)) => (format!("{c:.3}"), format!("{r:.2}x")),
                _ => ("MISSING".to_string(), "-".to_string()),
            };
            out.push_str(&format!(
                "{:<32} {:>12.3} {:>12} {:>8} {:>5.2}x  {}\n",
                e.name,
                e.baseline_ns,
                cand,
                ratio,
                e.tolerance,
                if e.pass { "ok" } else { "REGRESSION" },
            ));
        }
        for name in &self.new_benches {
            out.push_str(&format!("{name:<32} (new bench, no baseline — ok)\n"));
        }
        out
    }
}

/// Per-bench noise entries: `(name, full_tolerance, quick_tolerance)`.
/// Benches not listed use the mode base. The SIMD and event-queue
/// microbenches sit in tight loops whose ns/op swings with frequency
/// scaling on shared runners, so they get a little extra headroom; the
/// batched-decode bench runs a whole campaign per iteration (allocation
/// + planning replay), which is the noisiest shape we gate.
const NOISE_MODEL: &[(&str, f64, f64)] = &[
    ("xor_many_simd_6x32k", 1.6, 4.0),
    ("xor_fold4_6x32k", 1.6, 4.0),
    ("calendar_queue_churn", 1.6, 4.0),
    ("binary_heap_churn", 1.6, 4.0),
    ("decode_batch_8x", 2.0, 6.0),
    ("obs_ring_enabled", 1.6, 4.0),
    ("obs_ring_disabled", 1.6, 4.0),
    ("rebuild_declustered_e2e", 2.0, 6.0),
    ("rebuild_clustered_e2e", 2.0, 6.0),
];

/// Tolerance for one bench: the per-bench noise-model entry (or the
/// mode base) plus sub-10ns jitter headroom.
pub fn tolerance_for(name: &str, baseline_ns: f64, quick: bool) -> f64 {
    let base = match NOISE_MODEL.iter().find(|(n, _, _)| *n == name) {
        Some(&(_, full, quick_tol)) => {
            if quick {
                quick_tol
            } else {
                full
            }
        }
        None if quick => 4.0,
        None => 1.5,
    };
    if baseline_ns < 10.0 {
        base + 0.5
    } else {
        base
    }
}

/// Machine-identity fields that decide whether two snapshots are
/// comparable at all. `ns_per_op` on an AVX2 box and a scalar box are
/// different experiments — gating one against the other produces
/// confidently wrong verdicts in both directions.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineInfo {
    /// `machine.arch` (`std::env::consts::ARCH`), if stamped.
    pub arch: Option<String>,
    /// `machine.simd` (the dispatched XOR kernel), if stamped.
    pub simd: Option<String>,
}

/// Extract the `machine` object's identity fields from a snapshot.
/// Fields absent (old snapshots predate `simd`) come back `None`.
pub fn parse_machine(json: &str) -> MachineInfo {
    let obj = json
        .find("\"machine\"")
        .and_then(|at| {
            let body = &json[at..];
            let open = body.find('{')?;
            let close = body[open..].find('}')?;
            Some(&body[open + 1..open + close])
        })
        .unwrap_or("");
    MachineInfo {
        arch: string_field(obj, "arch"),
        simd: string_field(obj, "simd"),
    }
}

/// Refuse cross-ISA comparisons. `Err` when the snapshots definitely
/// came from different instruction sets (arch or dispatched SIMD kernel
/// differ); `Ok(Some(notice))` when a field is missing on one side (old
/// baselines predate `machine.simd`) so the caller can log it; `Ok(None)`
/// when the machines match outright.
pub fn check_comparable(
    baseline: &MachineInfo,
    candidate: &MachineInfo,
) -> Result<Option<String>, String> {
    if let (Some(b), Some(c)) = (&baseline.arch, &candidate.arch) {
        if b != c {
            return Err(format!(
                "baseline arch {b:?} != candidate arch {c:?}; \
                 cross-ISA comparisons are meaningless — regenerate the \
                 baseline on this machine"
            ));
        }
    }
    if let (Some(b), Some(c)) = (&baseline.simd, &candidate.simd) {
        if b != c {
            return Err(format!(
                "baseline SIMD kernel {b:?} != candidate {c:?}; the XOR \
                 benches measure different code paths — regenerate the \
                 baseline on this machine (or match FBF_XOR_KERNEL)"
            ));
        }
    }
    if baseline.arch.is_none() || baseline.simd.is_none() {
        return Ok(Some(
            "baseline snapshot predates machine arch/simd stamping; \
             comparing anyway — refresh the baseline to enable the \
             cross-ISA check"
                .to_string(),
        ));
    }
    if candidate.arch.is_none() || candidate.simd.is_none() {
        return Ok(Some(
            "candidate snapshot lacks machine arch/simd fields; \
             comparing anyway"
                .to_string(),
        ));
    }
    Ok(None)
}

/// Snapshot schema revision this gate understands. Matches
/// `fbf_core::METRICS_SCHEMA_VERSION`; `perf_baseline` stamps it into
/// every snapshot it writes.
pub const SNAPSHOT_SCHEMA_VERSION: u64 = 1;

/// Parse a `BENCH_*.json` snapshot into `(name, ns_per_op)` pairs, in
/// file order. Hand-rolled like every (de)serializer in this workspace:
/// scans the `"benches"` array for `"name"` / `"ns_per_op"` keys, which
/// the stable snapshot schema guarantees per object.
///
/// Rejects snapshots whose top-level `schema_version` is missing or not
/// [`SNAPSHOT_SCHEMA_VERSION`] — comparing across schema revisions would
/// produce confidently wrong verdicts, which is worse than failing loud.
pub fn parse_snapshot(json: &str) -> Result<Vec<(String, f64)>, String> {
    let benches_at = json.find("\"benches\"").unwrap_or(json.len());
    match number_field(&json[..benches_at], "schema_version") {
        Some(v) if v == SNAPSHOT_SCHEMA_VERSION as f64 => {}
        Some(v) => {
            return Err(format!(
                "snapshot schema_version {v} is not the supported \
                 {SNAPSHOT_SCHEMA_VERSION}; regenerate the snapshot with \
                 this tree's perf_baseline (or update the gate)"
            ));
        }
        None => {
            return Err(format!(
                "snapshot has no top-level schema_version (expected \
                 {SNAPSHOT_SCHEMA_VERSION}); regenerate it with this \
                 tree's perf_baseline"
            ));
        }
    }
    let start = json
        .find("\"benches\"")
        .ok_or_else(|| "no \"benches\" key".to_string())?;
    let body = &json[start..];
    let open = body
        .find('[')
        .ok_or_else(|| "\"benches\" is not an array".to_string())?;
    let close = body[open..]
        .find(']')
        .ok_or_else(|| "unterminated benches array".to_string())?;
    let array = &body[open + 1..open + close];

    let mut out = Vec::new();
    for obj in array.split('{').skip(1) {
        let obj = obj.split('}').next().unwrap_or("");
        let name = string_field(obj, "name")
            .ok_or_else(|| format!("bench object without name: {obj:?}"))?;
        let ns = number_field(obj, "ns_per_op")
            .ok_or_else(|| format!("bench {name:?} without ns_per_op"))?;
        out.push((name, ns));
    }
    if out.is_empty() {
        return Err("benches array is empty".to_string());
    }
    Ok(out)
}

fn string_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let after = &obj[obj.find(&pat)? + pat.len()..];
    let after = &after[after.find(':')? + 1..];
    let first_quote = after.find('"')?;
    let rest = &after[first_quote + 1..];
    Some(rest[..rest.find('"')?].to_string())
}

fn number_field(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let after = &obj[obj.find(&pat)? + pat.len()..];
    let after = &after[after.find(':')? + 1..];
    let num: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    num.parse().ok()
}

/// Compare `candidate` against `baseline` under the mode's tolerances.
pub fn diff(baseline: &[(String, f64)], candidate: &[(String, f64)], quick: bool) -> GateReport {
    let entries = baseline
        .iter()
        .map(|(name, base_ns)| {
            let cand = candidate.iter().find(|(n, _)| n == name).map(|&(_, ns)| ns);
            let tolerance = tolerance_for(name, *base_ns, quick);
            let pass = match cand {
                Some(c) => *base_ns <= 0.0 || c / base_ns <= tolerance,
                None => false,
            };
            GateEntry {
                name: name.clone(),
                baseline_ns: *base_ns,
                candidate_ns: cand,
                tolerance,
                pass,
            }
        })
        .collect();
    let new_benches = candidate
        .iter()
        .filter(|(n, _)| !baseline.iter().any(|(b, _)| b == n))
        .map(|(n, _)| n.clone())
        .collect();
    GateReport {
        entries,
        new_benches,
        quick,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|&(n, v)| (n.to_string(), v)).collect()
    }

    const SAMPLE: &str = r#"{
  "schema_version": 1,
  "date": "2026-08-06",
  "quick": false,
  "machine": { "os": "linux", "arch": "x86_64", "cpus": 1 },
  "benches": [
    { "name": "queue_slab_churn", "ns_per_op": 10.177, "ops_per_sec": 98256205.7 },
    { "name": "engine_run_8x", "ns_per_op": 104.715, "ops_per_sec": 9549698.9 },
    { "name": "fig8_point_e2e", "ns_per_op": 451043.600, "ops_per_sec": 2217.1 }
  ]
}"#;

    #[test]
    fn parses_the_committed_schema() {
        let parsed = parse_snapshot(SAMPLE).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].0, "queue_slab_churn");
        assert!((parsed[0].1 - 10.177).abs() < 1e-9);
        assert!((parsed[2].1 - 451043.6).abs() < 1e-6);
        // The machine object before the array must not confuse the scan.
        assert!(parsed.iter().all(|(n, _)| !n.contains("linux")));
    }

    #[test]
    fn rejects_malformed_snapshots() {
        assert!(parse_snapshot("{}").is_err());
        assert!(parse_snapshot("{\"benches\": []}").is_err());
        assert!(parse_snapshot("{\"benches\": [{\"name\": \"x\"}]}").is_err());
    }

    #[test]
    fn rejects_wrong_or_missing_schema_version() {
        let future = SAMPLE.replace("\"schema_version\": 1", "\"schema_version\": 2");
        let err = parse_snapshot(&future).unwrap_err();
        assert!(err.contains("schema_version 2"), "{err}");
        assert!(err.contains("regenerate"), "{err}");

        let missing = SAMPLE.replace("\"schema_version\": 1,", "");
        let err = parse_snapshot(&missing).unwrap_err();
        assert!(err.contains("no top-level schema_version"), "{err}");

        // A bench whose *name* mentions schema_version must not satisfy
        // the top-level check (the scan stops at the benches array).
        let sneaky = r#"{"benches": [{"name": "schema_version", "ns_per_op": 1.0}]}"#;
        assert!(parse_snapshot(sneaky).is_err());
    }

    #[test]
    fn identical_snapshots_pass() {
        let base = parse_snapshot(SAMPLE).unwrap();
        let report = diff(&base, &base, false);
        assert!(report.pass(), "{}", report.render());
        assert!(report.new_benches.is_empty());
    }

    #[test]
    fn twofold_slowdown_is_flagged() {
        let base = parse_snapshot(SAMPLE).unwrap();
        let slow: Vec<(String, f64)> = base.iter().map(|(n, v)| (n.clone(), v * 2.0)).collect();
        let report = diff(&base, &slow, false);
        assert!(!report.pass());
        // Every bench doubled; all must flag under full tolerances.
        assert_eq!(report.failures().count(), base.len(), "{}", report.render());
        // Quick mode tolerates the same doubling (smoke numbers are noise).
        assert!(diff(&base, &slow, true).pass());
    }

    #[test]
    fn small_noise_passes_but_missing_bench_fails() {
        let base = snapshot(&[("a", 100.0), ("b", 50.0)]);
        let wiggly = snapshot(&[("a", 120.0), ("b", 55.0)]);
        assert!(diff(&base, &wiggly, false).pass());
        let dropped = snapshot(&[("a", 100.0)]);
        let report = diff(&base, &dropped, false);
        assert!(!report.pass(), "a vanished bench must fail the gate");
        let failure = report.failures().next().unwrap();
        assert_eq!(failure.name, "b");
        assert_eq!(failure.candidate_ns, None);
    }

    #[test]
    fn extra_candidate_benches_are_fine() {
        let base = snapshot(&[("a", 100.0)]);
        let extended = snapshot(&[("a", 101.0), ("brand_new", 7.0)]);
        let report = diff(&base, &extended, false);
        assert!(report.pass());
        assert_eq!(report.new_benches, vec!["brand_new".to_string()]);
        assert!(report.render().contains("new bench"));
    }

    #[test]
    fn sub_ten_ns_benches_get_extra_headroom() {
        assert!((tolerance_for("is_zero_32k", 2.7, false) - 2.0).abs() < 1e-12);
        assert!((tolerance_for("engine_run_8x", 104.7, false) - 1.5).abs() < 1e-12);
        assert!((tolerance_for("is_zero_32k", 2.7, true) - 4.5).abs() < 1e-12);
        // 1.9x on a 3ns bench passes full mode; 2.1x fails.
        let base = snapshot(&[("tiny", 3.0)]);
        assert!(diff(&base, &snapshot(&[("tiny", 5.7)]), false).pass());
        assert!(!diff(&base, &snapshot(&[("tiny", 6.3)]), false).pass());
    }

    #[test]
    fn empty_baseline_never_passes() {
        assert!(!diff(&[], &snapshot(&[("a", 1.0)]), false).pass());
    }

    #[test]
    fn noise_model_overrides_the_mode_base() {
        assert!((tolerance_for("decode_batch_8x", 1e7, false) - 2.0).abs() < 1e-12);
        assert!((tolerance_for("decode_batch_8x", 1e7, true) - 6.0).abs() < 1e-12);
        assert!((tolerance_for("calendar_queue_churn", 80.0, false) - 1.6).abs() < 1e-12);
        assert!((tolerance_for("xor_fold4_6x32k", 2000.0, true) - 4.0).abs() < 1e-12);
        // 1.8x on decode_batch_8x passes full mode where the base 1.5
        // would flag it; 2.2x still fails.
        let base = snapshot(&[("decode_batch_8x", 1000.0)]);
        assert!(diff(&base, &snapshot(&[("decode_batch_8x", 1800.0)]), false).pass());
        assert!(!diff(&base, &snapshot(&[("decode_batch_8x", 2200.0)]), false).pass());
    }

    #[test]
    fn machine_fields_parse_and_tolerate_absence() {
        let m = parse_machine(
            r#"{"machine": { "os": "linux", "arch": "x86_64", "cpus": 4, "simd": "avx2" }}"#,
        );
        assert_eq!(m.arch.as_deref(), Some("x86_64"));
        assert_eq!(m.simd.as_deref(), Some("avx2"));
        // The committed-sample shape (no simd yet).
        let old = parse_machine(SAMPLE);
        assert_eq!(old.arch.as_deref(), Some("x86_64"));
        assert_eq!(old.simd, None);
        // No machine object at all.
        let none = parse_machine("{}");
        assert_eq!(
            none,
            MachineInfo {
                arch: None,
                simd: None
            }
        );
    }

    #[test]
    fn cross_isa_comparisons_are_refused() {
        let mk = |arch: &str, simd: &str| MachineInfo {
            arch: Some(arch.to_string()),
            simd: Some(simd.to_string()),
        };
        // Same machine: clean pass, no notice.
        assert_eq!(
            check_comparable(&mk("x86_64", "avx2"), &mk("x86_64", "avx2")),
            Ok(None)
        );
        // Different arch: hard refusal.
        let err = check_comparable(&mk("aarch64", "scalar"), &mk("x86_64", "avx2")).unwrap_err();
        assert!(err.contains("arch"), "{err}");
        // Same arch, different dispatched kernel: hard refusal too.
        let err = check_comparable(&mk("x86_64", "sse2"), &mk("x86_64", "avx2")).unwrap_err();
        assert!(err.contains("SIMD"), "{err}");
        // Old baseline without simd: allowed, with a notice.
        let old = MachineInfo {
            arch: Some("x86_64".to_string()),
            simd: None,
        };
        let notice = check_comparable(&old, &mk("x86_64", "avx2")).unwrap();
        assert!(notice.unwrap().contains("predates"));
    }
}
