//! `Engine::run` vs `run_with_scratch` determinism.
//!
//! PR 3 threads a caller-owned [`EngineScratch`] through the engine so the
//! event heap and per-worker vectors are allocated once per sweep thread
//! instead of once per point. That is only sound if a *reused* (dirty)
//! scratch is indistinguishable from a fresh one — these tests pin that
//! down by comparing full [`RunReport`]s (via their `Debug` rendering,
//! which covers every field including the latency histogram) across fresh
//! runs, scratch runs, and scratch runs deliberately polluted by earlier
//! runs with different shapes.

use fbf_cache::PolicyKind;
use fbf_codes::{Cell, ChunkId};
use fbf_disksim::equeue::oracle::HeapQueue;
use fbf_disksim::{
    ArrayMapping, CacheSharing, DiskModel, DiskSched, Engine, EngineConfig, EngineScratch,
    FaultPlan, Op, SimTime, WorkerScript,
};

fn chunk(stripe: u32, r: usize, c: usize) -> ChunkId {
    ChunkId::new(stripe, Cell::new(r, c))
}

/// A deterministic, moderately irregular workload: `workers` scripts of
/// interleaved reads, computes, writes and gathers over a 5×5 array.
fn scripts(workers: usize, ops_per_worker: usize, salt: u64) -> Vec<WorkerScript> {
    let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..workers)
        .map(|_| {
            let mut s = WorkerScript::default();
            for _ in 0..ops_per_worker {
                let r = next();
                let (stripe, row, col) = (
                    (r >> 8) as u32 % 6,
                    (r >> 16) as usize % 5,
                    (r >> 24) as usize % 5,
                );
                match r % 5 {
                    0 | 1 => s.ops.push(Op::Read {
                        chunk: chunk(stripe, row, col),
                        priority: 1 + (r % 3) as u8,
                    }),
                    2 => s.ops.push(Op::Compute {
                        duration: SimTime::from_micros(50 + r % 400),
                    }),
                    3 => s.ops.push(Op::Write {
                        chunk: chunk(stripe, row, col),
                    }),
                    _ => {
                        let fan = 2 + (r % 4) as usize;
                        let chunks = (0..fan)
                            .map(|i| {
                                let q = next();
                                (
                                    chunk((q >> 4) as u32 % 6, (q >> 12) as usize % 5, i % 5),
                                    1 + (q % 3) as u8,
                                )
                            })
                            .collect();
                        s.push_gather(chunks);
                    }
                }
            }
            s
        })
        .collect()
}

fn config(policy: PolicyKind, cache: usize, sharing: CacheSharing) -> EngineConfig {
    EngineConfig {
        sharing,
        sched: DiskSched::Fcfs,
        disk_model: DiskModel::paper_default(),
        ..EngineConfig::paper(policy, cache, ArrayMapping::new(5, 5, false), 64)
    }
}

/// A fresh run and a scratch-threaded run produce identical reports, for
/// every policy and both sharing modes.
#[test]
fn scratch_run_matches_fresh_run() {
    for policy in PolicyKind::ALL {
        for sharing in [CacheSharing::Partitioned, CacheSharing::Shared] {
            let ws = scripts(4, 60, 7);
            let fresh = Engine::new(config(policy, 12, sharing)).run(&ws);
            let mut scratch = EngineScratch::new();
            let scratched =
                Engine::new(config(policy, 12, sharing)).run_with_scratch(&ws, &mut scratch);
            assert_eq!(
                format!("{fresh:?}"),
                format!("{scratched:?}"),
                "{policy:?}/{sharing:?} diverged with scratch"
            );
        }
    }
}

/// A scratch polluted by earlier runs of *different* shapes (more workers,
/// longer scripts, different policy) must not leak into later results.
#[test]
fn dirty_scratch_is_equivalent_to_fresh_scratch() {
    let mut scratch = EngineScratch::new();
    // Pollute: bigger worker count, different salt and policy.
    Engine::new(config(PolicyKind::Fbf, 32, CacheSharing::Shared))
        .run_with_scratch(&scripts(9, 120, 99), &mut scratch);
    Engine::new(config(PolicyKind::Lfu, 2, CacheSharing::Partitioned))
        .run_with_scratch(&scripts(2, 15, 3), &mut scratch);

    let ws = scripts(5, 50, 42);
    let baseline = Engine::new(config(PolicyKind::Lru, 8, CacheSharing::Partitioned)).run(&ws);
    let reused = Engine::new(config(PolicyKind::Lru, 8, CacheSharing::Partitioned))
        .run_with_scratch(&ws, &mut scratch);
    assert_eq!(format!("{baseline:?}"), format!("{reused:?}"));

    // And repeated reuse stays stable run-over-run.
    let again = Engine::new(config(PolicyKind::Lru, 8, CacheSharing::Partitioned))
        .run_with_scratch(&ws, &mut scratch);
    assert_eq!(format!("{baseline:?}"), format!("{again:?}"));
}

/// The calendar event queue and the retained `BinaryHeap` oracle drive
/// the engine to identical reports — every policy, both sharing modes.
/// This is the whole-system form of the lockstep pop-order property in
/// `equeue_diff.rs`, and the guarantee the fig8/fig9 CSV bit-identity
/// criterion rests on.
#[test]
fn calendar_queue_matches_heap_queue() {
    for policy in PolicyKind::ALL {
        for sharing in [CacheSharing::Partitioned, CacheSharing::Shared] {
            let ws = scripts(5, 70, 21);
            let mut cal_scratch = EngineScratch::new();
            let cal =
                Engine::new(config(policy, 10, sharing)).run_with_scratch(&ws, &mut cal_scratch);
            let mut heap_scratch = EngineScratch::<HeapQueue>::default();
            let heap =
                Engine::new(config(policy, 10, sharing)).run_with_scratch(&ws, &mut heap_scratch);
            assert_eq!(
                format!("{cal:?}"),
                format!("{heap:?}"),
                "{policy:?}/{sharing:?} diverged across event queues"
            );
        }
    }
}

/// Queue equivalence must also hold under fault injection, where retry
/// timers push events far from the monotone stream the wheel is tuned
/// for (backoff schedules, detection delays, straggler inflation).
#[test]
fn calendar_queue_matches_heap_queue_under_faults() {
    let faults = FaultPlan {
        seed: 42,
        media_per_mille: 5,
        transient_per_mille: 40,
        ..FaultPlan::none()
    };
    for salt in [3u64, 77, 901] {
        let ws = scripts(6, 80, salt);
        let cfg = || EngineConfig {
            faults,
            ..config(PolicyKind::Fbf, 12, CacheSharing::Partitioned)
        };
        let mut cal_scratch = EngineScratch::new();
        let cal = Engine::new(cfg()).run_with_scratch(&ws, &mut cal_scratch);
        let mut heap_scratch = EngineScratch::<HeapQueue>::default();
        let heap = Engine::new(cfg()).run_with_scratch(&ws, &mut heap_scratch);
        assert_eq!(
            format!("{cal:?}"),
            format!("{heap:?}"),
            "salt {salt} diverged across event queues under faults"
        );
    }
}

/// `Engine::run` itself is deterministic (same scripts, same report) —
/// the property the CSV bit-identity acceptance criterion rests on.
#[test]
fn run_is_deterministic_for_fixed_scripts() {
    let ws = scripts(6, 80, 1234);
    let a = Engine::new(config(PolicyKind::Fbf, 16, CacheSharing::Partitioned)).run(&ws);
    let b = Engine::new(config(PolicyKind::Fbf, 16, CacheSharing::Partitioned)).run(&ws);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert!(a.makespan.as_nanos() > 0);
    assert!(a.disk_reads > 0);
}
