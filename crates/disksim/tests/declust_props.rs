//! Differential property tests for the declustered placement layer
//! (`crates/disksim/src/declust.rs` + `ArrayMapping`), over randomized
//! array geometries.
//!
//! The rebuild scheduler's admission projections, the engine's routing,
//! and the layout trait all evaluate the same column→disk map
//! independently; these properties pin the contracts they rely on:
//!
//! 1. **Per-stripe injectivity** — restricted to one stripe, every
//!    layout is an injection into the disk set (the placement
//!    invariant on the module), so `(disk, lba)` is collision-free.
//! 2. **Differential agreement** — `ArrayMapping::disk_of_col` equals
//!    the standalone layout structs for every placement, geometry, and
//!    seed: the trait view and the engine view never drift.
//! 3. **Permutation shape** — a D3 stripe's map extended to all `n`
//!    columns is a full permutation of `Z_n` (affine with unit slope),
//!    which is *why* injectivity holds for any `cols <= disks`.
//! 4. **Determinism** — placement is a pure function of
//!    `(geometry, seed, stripe, col)`; equal inputs agree across
//!    separately constructed layouts.

use fbf_disksim::{ArrayMapping, ClusteredLayout, D3Layout, DeclusteredLayout, Placement};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Randomized geometry: `2..=160` disks with `1..=min(disks, 17)`
/// stripe columns (3DFT stripes are narrow; arrays are wide).
fn geometry() -> impl Strategy<Value = (usize, usize)> {
    (2usize..=160, 0usize..10_000).prop_map(|(disks, draw)| {
        let max_cols = disks.min(17);
        (disks, 1 + draw % max_cols)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every layout places one stripe's columns on distinct disks, all
    /// inside the array.
    #[test]
    fn every_layout_is_injective_per_stripe(
        geom in geometry(),
        seed in 0u64..=u64::MAX,
        stripe in 0u32..10_000,
    ) {
        let (disks, cols) = geom;
        let layouts: [&dyn DeclusteredLayout; 3] = [
            &ClusteredLayout::new(disks, cols, false),
            &ClusteredLayout::new(disks, cols, true),
            &D3Layout::new(disks, cols, seed),
        ];
        for layout in layouts {
            let homes = layout.stripe_disks(stripe);
            prop_assert!(homes.iter().all(|&d| d < disks), "{}: disk out of range", layout.name());
            let distinct: BTreeSet<usize> = homes.iter().copied().collect();
            prop_assert_eq!(
                distinct.len(),
                cols,
                "{}: stripe {} reuses a disk: {:?}",
                layout.name(),
                stripe,
                homes
            );
        }
    }

    /// The engine's `ArrayMapping` and the standalone layout structs are
    /// the same function — differentially, cell by cell.
    #[test]
    fn array_mapping_matches_the_layout_structs(
        geom in geometry(),
        seed in 0u64..=u64::MAX,
        stripes in proptest::collection::vec(0u32..100_000, 1..40),
    ) {
        let (disks, cols) = geom;
        let cases: [(&dyn DeclusteredLayout, Placement); 3] = [
            (&ClusteredLayout::new(disks, cols, false), Placement::Fixed),
            (&ClusteredLayout::new(disks, cols, true), Placement::Rotated),
            (&D3Layout::new(disks, cols, seed), Placement::Declustered { seed }),
        ];
        for (layout, placement) in cases {
            let mapping = ArrayMapping::with_placement(disks, 4, cols, placement);
            for &stripe in &stripes {
                for col in 0..cols {
                    prop_assert_eq!(
                        mapping.disk_of_col(stripe, col),
                        layout.disk_of(stripe, col),
                        "{} mapping drifts from the layout at stripe {} col {}",
                        layout.name(),
                        stripe,
                        col
                    );
                }
            }
        }
    }

    /// A D3 stripe's affine map, extended over all `n` columns, is a
    /// permutation of the whole disk set — the structural reason the
    /// injectivity property holds for any stripe width.
    #[test]
    fn d3_stripe_map_is_a_full_permutation(
        disks in 2usize..=160,
        seed in 0u64..=u64::MAX,
        stripe in 0u32..10_000,
    ) {
        let full = D3Layout::new(disks, disks, seed);
        let image: BTreeSet<usize> = full.stripe_disks(stripe).into_iter().collect();
        prop_assert_eq!(image.len(), disks, "stripe {} is not a permutation", stripe);
        prop_assert_eq!(image.into_iter().max(), Some(disks - 1));
    }

    /// Placement is pure: separately constructed layouts with equal
    /// parameters agree everywhere, and the rotated layout matches its
    /// closed form.
    #[test]
    fn placement_is_a_pure_function_of_its_parameters(
        geom in geometry(),
        seed in 0u64..=u64::MAX,
        stripe in 0u32..100_000,
    ) {
        let (disks, cols) = geom;
        let a = D3Layout::new(disks, cols, seed);
        let b = D3Layout::new(disks, cols, seed);
        prop_assert_eq!(a.stripe_disks(stripe), b.stripe_disks(stripe));
        let rot = ClusteredLayout::new(disks, cols, true);
        for col in 0..cols {
            prop_assert_eq!(rot.disk_of(stripe, col), (col + stripe as usize) % disks);
        }
    }
}
