//! Property tests for the mergeable latency digest re-exported as
//! [`fbf_disksim::Digest`] — the invariants the sweep gather path leans
//! on (see `crates/obs/src/digest.rs` and DESIGN.md §11).

use fbf_disksim::Digest;
use proptest::prelude::*;

/// Nanosecond samples across the digest's whole 1ns..2^40ns range, with a
/// shard index so properties can split them across "workers".
fn samples() -> impl Strategy<Value = Vec<(u64, u8)>> {
    proptest::collection::vec((1u64..(1u64 << 40), 0u8..4), 1..200)
}

fn digest_of<'a>(xs: impl IntoIterator<Item = &'a u64>) -> Digest {
    let mut d = Digest::new();
    for &x in xs {
        d.record_ns(x);
    }
    d
}

/// The oracle: exact quantile of the raw samples under the digest's rank
/// rule (`ceil(n*q)`, 1-based).
fn oracle_ns(xs: &[u64], q: f64) -> u64 {
    let mut sorted = xs.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() as f64 * q).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merge is commutative and associative up to equality of the whole
    /// digest (counts, total, and sum — not just quantiles).
    #[test]
    fn merge_is_commutative_and_associative(xs in samples()) {
        let shard = |s: u8| digest_of(xs.iter().filter(|&&(_, i)| i == s).map(|(v, _)| v));
        let (a, b, c) = (shard(0), shard(1), shard(2));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "a+b must equal b+a");

        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc, "(a+b)+c must equal a+(b+c)");
    }

    /// Sharding samples across workers and merging reproduces the serial
    /// digest exactly; counts and sums are conserved to the last sample.
    #[test]
    fn sharded_merge_equals_serial_recording(xs in samples()) {
        let serial = digest_of(xs.iter().map(|(v, _)| v));
        let mut merged = Digest::new();
        for s in 0..4u8 {
            merged.merge(&digest_of(xs.iter().filter(|&&(_, i)| i == s).map(|(v, _)| v)));
        }
        prop_assert_eq!(&merged, &serial);
        prop_assert_eq!(merged.count(), xs.len() as u64);
        prop_assert_eq!(merged.sum_ns(), xs.iter().map(|&(v, _)| v as u128).sum::<u128>());
    }

    /// Every quantile estimate is the upper edge of the bucket holding the
    /// sorted-vector oracle's sample: never an under-report, and exactly
    /// one bucket of error.
    #[test]
    fn quantiles_track_the_sorted_oracle(xs in samples(), q_pct in 1u32..100) {
        let q = q_pct as f64 / 100.0;
        let values: Vec<u64> = xs.iter().map(|&(v, _)| v).collect();
        let d = digest_of(&values);
        let estimate = d.quantile_ns(q).expect("non-empty digest");
        let oracle = oracle_ns(&values, q);
        prop_assert!(
            estimate >= oracle,
            "quantile under-reported: estimate {estimate} < oracle {oracle}"
        );
        prop_assert_eq!(
            estimate,
            Digest::bucket_upper_ns(Digest::bucket_of_ns(oracle)),
            "estimate must be the oracle's own bucket edge (one-bucket error bound)"
        );
    }

    /// The bucket mapping is monotone and the edge function is its upper
    /// bound — the two facts the oracle comparison above rests on.
    #[test]
    fn bucketing_is_monotone_with_true_upper_edges(ns in 1u64..(1u64 << 40)) {
        let b = Digest::bucket_of_ns(ns);
        prop_assert!(ns <= Digest::bucket_upper_ns(b), "value above its bucket edge");
        prop_assert!(Digest::bucket_of_ns(ns + 1) >= b, "bucket index not monotone");
        if b > 0 {
            prop_assert!(
                Digest::bucket_upper_ns(b - 1) < ns,
                "value {ns} also fits the previous bucket"
            );
        }
    }
}
