//! Differential tests: [`CalendarQueue`] vs the retained
//! [`HeapQueue`] oracle.
//!
//! The engine swapped its `BinaryHeap` for a calendar wheel; the fig8/fig9
//! CSVs stay bit-identical only if both queues pop *exactly* the same
//! sequence for every push/pop interleaving — including full-tuple
//! tie-breaking on `(SimTime, kind, id)`. These properties drive random
//! and engine-shaped streams through both queues in lockstep.

use fbf_disksim::equeue::oracle::HeapQueue;
use fbf_disksim::{CalendarQueue, Event, EventQueue, SimTime};
use proptest::prelude::*;

/// Drain both queues after `ops` interleaved push/pops and assert every
/// popped event matched along the way.
fn lockstep(stream: impl Iterator<Item = Option<Event>>) {
    let mut cal = CalendarQueue::default();
    let mut heap = HeapQueue::default();
    for op in stream {
        match op {
            Some(ev) => {
                cal.push(ev);
                heap.push(ev);
            }
            None => {
                assert_eq!(cal.pop(), heap.pop(), "pop order diverged");
            }
        }
        assert_eq!(cal.len(), heap.len());
    }
    while let Some(expect) = heap.pop() {
        assert_eq!(cal.pop(), Some(expect), "drain order diverged");
    }
    assert!(cal.pop().is_none() && cal.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fully random streams: arbitrary times (clustered small so ties are
    /// common), kinds, ids, with interleaved pops (tag 0 of 4 = pop).
    #[test]
    fn random_streams_pop_identically(
        ops in proptest::collection::vec((0u8..4, 0u64..2_000, 0u8..3, 0usize..64), 0..600),
    ) {
        lockstep(ops.into_iter().map(|(tag, t, kind, id)| {
            (tag != 0).then_some((SimTime::from_nanos(t), kind, id))
        }));
    }

    /// Engine-shaped streams: near-monotone hold-and-advance (each pushed
    /// time is "now" plus a small delta), plus occasional large jumps and
    /// exact duplicates to force tie-breaks and bucket-rotation edges.
    #[test]
    fn near_monotone_streams_pop_identically(
        deltas in proptest::collection::vec((0u64..30_000, 0u8..3, 0usize..128, 0u8..8), 1..600),
    ) {
        let mut now = 0u64;
        let mut last: Option<Event> = None;
        let stream: Vec<Option<Event>> = deltas
            .into_iter()
            .flat_map(|(delta, kind, id, shape)| {
                let ev = match shape {
                    // Exact duplicate of the previous event: full tie.
                    0 => last.unwrap_or((SimTime::ZERO, kind, id)),
                    // Large jump: rotates past the wheel horizon.
                    1 => (SimTime::from_nanos(now + delta * 1_000), kind, id),
                    // Same time, different kind/id: partial tie.
                    2 => (SimTime::from_nanos(now), kind, id),
                    _ => (SimTime::from_nanos(now + delta), kind, id),
                };
                now = now.max(ev.0.as_nanos());
                last = Some(ev);
                // Push, then pop roughly every other event (hold-and-advance).
                if shape % 2 == 0 {
                    vec![Some(ev), None]
                } else {
                    vec![Some(ev)]
                }
            })
            .collect();
        lockstep(stream.into_iter());
    }

    /// Pathological spacing: events separated by huge gaps (up to 2^40 ns)
    /// force the wheel's recalibration path; order must still match.
    #[test]
    fn sparse_streams_pop_identically(
        shifts in proptest::collection::vec((0u32..40, 0u64..1_000, 0usize..16), 1..80),
    ) {
        lockstep(shifts.into_iter().flat_map(|(shift, fine, id)| {
            let t = (1u64 << shift).wrapping_add(fine);
            [Some((SimTime::from_nanos(t), (id % 3) as u8, id)), None].into_iter()
        }));
    }
}

/// The engine runs identically on either queue type — the whole-system
/// version of the lockstep property, pinned at a fixed seed.
#[test]
fn clear_then_reuse_matches_fresh() {
    let mut cal = CalendarQueue::default();
    // Dirty it with a sparse stream, then clear.
    for i in 0..50u64 {
        cal.push((SimTime::from_nanos(i << 30), 1, i as usize));
    }
    for _ in 0..20 {
        cal.pop();
    }
    cal.clear();
    assert!(cal.is_empty());

    // A reused queue must behave like a fresh one.
    let mut heap = HeapQueue::default();
    for i in (0..200u64).rev() {
        cal.push((SimTime::from_nanos(i * 7), (i % 3) as u8, i as usize));
        heap.push((SimTime::from_nanos(i * 7), (i % 3) as u8, i as usize));
    }
    while let Some(expect) = heap.pop() {
        assert_eq!(cal.pop(), Some(expect));
    }
    assert!(cal.is_empty());
}
