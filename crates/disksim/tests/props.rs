//! Property tests for the simulator: clock sanity, conservation laws,
//! scheduling equivalences.

use fbf_cache::PolicyKind;
use fbf_codes::{Cell, ChunkId};
use fbf_disksim::{
    ArrayMapping, CacheSharing, DiskModel, DiskSched, Engine, EngineConfig, Op, SimTime,
    WorkerScript,
};
use proptest::prelude::*;

fn chunk(stripe: u32, r: usize, c: usize) -> ChunkId {
    ChunkId::new(stripe, Cell::new(r, c))
}

/// Random scripts over a 4-disk, 4-row array.
fn scripts_strategy() -> impl Strategy<Value = Vec<WorkerScript>> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..4, 0usize..4, 0usize..4, 0u8..3), 1..40),
        1..6,
    )
    .prop_map(|workers| {
        workers
            .into_iter()
            .map(|ops| WorkerScript {
                ops: ops
                    .into_iter()
                    .map(|(s, r, c, kind)| match kind {
                        0 => Op::Read {
                            chunk: chunk(s, r, c),
                            priority: 1 + (r % 3) as u8,
                        },
                        1 => Op::Compute {
                            duration: SimTime::from_micros(100 * (r as u64 + 1)),
                        },
                        _ => Op::Write {
                            chunk: chunk(s, r, c),
                        },
                    })
                    .collect(),
                ..Default::default()
            })
            .collect()
    })
}

fn config(policy: PolicyKind, cache: usize, sched: DiskSched, model: DiskModel) -> EngineConfig {
    EngineConfig {
        sharing: CacheSharing::Shared,
        sched,
        disk_model: model,
        ..EngineConfig::paper(policy, cache, ArrayMapping::new(4, 4, false), 64)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: every read is either a hit or a disk read; every
    /// write reaches a disk; per-disk ops sum to the totals.
    #[test]
    fn conservation_laws(scripts in scripts_strategy(), cache in 0usize..16, kind_idx in 0usize..5) {
        let policy = PolicyKind::ALL[kind_idx];
        let cfg = config(policy, cache, DiskSched::Fcfs, DiskModel::paper_default());
        let report = Engine::new(cfg).run(&scripts);

        let total_reads: usize = scripts.iter().map(|s| s.reads()).sum();
        let total_writes: usize = scripts
            .iter()
            .map(|s| s.ops.iter().filter(|o| matches!(o, Op::Write { .. })).count())
            .sum();
        prop_assert_eq!(report.cache.accesses() as usize, total_reads);
        prop_assert_eq!((report.cache.hits + report.disk_reads) as usize, total_reads);
        prop_assert_eq!(report.disk_writes as usize, total_writes);
        let per_disk_reads: u64 = report.per_disk.iter().map(|d| d.reads).sum();
        let per_disk_writes: u64 = report.per_disk.iter().map(|d| d.writes).sum();
        prop_assert_eq!(per_disk_reads, report.disk_reads);
        prop_assert_eq!(per_disk_writes, report.disk_writes);
    }

    /// The makespan is never smaller than any single worker's serial
    /// lower bound under the fixed model (its own ops, ignoring queueing)
    /// and never larger than the all-serial upper bound.
    #[test]
    fn makespan_bounds(scripts in scripts_strategy()) {
        let cfg = config(PolicyKind::Lru, 0, DiskSched::Fcfs, DiskModel::paper_default());
        let report = Engine::new(cfg).run(&scripts);
        let access = SimTime::from_millis(10);
        let per_worker_min: u64 = scripts
            .iter()
            .map(|s| {
                s.ops
                    .iter()
                    .map(|o| match o {
                        Op::Read { .. } | Op::Write { .. } => access.as_nanos(),
                        Op::Compute { duration } => duration.as_nanos(),
                        Op::Gather { .. } => 0,
                    })
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0);
        let serial_total: u64 = scripts
            .iter()
            .map(|s| {
                s.ops
                    .iter()
                    .map(|o| match o {
                        Op::Read { .. } | Op::Write { .. } => access.as_nanos(),
                        Op::Compute { duration } => duration.as_nanos(),
                        Op::Gather { .. } => 0,
                    })
                    .sum::<u64>()
            })
            .sum();
        prop_assert!(report.makespan.as_nanos() >= per_worker_min);
        prop_assert!(report.makespan.as_nanos() <= serial_total);
    }

    /// Under the fixed service-time model *without a cache*, scheduling
    /// discipline does not change totals (every order costs the same) —
    /// reads, writes, and total busy time are identical across
    /// FCFS/SSTF/C-LOOK. (With a cache the interleaving changes which
    /// accesses hit, so totals legitimately differ.)
    #[test]
    fn fixed_model_discipline_invariant(scripts in scripts_strategy()) {
        let reports: Vec<_> = DiskSched::ALL
            .iter()
            .map(|&sched| {
                let cfg = config(PolicyKind::Lru, 0, sched, DiskModel::paper_default());
                Engine::new(cfg).run(&scripts)
            })
            .collect();
        for r in &reports[1..] {
            prop_assert_eq!(r.disk_reads, reports[0].disk_reads);
            prop_assert_eq!(r.disk_writes, reports[0].disk_writes);
            let busy: Vec<SimTime> = r.per_disk.iter().map(|d| d.busy).collect();
            let busy0: Vec<SimTime> = reports[0].per_disk.iter().map(|d| d.busy).collect();
            prop_assert_eq!(busy, busy0);
        }
    }

    /// Determinism across runs, including under the detailed model and
    /// non-FCFS scheduling.
    #[test]
    fn engine_is_deterministic(scripts in scripts_strategy(), sched_idx in 0usize..3) {
        let sched = DiskSched::ALL[sched_idx];
        let cfg = config(PolicyKind::Arc, 8, sched, DiskModel::detailed_default());
        let a = Engine::new(cfg.clone()).run(&scripts);
        let b = Engine::new(cfg).run(&scripts);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.disk_reads, b.disk_reads);
        prop_assert_eq!(a.cache, b.cache);
    }
}
