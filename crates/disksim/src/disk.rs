//! Per-disk service model and statistics.
//!
//! Two models are provided:
//!
//! * [`DiskModel::Fixed`] — every disk access costs a constant service
//!   time. This matches the paper's stated configuration ("the data access
//!   time of buffer cache and data disk are set to 0.5ms and 10ms") and is
//!   the default for figure reproduction.
//! * [`DiskModel::Detailed`] — seek (distance-dependent, linearised seek
//!   curve) + rotational latency (half a revolution on average, derived
//!   deterministically from the target LBA so runs replay exactly) +
//!   transfer time. Used by the ablation benches to check that FBF's
//!   ranking is robust to a realistic mechanical model.
//!
//! Disks serve FCFS: the engine tracks each disk's `next_free` instant and
//! queues requests behind it, which is how reconstruction workers contend.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Parameters of the detailed mechanical model. Defaults approximate a
/// 7200 RPM nearline SATA drive of the paper's era.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DiskParams {
    /// Minimum (track-to-track) seek.
    pub seek_min: SimTime,
    /// Maximum (full-stroke) seek.
    pub seek_max: SimTime,
    /// Spindle speed, revolutions per minute.
    pub rpm: u32,
    /// Sustained transfer rate, bytes per second.
    pub transfer_rate: u64,
    /// Number of addressable chunk-sized blocks (for seek distance scaling).
    pub blocks: u64,
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams {
            seek_min: SimTime::from_micros(500),
            seek_max: SimTime::from_millis(14),
            rpm: 7200,
            transfer_rate: 120 * 1024 * 1024,
            blocks: 1 << 25, // 1 TB of 32 KB chunks
        }
    }
}

impl DiskParams {
    /// One full revolution.
    pub fn revolution(&self) -> SimTime {
        SimTime::from_nanos(60_000_000_000 / self.rpm as u64)
    }
}

/// How a disk turns a request into service time.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum DiskModel {
    /// Constant service time per access (the paper's configuration).
    Fixed {
        /// Service time of one chunk access.
        access: SimTime,
    },
    /// Seek + rotation + transfer.
    Detailed(DiskParams),
}

impl DiskModel {
    /// The paper's configuration: 10 ms per disk access.
    pub fn paper_default() -> Self {
        DiskModel::Fixed {
            access: SimTime::from_millis(10),
        }
    }

    /// A realistic mechanical model.
    pub fn detailed_default() -> Self {
        DiskModel::Detailed(DiskParams::default())
    }

    /// Service time for accessing `lba` when the head sits at `head_lba`,
    /// transferring `bytes`.
    pub fn service_time(&self, head_lba: u64, lba: u64, bytes: u64) -> SimTime {
        match *self {
            DiskModel::Fixed { access } => access,
            DiskModel::Detailed(p) => {
                let dist = head_lba.abs_diff(lba);
                let seek = if dist == 0 {
                    SimTime::ZERO
                } else {
                    // Linearised seek curve between min and max stroke.
                    let frac = dist as f64 / p.blocks.max(1) as f64;
                    let span = p.seek_max.as_nanos() - p.seek_min.as_nanos();
                    SimTime::from_nanos(p.seek_min.as_nanos() + (span as f64 * frac) as u64)
                };
                // Deterministic pseudo-rotational latency in [0, revolution):
                // derived from the LBA so the same access always costs the
                // same, keeping runs replayable.
                let rev = p.revolution().as_nanos();
                let rot =
                    SimTime::from_nanos((lba.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % rev);
                let transfer =
                    SimTime::from_nanos(bytes.saturating_mul(1_000_000_000) / p.transfer_rate);
                seek + rot + transfer
            }
        }
    }
}

/// Per-disk counters collected by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskStats {
    /// Chunk reads served.
    pub reads: u64,
    /// Chunk writes served.
    pub writes: u64,
    /// Total time the disk spent servicing requests.
    pub busy: SimTime,
    /// Total time requests waited in the disk queue before service.
    pub queued: SimTime,
    /// Deepest the disk's queue ever got (pending + in-flight).
    pub max_queue: u64,
}

impl DiskStats {
    /// Total operations.
    pub fn ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fold another snapshot of the *same* disk in (escalation rounds,
    /// per-worker shards). Flows and times add; `max_queue` is a
    /// high-water mark and must merge via `max` — summing two snapshots'
    /// deepest queues would report a depth the disk never reached.
    pub fn merge(&mut self, other: &DiskStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.busy += other.busy;
        self.queued += other.queued;
        self.max_queue = self.max_queue.max(other.max_queue);
    }
}

/// Mutable state of one simulated disk.
#[derive(Debug, Clone)]
pub struct Disk {
    model: DiskModel,
    /// When the disk finishes its current queue.
    next_free: SimTime,
    /// Head position after the last access (detailed model).
    head_lba: u64,
    /// Counters.
    pub stats: DiskStats,
}

impl Disk {
    /// A fresh idle disk.
    pub fn new(model: DiskModel) -> Self {
        Disk {
            model,
            next_free: SimTime::ZERO,
            head_lba: 0,
            stats: DiskStats::default(),
        }
    }

    /// Schedule a chunk access issued at `issue`: FCFS behind whatever the
    /// disk is already committed to. Returns the completion instant.
    pub fn access(&mut self, issue: SimTime, lba: u64, bytes: u64, write: bool) -> SimTime {
        let start = issue.max(self.next_free);
        let service = self.model.service_time(self.head_lba, lba, bytes);
        let done = start + service;
        self.next_free = done;
        self.head_lba = lba;
        self.stats.busy += service;
        self.stats.queued += start - issue;
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        done
    }

    /// When the disk next becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_model_constant_service() {
        let m = DiskModel::paper_default();
        assert_eq!(m.service_time(0, 100, 32 << 10), SimTime::from_millis(10));
        assert_eq!(m.service_time(5, 5, 1), SimTime::from_millis(10));
    }

    #[test]
    fn detailed_model_scales_with_distance() {
        let m = DiskModel::detailed_default();
        let near = m.service_time(0, 1, 32 << 10);
        let far = m.service_time(0, 1 << 24, 32 << 10);
        assert!(far > near, "long seeks cost more: {far} vs {near}");
    }

    #[test]
    fn detailed_model_is_deterministic() {
        let m = DiskModel::detailed_default();
        assert_eq!(m.service_time(7, 1234, 4096), m.service_time(7, 1234, 4096));
    }

    #[test]
    fn fcfs_queueing() {
        let mut d = Disk::new(DiskModel::paper_default());
        let t0 = SimTime::ZERO;
        let c1 = d.access(t0, 0, 1, false);
        assert_eq!(c1, SimTime::from_millis(10));
        // Issued while busy → queues behind.
        let c2 = d.access(SimTime::from_millis(1), 0, 1, false);
        assert_eq!(c2, SimTime::from_millis(20));
        assert_eq!(d.stats.queued, SimTime::from_millis(9));
        // Issued after idle → no queueing.
        let c3 = d.access(SimTime::from_millis(30), 0, 1, false);
        assert_eq!(c3, SimTime::from_millis(40));
        assert_eq!(d.stats.reads, 3);
    }

    #[test]
    fn write_counted_separately() {
        let mut d = Disk::new(DiskModel::paper_default());
        d.access(SimTime::ZERO, 0, 1, true);
        assert_eq!(d.stats.writes, 1);
        assert_eq!(d.stats.reads, 0);
    }

    #[test]
    fn busy_time_accumulates() {
        let mut d = Disk::new(DiskModel::paper_default());
        d.access(SimTime::ZERO, 0, 1, false);
        d.access(SimTime::ZERO, 1, 1, false);
        assert_eq!(d.stats.busy, SimTime::from_millis(20));
    }

    #[test]
    fn merge_sums_flows_but_maxes_high_water() {
        // Two worker snapshots of the same disk: one saw a deep queue,
        // the other a shallow one. The merged high-water is the deepest
        // either saw, not their sum (regression: max_queue must survive
        // digest merge).
        let mut a = DiskStats {
            reads: 10,
            writes: 2,
            busy: SimTime::from_millis(120),
            queued: SimTime::from_millis(30),
            max_queue: 7,
        };
        let b = DiskStats {
            reads: 4,
            writes: 1,
            busy: SimTime::from_millis(50),
            queued: SimTime::from_millis(5),
            max_queue: 3,
        };
        a.merge(&b);
        assert_eq!(a.reads, 14);
        assert_eq!(a.writes, 3);
        assert_eq!(a.busy, SimTime::from_millis(170));
        assert_eq!(a.queued, SimTime::from_millis(35));
        assert_eq!(a.max_queue, 7, "high-water marks merge via max, not sum");
    }

    #[test]
    fn revolution_time() {
        let p = DiskParams::default();
        assert_eq!(p.revolution(), SimTime::from_nanos(8_333_333));
    }
}
