//! Event queues for the simulation engine.
//!
//! The engine's event stream is near-monotone: every handler pops the
//! earliest event and pushes successors at `now + duration`, with durations
//! spanning roughly cache-hit time (sub-µs) to disk service time (ms). A
//! [`CalendarQueue`] (Brown 1988) exploits that shape for O(1) amortized
//! push/pop, while [`oracle::HeapQueue`] keeps the original `BinaryHeap`
//! both as the differential twin (see `tests/equeue_diff.rs` and the
//! engine-level suite in `tests/engine_equivalence.rs`) and as the perf
//! baseline (`calendar_queue_churn` vs `binary_heap_churn`).
//!
//! Ordering contract: events are `(SimTime, u8, usize)` tuples popped in
//! ascending *tuple* order — completions (`kind 0`) before worker steps
//! (`kind 1`) at the same instant, ids breaking remaining ties. Both queues
//! honour the full tuple, which is what keeps fig8/fig9 CSVs bit-identical
//! across the queue swap.

use crate::time::SimTime;

/// An engine event: `(time, kind, id)`, popped in ascending tuple order.
pub type Event = (SimTime, u8, usize);

/// Minimal priority-queue surface the engine needs. Implementations must
/// pop events in ascending `(SimTime, u8, usize)` order; equal tuples are
/// interchangeable duplicates.
pub trait EventQueue: Default {
    /// Remove all events, keeping allocations for reuse.
    fn clear(&mut self);
    /// Insert an event.
    fn push(&mut self, ev: Event);
    /// Remove and return the smallest event.
    fn pop(&mut self) -> Option<Event>;
    /// Number of queued events.
    fn len(&self) -> usize;
    /// True when no events are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Initial bucket-width exponent: 2^13 ns = 8.192 µs per bucket, on the
/// order of one XOR pass — the engine's most common inter-event gap.
const INIT_SHIFT: u32 = 13;
/// Initial wheel size (power of two). 256 × 8 µs ≈ 2 ms horizon, which
/// covers one disk service time.
const INIT_BUCKETS: usize = 256;
/// Grow the wheel when average occupancy exceeds this many events/bucket.
const GROW_AT: usize = 4;
/// Wheel size cap; beyond this, deeper buckets beat a wider wheel.
const MAX_BUCKETS: usize = 1 << 16;
/// A popped bucket holding more events than this is "crowded": the bucket
/// width is too coarse for the live event spacing, so pops degrade toward
/// a linear scan. Crowding arms a recalibration.
const CROWD_AT: usize = 8;
/// Minimum pops between crowding-triggered recalibrations. Recalibration
/// is O(len); rate-limiting it keeps the amortized cost per pop at
/// `len / RECAL_INTERVAL` even for event distributions whose span defeats
/// the width heuristic (e.g. one far-future outlier above a dense cluster).
const RECAL_INTERVAL: usize = 64;

/// Bucketed calendar queue tuned for the engine's near-monotone stream.
///
/// The wheel has a power-of-two number of buckets of 2^shift ns each; an
/// event at time `t` lives in bucket `(t >> shift) & mask`. `pop` scans the
/// current "day" (absolute bucket index `t >> shift`) for its minimum by
/// full tuple compare, advancing day by day; a full fruitless rotation
/// triggers [`recalibrate`](Self::recalibrate), which re-keys the wheel to
/// the live event span. Pushing before the current day rewinds it, so
/// arbitrary insert orders stay correct — only performance assumes
/// near-monotonicity. All sizing decisions depend solely on queue content,
/// so identical push/pop sequences always produce identical pop orders
/// (and the differential suite pins them against the heap oracle).
pub struct CalendarQueue {
    buckets: Vec<Vec<Event>>,
    /// log2 of the bucket width in nanoseconds.
    shift: u32,
    /// Absolute day (`time >> shift`) the next pop starts scanning from.
    cur_day: u64,
    len: usize,
    /// Pops since the last recalibration; gates the crowding trigger.
    pops_since_recal: usize,
    /// Scratch for rebuilds, kept to avoid re-allocating.
    spill: Vec<Event>,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        CalendarQueue {
            buckets: (0..INIT_BUCKETS).map(|_| Vec::new()).collect(),
            shift: INIT_SHIFT,
            cur_day: 0,
            len: 0,
            pops_since_recal: RECAL_INTERVAL,
            spill: Vec::new(),
        }
    }
}

impl CalendarQueue {
    /// Fresh queue; equivalent to `Default::default()`.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn day_of(&self, t: SimTime) -> u64 {
        t.as_nanos() >> self.shift
    }

    #[inline]
    fn bucket_of(&self, day: u64) -> usize {
        (day as usize) & (self.buckets.len() - 1)
    }

    /// Insert without any resize bookkeeping (used by rebuilds).
    #[inline]
    fn raw_push(&mut self, ev: Event) {
        let day = self.day_of(ev.0);
        if self.len == 0 || day < self.cur_day {
            self.cur_day = day;
        }
        let b = self.bucket_of(day);
        self.buckets[b].push(ev);
        self.len += 1;
    }

    /// Re-key the wheel so the live events span about half of it: width
    /// grows (or shrinks) to `span / (buckets / 2)` rounded up to a power
    /// of two. Called when the wheel outgrows its occupancy target or when
    /// a pop rotates the whole wheel without finding the current day —
    /// both conditions, and the new geometry, depend only on queue content,
    /// keeping pop order deterministic.
    fn recalibrate(&mut self, nbuckets: usize) {
        self.spill.clear();
        for b in &mut self.buckets {
            self.spill.append(b);
        }
        if self.buckets.len() != nbuckets {
            self.buckets.resize_with(nbuckets, Vec::new);
        }
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for ev in &self.spill {
            lo = lo.min(ev.0.as_nanos());
            hi = hi.max(ev.0.as_nanos());
        }
        if lo <= hi {
            let span = hi - lo + 1;
            let target = (nbuckets as u64 / 2).max(1);
            let mut shift = 0u32;
            while shift < 63 && (span >> shift) > target {
                shift += 1;
            }
            self.shift = shift;
        }
        self.len = 0;
        self.pops_since_recal = 0;
        let mut spill = std::mem::take(&mut self.spill);
        for ev in spill.drain(..) {
            self.raw_push(ev);
        }
        self.spill = spill;
    }
}

impl EventQueue for CalendarQueue {
    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.cur_day = 0;
        self.len = 0;
        self.pops_since_recal = RECAL_INTERVAL;
    }

    fn push(&mut self, ev: Event) {
        self.raw_push(ev);
        if self.len > self.buckets.len() * GROW_AT && self.buckets.len() < MAX_BUCKETS {
            let grown = self.buckets.len() * 2;
            self.recalibrate(grown);
        }
    }

    fn pop(&mut self) -> Option<Event> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Scan at most one full rotation from the current day.
            for _ in 0..self.buckets.len() {
                let b = self.bucket_of(self.cur_day);
                let shift = self.shift;
                let cur_day = self.cur_day;
                let bucket = &mut self.buckets[b];
                let mut min_idx = usize::MAX;
                let mut min_ev = (SimTime(u64::MAX), u8::MAX, usize::MAX);
                for (i, &ev) in bucket.iter().enumerate() {
                    if ev.0.as_nanos() >> shift == cur_day && (min_idx == usize::MAX || ev < min_ev)
                    {
                        min_idx = i;
                        min_ev = ev;
                    }
                }
                if min_idx != usize::MAX {
                    let crowded = bucket.len() > CROWD_AT;
                    bucket.swap_remove(min_idx);
                    self.len -= 1;
                    self.pops_since_recal += 1;
                    if crowded && self.pops_since_recal >= RECAL_INTERVAL {
                        // The popped bucket held far more than its share of
                        // events: the width is too coarse for the live
                        // spacing (a shape the grow and fruitless-rotation
                        // triggers never see). Re-key, rate-limited by
                        // RECAL_INTERVAL.
                        let n = self.buckets.len();
                        self.recalibrate(n);
                    }
                    return Some(min_ev);
                }
                self.cur_day += 1;
            }
            // Full rotation without a hit: bucket width is far off the
            // event spacing. Re-key to the live span and retry — the first
            // live day is then guaranteed to be hit within one rotation.
            let n = self.buckets.len();
            self.recalibrate(n);
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// The pre-calendar event queue, kept as the differential oracle and perf
/// baseline.
pub mod oracle {
    use super::{Event, EventQueue};
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// `BinaryHeap`-backed queue with the original min-heap ordering.
    #[derive(Default)]
    pub struct HeapQueue {
        heap: BinaryHeap<Reverse<Event>>,
    }

    impl EventQueue for HeapQueue {
        fn clear(&mut self) {
            self.heap.clear();
        }

        fn push(&mut self, ev: Event) {
            self.heap.push(Reverse(ev));
        }

        fn pop(&mut self) -> Option<Event> {
            self.heap.pop().map(|Reverse(ev)| ev)
        }

        fn len(&self) -> usize {
            self.heap.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::oracle::HeapQueue;
    use super::*;

    fn drain<Q: EventQueue>(q: &mut Q) -> Vec<Event> {
        let mut out = Vec::new();
        while let Some(ev) = q.pop() {
            out.push(ev);
        }
        out
    }

    #[test]
    fn pops_in_tuple_order_with_ties() {
        let evs: Vec<Event> = vec![
            (SimTime::from_nanos(50), 1, 2),
            (SimTime::from_nanos(50), 0, 9),
            (SimTime::from_nanos(10), 1, 0),
            (SimTime::from_nanos(50), 1, 1),
            (SimTime::from_nanos(10), 1, 0),
        ];
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::default();
        for &ev in &evs {
            cal.push(ev);
            heap.push(ev);
        }
        assert_eq!(drain(&mut cal), drain(&mut heap));
    }

    #[test]
    fn rewinds_on_insert_before_window() {
        let mut q = CalendarQueue::new();
        q.push((SimTime::from_nanos(1_000_000), 1, 0));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1_000_000), 1, 0)));
        // The window is now at 1 ms; an earlier insert must still pop first.
        q.push((SimTime::from_nanos(2_000_000), 1, 1));
        q.push((SimTime::from_nanos(5), 0, 7));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(5), 0, 7)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(2_000_000), 1, 1)));
        assert!(q.is_empty());
    }

    #[test]
    fn survives_pathological_spacing() {
        // Events many wheel-horizons apart force the rotation fallback and
        // a recalibration; order must still be exact.
        let mut q = CalendarQueue::new();
        let times = [0u64, 1, 1 << 20, 1 << 30, (1 << 30) + 1, 1 << 40];
        for (i, &t) in times.iter().enumerate() {
            q.push((SimTime::from_nanos(t), 1, i));
        }
        let got: Vec<u64> = drain(&mut q).iter().map(|ev| ev.0.as_nanos()).collect();
        let mut want = times.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn grow_preserves_content() {
        let mut q = CalendarQueue::new();
        let n = INIT_BUCKETS * GROW_AT * 3;
        for i in 0..n {
            q.push((SimTime::from_nanos((i * 37 % 9973) as u64), 1, i));
        }
        assert_eq!(q.len(), n);
        let got = drain(&mut q);
        assert_eq!(got.len(), n);
        assert!(got.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn clear_keeps_queue_usable() {
        let mut q = CalendarQueue::new();
        q.push((SimTime::from_nanos(123), 1, 4));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.push((SimTime::from_nanos(7), 0, 1));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(7), 0, 1)));
    }
}
