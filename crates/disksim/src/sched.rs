//! Queued disks with pluggable head-scheduling disciplines.
//!
//! DiskSim's disks hold a request queue and reorder it to cut seek time;
//! [`QueuedDisk`] reproduces that: requests arrive with [`QueuedDisk::
//! enqueue`], and whenever the disk is idle the engine asks it to
//! [`QueuedDisk::start_next`], which picks a pending request according to
//! the configured [`DiskSched`] discipline:
//!
//! * [`DiskSched::Fcfs`] — arrival order (what the paper's fixed-latency
//!   configuration effectively measures);
//! * [`DiskSched::Sstf`] — shortest seek time first (greedy head-distance);
//! * [`DiskSched::CLook`] — circular LOOK: serve ascending LBAs, wrap to
//!   the lowest pending when the sweep passes the end.
//!
//! Disciplines only matter under the [`DiskModel::Detailed`] mechanical
//! model — under fixed service time every order costs the same total, so
//! FCFS is also the fairness-optimal choice there (the scheduling
//! ablation bench verifies both statements).

use crate::disk::{DiskModel, DiskStats};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Head-scheduling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DiskSched {
    /// First come, first served.
    #[default]
    Fcfs,
    /// Shortest seek time first.
    Sstf,
    /// Circular LOOK elevator.
    CLook,
}

impl DiskSched {
    /// All disciplines, for sweeps.
    pub const ALL: [DiskSched; 3] = [DiskSched::Fcfs, DiskSched::Sstf, DiskSched::CLook];

    /// Name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            DiskSched::Fcfs => "FCFS",
            DiskSched::Sstf => "SSTF",
            DiskSched::CLook => "C-LOOK",
        }
    }
}

/// One pending disk request. `tag` identifies the requesting worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskRequest {
    /// Requesting worker (opaque to the disk).
    pub tag: usize,
    /// Target block address (chunk-granular).
    pub lba: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Write (spare update) vs read.
    pub write: bool,
    /// When the request reached the disk.
    pub issued: SimTime,
    /// Arrival sequence, for FCFS and deterministic tie-breaks.
    pub seq: u64,
    /// Extra service latency injected on top of the model time (transient
    /// fault stalls + retry backoff). Zero for healthy requests.
    pub delay: SimTime,
}

/// A disk with a pending queue and a scheduling discipline.
#[derive(Debug)]
pub struct QueuedDisk {
    model: DiskModel,
    sched: DiskSched,
    /// Service-time multiplier (>1 = degraded/aged disk, failure
    /// injection for straggler experiments).
    scale_milli: u64,
    head_lba: u64,
    pending: Vec<DiskRequest>,
    /// The in-flight request, if the disk is busy.
    current: Option<DiskRequest>,
    next_seq: u64,
    /// Counters.
    pub stats: DiskStats,
}

impl QueuedDisk {
    /// An idle disk.
    pub fn new(model: DiskModel, sched: DiskSched) -> Self {
        Self::with_scale(model, sched, 1.0)
    }

    /// An idle disk whose every service takes `scale`× the model time
    /// (straggler injection; `scale` is stored with milli precision so
    /// the simulation stays integer-deterministic).
    pub fn with_scale(model: DiskModel, sched: DiskSched, scale: f64) -> Self {
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        Self::with_scale_milli(model, sched, (scale * 1000.0).round() as u64)
    }

    /// [`with_scale`](QueuedDisk::with_scale) with the multiplier already
    /// in milli-units (fault plans carry integers for replay-exactness).
    pub fn with_scale_milli(model: DiskModel, sched: DiskSched, scale_milli: u64) -> Self {
        assert!(scale_milli > 0, "scale must be positive");
        QueuedDisk {
            model,
            sched,
            scale_milli,
            head_lba: 0,
            pending: Vec::new(),
            current: None,
            next_seq: 0,
            stats: DiskStats::default(),
        }
    }

    /// Is the disk currently servicing a request?
    pub fn busy(&self) -> bool {
        self.current.is_some()
    }

    /// Pending queue depth (not counting the in-flight request).
    pub fn queue_depth(&self) -> usize {
        self.pending.len()
    }

    /// Add a request to the pending queue.
    pub fn enqueue(&mut self, tag: usize, lba: u64, bytes: u64, write: bool, now: SimTime) {
        self.enqueue_after(tag, lba, bytes, write, now, SimTime::ZERO);
    }

    /// [`enqueue`](QueuedDisk::enqueue) with an injected extra service
    /// delay (fault stalls + retry backoff). The disk stays busy for the
    /// delay: a stalling drive blocks everything queued behind it, which
    /// is exactly the amplification transient faults cause in practice.
    pub fn enqueue_after(
        &mut self,
        tag: usize,
        lba: u64,
        bytes: u64,
        write: bool,
        now: SimTime,
        delay: SimTime,
    ) {
        self.pending.push(DiskRequest {
            tag,
            lba,
            bytes,
            write,
            issued: now,
            seq: self.next_seq,
            delay,
        });
        self.next_seq += 1;
        let depth = self.pending.len() as u64 + u64::from(self.current.is_some());
        self.stats.max_queue = self.stats.max_queue.max(depth);
    }

    /// If idle and work is pending, pick the next request per the
    /// discipline and start servicing it. Returns the request and its
    /// completion time.
    pub fn start_next(&mut self, now: SimTime) -> Option<(DiskRequest, SimTime)> {
        if self.current.is_some() || self.pending.is_empty() {
            return None;
        }
        let idx = match self.sched {
            DiskSched::Fcfs => self
                .pending
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| r.seq)
                .map(|(i, _)| i)
                .expect("non-empty"),
            DiskSched::Sstf => self
                .pending
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| (r.lba.abs_diff(self.head_lba), r.seq))
                .map(|(i, _)| i)
                .expect("non-empty"),
            DiskSched::CLook => {
                // Smallest LBA >= head; else wrap to the smallest overall.
                let ahead = self
                    .pending
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.lba >= self.head_lba)
                    .min_by_key(|(_, r)| (r.lba, r.seq))
                    .map(|(i, _)| i);
                ahead.unwrap_or_else(|| {
                    self.pending
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, r)| (r.lba, r.seq))
                        .map(|(i, _)| i)
                        .expect("non-empty")
                })
            }
        };
        let req = self.pending.swap_remove(idx);
        let base = self.model.service_time(self.head_lba, req.lba, req.bytes);
        let service =
            crate::time::SimTime::from_nanos(base.as_nanos() * self.scale_milli / 1000) + req.delay;
        let done = now + service;
        self.head_lba = req.lba;
        self.stats.busy += service;
        self.stats.queued += now - req.issued;
        if req.write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        self.current = Some(req);
        Some((req, done))
    }

    /// The engine calls this when the in-flight request's completion event
    /// fires; returns the finished request.
    pub fn complete(&mut self) -> DiskRequest {
        self.current
            .take()
            .expect("complete() without in-flight request")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk(sched: DiskSched) -> QueuedDisk {
        QueuedDisk::new(DiskModel::detailed_default(), sched)
    }

    #[test]
    fn fcfs_serves_in_arrival_order() {
        let mut d = disk(DiskSched::Fcfs);
        d.enqueue(0, 1000, 4096, false, SimTime::ZERO);
        d.enqueue(1, 10, 4096, false, SimTime::ZERO);
        let (first, t1) = d.start_next(SimTime::ZERO).unwrap();
        assert_eq!(first.tag, 0);
        d.complete();
        let (second, _) = d.start_next(t1).unwrap();
        assert_eq!(second.tag, 1);
    }

    #[test]
    fn sstf_picks_nearest() {
        let mut d = disk(DiskSched::Sstf);
        d.enqueue(0, 1_000_000, 4096, false, SimTime::ZERO);
        d.enqueue(1, 10, 4096, false, SimTime::ZERO);
        // Head starts at 0 → nearest is LBA 10.
        let (first, _) = d.start_next(SimTime::ZERO).unwrap();
        assert_eq!(first.tag, 1);
    }

    #[test]
    fn clook_sweeps_upward_then_wraps() {
        let mut d = disk(DiskSched::CLook);
        d.enqueue(0, 500, 4096, false, SimTime::ZERO);
        d.enqueue(1, 100, 4096, false, SimTime::ZERO);
        d.enqueue(2, 900, 4096, false, SimTime::ZERO);
        // Head 0: ascending sweep → 100, 500, 900.
        let order: Vec<usize> = (0..3)
            .map(|_| {
                let (r, t) = d.start_next(SimTime::ZERO).unwrap();
                let _ = t;
                d.complete();
                r.tag
            })
            .collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn clook_wraps_to_lowest() {
        let mut d = disk(DiskSched::CLook);
        // Move head to 800 first.
        d.enqueue(9, 800, 4096, false, SimTime::ZERO);
        d.start_next(SimTime::ZERO).unwrap();
        d.complete();
        d.enqueue(0, 100, 4096, false, SimTime::ZERO);
        d.enqueue(1, 900, 4096, false, SimTime::ZERO);
        // Ahead of 800: 900 first; then wrap to 100.
        let (first, _) = d.start_next(SimTime::ZERO).unwrap();
        assert_eq!(first.tag, 1);
        d.complete();
        let (second, _) = d.start_next(SimTime::ZERO).unwrap();
        assert_eq!(second.tag, 0);
    }

    #[test]
    fn busy_disk_does_not_double_start() {
        let mut d = disk(DiskSched::Fcfs);
        d.enqueue(0, 1, 4096, false, SimTime::ZERO);
        d.enqueue(1, 2, 4096, false, SimTime::ZERO);
        assert!(d.start_next(SimTime::ZERO).is_some());
        assert!(
            d.start_next(SimTime::ZERO).is_none(),
            "busy disk must not start another"
        );
        d.complete();
        assert!(d.start_next(SimTime::ZERO).is_some());
    }

    #[test]
    fn straggler_scale_slows_service() {
        let mut d = QueuedDisk::with_scale(DiskModel::paper_default(), DiskSched::Fcfs, 3.0);
        d.enqueue(0, 0, 1, false, SimTime::ZERO);
        let (_, done) = d.start_next(SimTime::ZERO).unwrap();
        assert_eq!(done, SimTime::from_millis(30));
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        QueuedDisk::with_scale(DiskModel::paper_default(), DiskSched::Fcfs, 0.0);
    }

    #[test]
    fn injected_delay_extends_service() {
        let mut d = QueuedDisk::new(DiskModel::paper_default(), DiskSched::Fcfs);
        d.enqueue_after(0, 0, 1, false, SimTime::ZERO, SimTime::from_millis(25));
        let (_, done) = d.start_next(SimTime::ZERO).unwrap();
        // 10 ms model service + 25 ms injected stall.
        assert_eq!(done, SimTime::from_millis(35));
        d.complete();
        // The delay occupies the disk: busy time includes it.
        assert_eq!(d.stats.busy, SimTime::from_millis(35));
    }

    #[test]
    fn integer_scale_matches_float_scale() {
        let mut a = QueuedDisk::with_scale(DiskModel::paper_default(), DiskSched::Fcfs, 2.5);
        let mut b = QueuedDisk::with_scale_milli(DiskModel::paper_default(), DiskSched::Fcfs, 2500);
        a.enqueue(0, 0, 1, false, SimTime::ZERO);
        b.enqueue(0, 0, 1, false, SimTime::ZERO);
        assert_eq!(
            a.start_next(SimTime::ZERO).unwrap().1,
            b.start_next(SimTime::ZERO).unwrap().1
        );
    }

    #[test]
    fn queue_time_accounted() {
        let mut d = QueuedDisk::new(DiskModel::paper_default(), DiskSched::Fcfs);
        d.enqueue(0, 0, 1, false, SimTime::ZERO);
        let (_, t1) = d.start_next(SimTime::ZERO).unwrap();
        d.enqueue(1, 0, 1, false, SimTime::ZERO); // waits 10 ms
        d.complete();
        d.start_next(t1).unwrap();
        assert_eq!(d.stats.queued, SimTime::from_millis(10));
    }

    #[test]
    fn max_queue_is_a_high_water_mark() {
        let mut d = disk(DiskSched::Fcfs);
        d.enqueue(0, 1, 4096, false, SimTime::ZERO);
        d.enqueue(1, 2, 4096, false, SimTime::ZERO);
        d.enqueue(2, 3, 4096, false, SimTime::ZERO);
        assert_eq!(d.stats.max_queue, 3);
        d.start_next(SimTime::ZERO).unwrap();
        d.complete();
        d.start_next(SimTime::ZERO).unwrap();
        d.complete();
        // Draining never lowers the high-water mark; a fresh arrival on
        // top of one in-flight request counts both.
        d.start_next(SimTime::ZERO).unwrap();
        d.enqueue(3, 4, 4096, false, SimTime::ZERO);
        assert_eq!(d.stats.max_queue, 3);
    }

    #[test]
    fn sstf_starves_far_requests_under_load() {
        // Classic SSTF behaviour: a far request keeps losing to near ones.
        let mut d = disk(DiskSched::Sstf);
        d.enqueue(99, 1 << 24, 4096, false, SimTime::ZERO); // far away
        let mut t = SimTime::ZERO;
        for i in 0..5 {
            d.enqueue(i, (i as u64 + 1) * 10, 4096, false, t);
            let (r, done) = d.start_next(t).unwrap();
            assert_ne!(r.tag, 99, "far request served too early");
            d.complete();
            t = done;
        }
    }
}
