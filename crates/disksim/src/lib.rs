//! # fbf-disksim — event-driven disk-array simulator
//!
//! Stand-in for DiskSim 4.0 (the FBF paper's simulator; it is C-only with no
//! Rust bindings, so per the reproduction plan we rebuild the surface the
//! paper actually uses — see DESIGN.md §2). The simulator provides:
//!
//! * virtual [`time`] in nanosecond ticks,
//! * a per-disk service model ([`disk`]) — either the paper's fixed-latency
//!   configuration (0.5 ms buffer-cache access, 10 ms disk access) or a
//!   seek + rotation + transfer model with FCFS queueing,
//! * chunk→disk/LBA mapping for a striped array ([`array`]), including
//!   HDD1-style rotated parity placement,
//! * a buffer cache ([`buffer`]) that wraps any [`fbf_cache`] replacement
//!   policy and tracks hits/misses,
//! * the discrete-event [`engine`]: a set of logical *workers* (SOR
//!   reconstruction processes) each executing a script of chunk reads,
//!   XOR computations and spare writes; the engine interleaves them in
//!   virtual-time order, modelling disk contention between workers.
//!
//! The engine is deterministic: identical inputs produce identical virtual
//! timings, which the integration tests rely on.

pub mod array;
pub mod backend;
pub mod buffer;
pub mod declust;
pub mod disk;
pub mod engine;
pub mod equeue;
pub mod fault;
pub mod hist;
pub mod sched;
pub mod time;

pub use array::ArrayMapping;
pub use backend::{BackendDiskStats, BackendError, FileBackend, SimBackend, StorageBackend};
pub use buffer::{BufferCache, Lookup};
pub use declust::{ClusteredLayout, D3Layout, DeclusteredLayout, Placement};
pub use disk::{DiskModel, DiskParams, DiskStats};
pub use engine::{
    build_caches, CacheSharing, Engine, EngineConfig, EngineScratch, Op, ResponseStats, RunReport,
    WorkerScript,
};
pub use equeue::{CalendarQueue, Event, EventQueue};
pub use fault::{
    DiskKill, FailedRead, FaultCounters, FaultDraw, FaultPlan, ReadFailure, RetryPolicy, SlowDisk,
};
pub use fbf_obs::{Digest, RequestClass};
pub use hist::Histogram;
pub use sched::{DiskSched, QueuedDisk};
pub use time::SimTime;
