//! Pluggable storage backends: the seam between planned recovery and the
//! medium it runs against.
//!
//! The engine ([`crate::engine`]) moves chunk *identities* on a virtual
//! clock; this module defines [`StorageBackend`] — chunk-granular
//! read / spare-write / XOR-gather operations plus a deterministic fault
//! surface and per-disk counters — so the same planned campaign can also
//! execute against real payload bytes:
//!
//! * [`SimBackend`] synthesises the array's content in memory from the
//!   same seeded generator the verification path uses
//!   (`Stripe::patterned_seeded` + encode), so repaired bytes can be
//!   checked against `verify_campaign` exactly.
//! * [`FileBackend`] performs actual file I/O against one backing file
//!   per disk, laid out by [`ArrayMapping`] (chunk LBA × chunk size, the
//!   spare area past the data zone).
//!
//! # Contract (see DESIGN.md §12)
//!
//! * **Addressing.** A chunk's home location is
//!   `(mapping.disk_of(chunk), mapping.lba_of(chunk))`; its spare
//!   location is `mapping.spare_lba_of(chunk, data_stripes)` on the same
//!   disk. Implementations must not invent their own placement.
//! * **Spare redirect.** After `write_spare(chunk, data)` succeeds, every
//!   later `read_chunk(chunk)` must return `data` (the recovered copy),
//!   and the chunk is exempt from fault draws — its bytes have left the
//!   (possibly faulty) original location. This mirrors the engine's
//!   `repaired` set.
//! * **Damaged cells.** Reading a chunk that is marked damaged and has
//!   not been repaired is a caller bug and must fail with
//!   [`BackendError::DamagedRead`], never return stale or zero bytes.
//! * **Fault surface.** `classify_read` must be a pure function of the
//!   fault plan's seed and the chunk identity (plus the redirect rule
//!   above); `disk_dead` models a whole-disk kill. Data-plane executors
//!   have no virtual clock, so a scheduled kill counts as dead only when
//!   its instant is time zero (escalation rounds move it there).
//! * **Ordering.** Callers issue the reads of one repair before its
//!   spare write, and repairs of one stripe in scheme order; backends may
//!   not reorder a read past the write that precedes it in program order.

use crate::array::ArrayMapping;
use crate::fault::{FaultDraw, FaultPlan};
use crate::time::SimTime;
use fbf_cache::{FxHashMap, FxHashSet};
use fbf_codes::encode::encode;
use fbf_codes::{ChunkId, Stripe, StripeCode};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Why a backend operation failed.
#[derive(Debug)]
pub enum BackendError {
    /// An I/O operation against a disk's backing store failed.
    Io {
        /// Disk index the operation targeted.
        disk: usize,
        /// Operation name ("read", "write", "create", …).
        op: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A damaged (erased) chunk was read before being repaired — a
    /// planner/executor bug, surfaced instead of returning garbage.
    DamagedRead(ChunkId),
    /// The caller's buffer does not match the backend's chunk size.
    SizeMismatch {
        /// Backend chunk size in bytes.
        expected: usize,
        /// Caller buffer length.
        got: usize,
    },
    /// The backend's geometry does not match the campaign it was asked
    /// to execute.
    Geometry {
        /// What the campaign requires (disks, rows).
        expected: (usize, usize),
        /// What the backend has.
        got: (usize, usize),
    },
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Io { disk, op, source } => {
                write!(f, "disk {disk}: {op} failed: {source}")
            }
            BackendError::DamagedRead(chunk) => write!(
                f,
                "read of damaged, unrepaired chunk (stripe {}, r{} c{})",
                chunk.stripe,
                chunk.cell.r(),
                chunk.cell.c()
            ),
            BackendError::SizeMismatch { expected, got } => {
                write!(
                    f,
                    "chunk buffer of {got} B, backend chunk size {expected} B"
                )
            }
            BackendError::Geometry { expected, got } => write!(
                f,
                "backend geometry {}x{} does not match campaign {}x{}",
                got.0, got.1, expected.0, expected.1
            ),
        }
    }
}

impl std::error::Error for BackendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BackendError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Per-disk I/O counters of a backend (host-side, no virtual time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendDiskStats {
    /// Chunk reads served (data zone + spare area).
    pub reads: u64,
    /// Spare-area chunk writes served.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

/// Chunk-granular storage under a recovery campaign.
///
/// Implementations are single-threaded (`&mut self` per operation); a
/// daemon shards campaigns so each backend instance is owned by one
/// worker. See the module docs for the full contract.
pub trait StorageBackend: Send {
    /// Short implementation name ("sim", "file") for reports and logs.
    fn kind(&self) -> &'static str;

    /// The chunk→(disk, LBA) mapping this backend lays data out by.
    fn mapping(&self) -> ArrayMapping;

    /// Chunk payload size in bytes.
    fn chunk_bytes(&self) -> usize;

    /// Stripes in the data zone (the spare area begins after it).
    fn data_stripes(&self) -> u64;

    /// The deterministic fault plan in force.
    fn fault_plan(&self) -> &FaultPlan;

    /// Has `chunk` been rewritten to the spare area?
    fn is_repaired(&self, chunk: ChunkId) -> bool;

    /// Classify a prospective read of `chunk`. Spare-redirected chunks
    /// always classify `Ok` (their bytes left the faulty location).
    fn classify_read(&self, chunk: ChunkId) -> FaultDraw {
        if self.is_repaired(chunk) {
            FaultDraw::Ok
        } else {
            self.fault_plan().draw(chunk)
        }
    }

    /// Is `disk` dead for the whole run? Data-plane executors have no
    /// virtual clock, so only a kill scheduled at time zero counts.
    fn disk_dead(&self, disk: usize) -> bool {
        matches!(
            self.fault_plan().disk_kill,
            Some(kill) if kill.disk as usize == disk && kill.at == SimTime::ZERO
        )
    }

    /// Read `chunk`'s payload into `buf` (`buf.len()` must equal
    /// [`chunk_bytes`](Self::chunk_bytes)). Serves the spare copy when
    /// the chunk has been repaired.
    fn read_chunk(&mut self, chunk: ChunkId, buf: &mut [u8]) -> Result<(), BackendError>;

    /// Write a recovered chunk to its spare location and register the
    /// redirect for later reads.
    fn write_spare(&mut self, chunk: ChunkId, data: &[u8]) -> Result<(), BackendError>;

    /// Read every chunk in `chunks` and XOR the payloads into `acc`.
    /// The default loops [`read_chunk`](Self::read_chunk); backends with
    /// cheaper bulk paths may override.
    fn xor_gather(&mut self, chunks: &[ChunkId], acc: &mut [u8]) -> Result<(), BackendError> {
        if acc.len() != self.chunk_bytes() {
            return Err(BackendError::SizeMismatch {
                expected: self.chunk_bytes(),
                got: acc.len(),
            });
        }
        let mut tmp = vec![0u8; self.chunk_bytes()];
        for &chunk in chunks {
            self.read_chunk(chunk, &mut tmp)?;
            fbf_codes::xor::xor_into(acc, &tmp);
        }
        Ok(())
    }

    /// Per-disk I/O counters accumulated over the backend's lifetime.
    fn disk_stats(&self) -> &[BackendDiskStats];

    /// Durably persist outstanding writes (no-op for volatile backends).
    fn flush(&mut self) -> Result<(), BackendError> {
        Ok(())
    }
}

/// Materialise the encoded payloads of one stripe, seeded by its id —
/// the exact generator `verify_campaign` checks recovered bytes against.
fn materialize(code: &StripeCode, stripe: u32, chunk_bytes: usize) -> Stripe {
    let mut s = Stripe::patterned_seeded(code.layout(), chunk_bytes, stripe as u64);
    encode(code, &mut s).expect("encode of a well-formed stripe cannot fail");
    s
}

/// In-memory backend synthesising array content on demand.
///
/// Stripes are materialised lazily (seeded by stripe id, then encoded),
/// damaged cells are erased, and spare writes are held in a map — so a
/// campaign's data plane runs with no setup cost and its repaired bytes
/// are directly comparable to the verification path's pristine payloads.
pub struct SimBackend {
    code: StripeCode,
    mapping: ArrayMapping,
    chunk_bytes: usize,
    data_stripes: u64,
    faults: FaultPlan,
    damaged: FxHashSet<ChunkId>,
    spare: FxHashMap<ChunkId, Vec<u8>>,
    stripes: FxHashMap<u32, Stripe>,
    stats: Vec<BackendDiskStats>,
}

impl SimBackend {
    /// Backend over `code`'s geometry with the given damage set.
    pub fn new(
        code: StripeCode,
        chunk_bytes: usize,
        data_stripes: u64,
        damaged: impl IntoIterator<Item = ChunkId>,
        faults: FaultPlan,
    ) -> Self {
        let mapping = ArrayMapping::new(code.cols(), code.rows(), code.spec().rotated_placement());
        let disks = mapping.disks;
        SimBackend {
            code,
            mapping,
            chunk_bytes,
            data_stripes,
            faults,
            damaged: damaged.into_iter().collect(),
            spare: FxHashMap::default(),
            stripes: FxHashMap::default(),
            stats: vec![BackendDiskStats::default(); disks],
        }
    }
}

impl StorageBackend for SimBackend {
    fn kind(&self) -> &'static str {
        "sim"
    }

    fn mapping(&self) -> ArrayMapping {
        self.mapping
    }

    fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    fn data_stripes(&self) -> u64 {
        self.data_stripes
    }

    fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    fn is_repaired(&self, chunk: ChunkId) -> bool {
        self.spare.contains_key(&chunk)
    }

    fn read_chunk(&mut self, chunk: ChunkId, buf: &mut [u8]) -> Result<(), BackendError> {
        if buf.len() != self.chunk_bytes {
            return Err(BackendError::SizeMismatch {
                expected: self.chunk_bytes,
                got: buf.len(),
            });
        }
        let disk = self.mapping.disk_of(chunk);
        if let Some(spare) = self.spare.get(&chunk) {
            buf.copy_from_slice(spare);
        } else {
            if self.damaged.contains(&chunk) {
                return Err(BackendError::DamagedRead(chunk));
            }
            let code = &self.code;
            let chunk_bytes = self.chunk_bytes;
            let stripe = self
                .stripes
                .entry(chunk.stripe)
                .or_insert_with(|| materialize(code, chunk.stripe, chunk_bytes));
            buf.copy_from_slice(stripe.get(code.layout(), chunk.cell));
        }
        self.stats[disk].reads += 1;
        self.stats[disk].bytes_read += buf.len() as u64;
        Ok(())
    }

    fn write_spare(&mut self, chunk: ChunkId, data: &[u8]) -> Result<(), BackendError> {
        if data.len() != self.chunk_bytes {
            return Err(BackendError::SizeMismatch {
                expected: self.chunk_bytes,
                got: data.len(),
            });
        }
        let disk = self.mapping.disk_of(chunk);
        self.spare.insert(chunk, data.to_vec());
        self.stats[disk].writes += 1;
        self.stats[disk].bytes_written += data.len() as u64;
        Ok(())
    }

    fn disk_stats(&self) -> &[BackendDiskStats] {
        &self.stats
    }
}

/// File-backed storage: one backing file per disk, chunk-addressed.
///
/// The file holds the data zone (`data_stripes × rows` chunks) followed
/// by an equally sized spare area, matching
/// [`ArrayMapping::spare_lba_of`]. [`FileBackend::format`] materialises
/// only the stripes a campaign touches; the rest stays sparse.
pub struct FileBackend {
    dir: PathBuf,
    files: Vec<File>,
    mapping: ArrayMapping,
    chunk_bytes: usize,
    data_stripes: u64,
    faults: FaultPlan,
    damaged: FxHashSet<ChunkId>,
    repaired: FxHashSet<ChunkId>,
    stats: Vec<BackendDiskStats>,
}

impl FileBackend {
    /// Create (truncating) per-disk backing files under `dir` for
    /// `code`'s geometry, writing the encoded payloads of `stripes`
    /// (seeded by stripe id) and leaving `damaged` cells unwritten.
    #[allow(clippy::too_many_arguments)]
    pub fn format(
        dir: &Path,
        code: &StripeCode,
        chunk_bytes: usize,
        data_stripes: u64,
        stripes: &[u32],
        damaged: &[ChunkId],
        faults: FaultPlan,
    ) -> Result<Self, BackendError> {
        let mapping = ArrayMapping::new(code.cols(), code.rows(), code.spec().rotated_placement());
        std::fs::create_dir_all(dir).map_err(|source| BackendError::Io {
            disk: 0,
            op: "create-dir",
            source,
        })?;
        let file_len = 2 * data_stripes * mapping.rows as u64 * chunk_bytes as u64;
        let mut files = Vec::with_capacity(mapping.disks);
        for disk in 0..mapping.disks {
            let path = dir.join(format!("disk-{disk:03}.dat"));
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)
                .map_err(|source| BackendError::Io {
                    disk,
                    op: "create",
                    source,
                })?;
            file.set_len(file_len).map_err(|source| BackendError::Io {
                disk,
                op: "set-len",
                source,
            })?;
            files.push(file);
        }
        let damaged: FxHashSet<ChunkId> = damaged.iter().copied().collect();
        let mut backend = FileBackend {
            dir: dir.to_path_buf(),
            files,
            mapping,
            chunk_bytes,
            data_stripes,
            faults,
            damaged,
            repaired: FxHashSet::default(),
            stats: vec![BackendDiskStats::default(); mapping.disks],
        };
        for &s in stripes {
            let stripe = materialize(code, s, chunk_bytes);
            for r in 0..mapping.rows {
                for c in 0..mapping.disks {
                    let cell = fbf_codes::Cell::new(r, c);
                    let chunk = ChunkId::new(s, cell);
                    if backend.damaged.contains(&chunk) {
                        continue; // lost cells hold no data
                    }
                    let disk = backend.mapping.disk_of(chunk);
                    let offset = backend.mapping.lba_of(chunk) * chunk_bytes as u64;
                    write_at(
                        &mut backend.files[disk],
                        disk,
                        offset,
                        stripe.get(code.layout(), cell),
                    )?;
                }
            }
        }
        Ok(backend)
    }

    /// Reopen an array previously created by [`format`](Self::format).
    ///
    /// `repaired` lists the chunks whose authoritative copy lives in
    /// the spare area — typically the damage set of the campaign that
    /// ran against this array. Reads of those chunks come back from
    /// spare; everything else reads the data zone. Geometry is taken
    /// from `code` and must match what the array was formatted with
    /// (the first out-of-range access reports it as an I/O error).
    pub fn open(
        dir: &Path,
        code: &StripeCode,
        chunk_bytes: usize,
        data_stripes: u64,
        repaired: &[ChunkId],
    ) -> Result<Self, BackendError> {
        let mapping = ArrayMapping::new(code.cols(), code.rows(), code.spec().rotated_placement());
        let mut files = Vec::with_capacity(mapping.disks);
        for disk in 0..mapping.disks {
            let path = dir.join(format!("disk-{disk:03}.dat"));
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .map_err(|source| BackendError::Io {
                    disk,
                    op: "open",
                    source,
                })?;
            files.push(file);
        }
        Ok(FileBackend {
            dir: dir.to_path_buf(),
            files,
            mapping,
            chunk_bytes,
            data_stripes,
            faults: FaultPlan::none(),
            damaged: FxHashSet::default(),
            repaired: repaired.iter().copied().collect(),
            stats: vec![BackendDiskStats::default(); mapping.disks],
        })
    }

    /// Directory holding the backing files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

fn write_at(file: &mut File, disk: usize, offset: u64, data: &[u8]) -> Result<(), BackendError> {
    file.seek(SeekFrom::Start(offset))
        .and_then(|_| file.write_all(data))
        .map_err(|source| BackendError::Io {
            disk,
            op: "write",
            source,
        })
}

fn read_at(file: &mut File, disk: usize, offset: u64, buf: &mut [u8]) -> Result<(), BackendError> {
    file.seek(SeekFrom::Start(offset))
        .and_then(|_| file.read_exact(buf))
        .map_err(|source| BackendError::Io {
            disk,
            op: "read",
            source,
        })
}

impl StorageBackend for FileBackend {
    fn kind(&self) -> &'static str {
        "file"
    }

    fn mapping(&self) -> ArrayMapping {
        self.mapping
    }

    fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    fn data_stripes(&self) -> u64 {
        self.data_stripes
    }

    fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    fn is_repaired(&self, chunk: ChunkId) -> bool {
        self.repaired.contains(&chunk)
    }

    fn read_chunk(&mut self, chunk: ChunkId, buf: &mut [u8]) -> Result<(), BackendError> {
        if buf.len() != self.chunk_bytes {
            return Err(BackendError::SizeMismatch {
                expected: self.chunk_bytes,
                got: buf.len(),
            });
        }
        let disk = self.mapping.disk_of(chunk);
        let offset = if self.repaired.contains(&chunk) {
            self.mapping.spare_lba_of(chunk, self.data_stripes) * self.chunk_bytes as u64
        } else {
            if self.damaged.contains(&chunk) {
                return Err(BackendError::DamagedRead(chunk));
            }
            self.mapping.lba_of(chunk) * self.chunk_bytes as u64
        };
        read_at(&mut self.files[disk], disk, offset, buf)?;
        self.stats[disk].reads += 1;
        self.stats[disk].bytes_read += buf.len() as u64;
        Ok(())
    }

    fn write_spare(&mut self, chunk: ChunkId, data: &[u8]) -> Result<(), BackendError> {
        if data.len() != self.chunk_bytes {
            return Err(BackendError::SizeMismatch {
                expected: self.chunk_bytes,
                got: data.len(),
            });
        }
        let disk = self.mapping.disk_of(chunk);
        let offset = self.mapping.spare_lba_of(chunk, self.data_stripes) * self.chunk_bytes as u64;
        write_at(&mut self.files[disk], disk, offset, data)?;
        self.repaired.insert(chunk);
        self.stats[disk].writes += 1;
        self.stats[disk].bytes_written += data.len() as u64;
        Ok(())
    }

    fn disk_stats(&self) -> &[BackendDiskStats] {
        &self.stats
    }

    fn flush(&mut self) -> Result<(), BackendError> {
        for (disk, file) in self.files.iter_mut().enumerate() {
            file.sync_all().map_err(|source| BackendError::Io {
                disk,
                op: "sync",
                source,
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbf_codes::{Cell, CodeSpec};

    fn code() -> StripeCode {
        StripeCode::build(CodeSpec::Tip, 5).unwrap()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fbf-backend-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn pristine_bytes(code: &StripeCode, stripe: u32, cell: Cell, chunk_bytes: usize) -> Vec<u8> {
        materialize(code, stripe, chunk_bytes)
            .get(code.layout(), cell)
            .to_vec()
    }

    fn backends_agree(mut a: impl StorageBackend, mut b: impl StorageBackend, chunks: &[ChunkId]) {
        let n = a.chunk_bytes();
        let (mut ba, mut bb) = (vec![0u8; n], vec![0u8; n]);
        for &chunk in chunks {
            a.read_chunk(chunk, &mut ba).unwrap();
            b.read_chunk(chunk, &mut bb).unwrap();
            assert_eq!(ba, bb, "backends disagree on {chunk:?}");
        }
    }

    #[test]
    fn sim_reads_match_verification_payloads() {
        let code = code();
        let mut b = SimBackend::new(code.clone(), 256, 16, [], FaultPlan::none());
        let cell = Cell::new(1, 2);
        let chunk = ChunkId::new(3, cell);
        let mut buf = vec![0u8; 256];
        b.read_chunk(chunk, &mut buf).unwrap();
        assert_eq!(buf, pristine_bytes(&code, 3, cell, 256));
        assert_eq!(b.disk_stats()[b.mapping().disk_of(chunk)].reads, 1);
    }

    #[test]
    fn file_backend_agrees_with_sim_backend() {
        let code = code();
        let chunks: Vec<ChunkId> = (0..code.rows())
            .flat_map(|r| (0..code.cols()).map(move |c| ChunkId::new(2, Cell::new(r, c))))
            .collect();
        let sim = SimBackend::new(code.clone(), 128, 8, [], FaultPlan::none());
        let dir = tmpdir("agree");
        let file = FileBackend::format(&dir, &code, 128, 8, &[2], &[], FaultPlan::none()).unwrap();
        backends_agree(sim, file, &chunks);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spare_write_redirects_later_reads() {
        let code = code();
        let chunk = ChunkId::new(1, Cell::new(0, 0));
        let dir = tmpdir("spare");
        for mut b in [
            Box::new(SimBackend::new(
                code.clone(),
                64,
                8,
                [chunk],
                FaultPlan::none(),
            )) as Box<dyn StorageBackend>,
            Box::new(
                FileBackend::format(&dir, &code, 64, 8, &[1], &[chunk], FaultPlan::none()).unwrap(),
            ),
        ] {
            let mut buf = vec![0u8; 64];
            assert!(matches!(
                b.read_chunk(chunk, &mut buf),
                Err(BackendError::DamagedRead(_))
            ));
            let recovered = vec![0xAB; 64];
            b.write_spare(chunk, &recovered).unwrap();
            assert!(b.is_repaired(chunk));
            b.read_chunk(chunk, &mut buf).unwrap();
            assert_eq!(buf, recovered, "{} backend", b.kind());
            assert_eq!(b.classify_read(chunk), FaultDraw::Ok);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn xor_gather_equals_manual_xor() {
        let code = code();
        let mut b = SimBackend::new(code.clone(), 32, 8, [], FaultPlan::none());
        let chunks = [
            ChunkId::new(0, Cell::new(0, 0)),
            ChunkId::new(0, Cell::new(0, 1)),
            ChunkId::new(0, Cell::new(1, 0)),
        ];
        let mut acc = vec![0u8; 32];
        b.xor_gather(&chunks, &mut acc).unwrap();
        let mut manual = vec![0u8; 32];
        let mut tmp = vec![0u8; 32];
        for &c in &chunks {
            b.read_chunk(c, &mut tmp).unwrap();
            for (m, t) in manual.iter_mut().zip(&tmp) {
                *m ^= t;
            }
        }
        assert_eq!(acc, manual);
    }

    #[test]
    fn size_mismatch_is_typed() {
        let code = code();
        let mut b = SimBackend::new(code, 64, 8, [], FaultPlan::none());
        let chunk = ChunkId::new(0, Cell::new(0, 0));
        let mut small = vec![0u8; 32];
        assert!(matches!(
            b.read_chunk(chunk, &mut small),
            Err(BackendError::SizeMismatch {
                expected: 64,
                got: 32
            })
        ));
    }

    #[test]
    fn fault_surface_classifies_deterministically() {
        let code = code();
        let faults = FaultPlan {
            seed: 11,
            media_per_mille: 500,
            ..FaultPlan::none()
        };
        let b = SimBackend::new(code, 64, 8, [], faults);
        let chunk = ChunkId::new(4, Cell::new(2, 1));
        assert_eq!(b.classify_read(chunk), b.classify_read(chunk));
        assert_eq!(b.classify_read(chunk), faults.draw(chunk));
        assert!(!b.disk_dead(0));
    }

    #[test]
    fn dead_disk_requires_time_zero_kill() {
        let code = code();
        let killed = FaultPlan {
            disk_kill: Some(crate::fault::DiskKill {
                disk: 1,
                at: SimTime::ZERO,
            }),
            ..FaultPlan::none()
        };
        let b = SimBackend::new(code.clone(), 64, 8, [], killed);
        assert!(b.disk_dead(1));
        assert!(!b.disk_dead(0));
        let later = FaultPlan {
            disk_kill: Some(crate::fault::DiskKill {
                disk: 1,
                at: SimTime::from_millis(5),
            }),
            ..FaultPlan::none()
        };
        let b = SimBackend::new(code, 64, 8, [], later);
        assert!(
            !b.disk_dead(1),
            "mid-run kills need a clock the data plane lacks"
        );
    }
}
