//! Deterministic fault injection for recovery reads.
//!
//! Real arrays fail *while* repairing (latent sector errors surface the
//! moment a rebuild finally touches a cold sector; a second drive dies
//! mid-rebuild). A [`FaultPlan`] makes the simulator model that: each
//! recovery read is classified — purely, from a seed and the chunk's
//! identity — as succeeding, stalling transiently (drive-internal retry),
//! or failing hard (unreadable media). A plan can additionally slow one
//! disk (straggler) or kill one outright at a chosen virtual instant.
//!
//! Classification is a pure function of `(seed, chunk)`: it does not
//! depend on execution order, worker interleaving, or wall time, so a
//! faulted run is exactly as replayable as an unfaulted one. With
//! [`FaultPlan::none()`] the engine's hot loop sees a single
//! well-predicted branch and produces bit-identical results to a build
//! without this module.

use crate::time::SimTime;
use fbf_codes::ChunkId;
use serde::{Deserialize, Serialize};

/// How the executor responds to transient faults: bounded retries with
/// exponential, capped backoff — all in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retries before a transient fault escalates to a hard failure.
    pub max_retries: u8,
    /// Simulated cost of one stalled attempt (the drive's internal
    /// retry/recovery window) before the executor retries.
    pub timeout: SimTime,
    /// Base backoff added before the first retry; doubles per retry.
    pub backoff: SimTime,
    /// Ceiling on the per-retry backoff term.
    pub backoff_cap: SimTime,
    /// Time for a worker to detect and report a hard failure before it
    /// moves on (error propagation is not free).
    pub detect: SimTime,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            timeout: SimTime::from_millis(10),
            backoff: SimTime::from_millis(5),
            backoff_cap: SimTime::from_millis(40),
            detect: SimTime::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// Total simulated delay of `stalls` failed attempts: each costs the
    /// stall `timeout` plus an exponentially growing (capped) backoff.
    pub fn delay_for(&self, stalls: u8) -> SimTime {
        let mut total = SimTime::ZERO;
        let mut backoff = self.backoff;
        for _ in 0..stalls {
            total += self.timeout + backoff.min(self.backoff_cap);
            backoff = SimTime::from_nanos(backoff.as_nanos().saturating_mul(2));
        }
        total
    }
}

/// Straggler injection: one disk whose every service is scaled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SlowDisk {
    /// Index of the degraded disk.
    pub disk: u32,
    /// Service-time multiplier in milli-units (2500 = 2.5×). Integer so
    /// the simulation stays replay-exact.
    pub scale_milli: u32,
}

/// Whole-disk failure at a virtual instant: reads issued to the disk at
/// or after `at` fail hard. Spare writes still succeed (the write is
/// redirected to a hot spare; modelling the spare's geometry identically
/// keeps timing unchanged).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DiskKill {
    /// Index of the dying disk.
    pub disk: u32,
    /// Virtual time of death.
    pub at: SimTime,
}

/// A seeded, deterministic fault-injection plan for one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the per-chunk fault draws.
    pub seed: u64,
    /// Per-mille probability that a chunk read is an unreadable sector
    /// (hard media error). 0 disables.
    pub media_per_mille: u16,
    /// Per-mille probability that a chunk read stalls transiently.
    /// 0 disables. Media draws take precedence.
    pub transient_per_mille: u16,
    /// Upper bound on consecutive stalls of one transient read (the draw
    /// picks 1..=max). A draw above [`RetryPolicy::max_retries`] means
    /// the read never succeeds and escalates.
    pub transient_failures_max: u8,
    /// Optional straggler disk.
    pub straggler: Option<SlowDisk>,
    /// Optional mid-campaign whole-disk death.
    pub disk_kill: Option<DiskKill>,
    /// Retry/backoff/detection parameters.
    pub retry: RetryPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Outcome of the deterministic per-chunk fault draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDraw {
    /// The read succeeds normally.
    Ok,
    /// The read stalls `stalls` times before (possibly) succeeding.
    Transient {
        /// Consecutive stalled attempts drawn for this chunk.
        stalls: u8,
    },
    /// The sector is unreadable: hard media error.
    Media,
}

/// Why a recovery read failed hard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReadFailure {
    /// Unreadable sector (latent sector error).
    Media,
    /// Transient stalls exceeded [`RetryPolicy::max_retries`].
    RetriesExhausted,
    /// The chunk's disk was killed before the read was issued.
    DeadDisk,
}

impl ReadFailure {
    /// Short name for reports and traces.
    pub fn name(&self) -> &'static str {
        match self {
            ReadFailure::Media => "media",
            ReadFailure::RetriesExhausted => "retries-exhausted",
            ReadFailure::DeadDisk => "dead-disk",
        }
    }
}

/// One hard read failure surfaced by the engine: the chunk is now an
/// additional erasure the controller must re-plan around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailedRead {
    /// The chunk that could not be read.
    pub chunk: ChunkId,
    /// Worker whose script hit the failure.
    pub worker: u32,
    /// Failure class.
    pub kind: ReadFailure,
}

/// Fault-path counters measured over one engine run (or merged across
/// escalation rounds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Hard media errors hit.
    pub media_errors: u64,
    /// Reads that stalled transiently at least once.
    pub transient_faults: u64,
    /// Total retry attempts spent on transient faults.
    pub retries: u64,
    /// Transient reads that exhausted their retry budget (escalated).
    pub retries_exhausted: u64,
    /// Reads issued to a dead disk.
    pub dead_disk_reads: u64,
    /// Script operations skipped because their stripe had already failed
    /// this run (the worker abandons a repair it cannot finish).
    pub skipped_ops: u64,
}

impl FaultCounters {
    /// Total hard failures (each one becomes an additional erasure).
    pub fn hard_failures(&self) -> u64 {
        self.media_errors + self.retries_exhausted + self.dead_disk_reads
    }

    /// True when nothing fault-related happened.
    pub fn is_empty(&self) -> bool {
        *self == FaultCounters::default()
    }

    /// Accumulate another run's counters (escalation rounds).
    pub fn merge(&mut self, other: &FaultCounters) {
        self.media_errors += other.media_errors;
        self.transient_faults += other.transient_faults;
        self.retries += other.retries;
        self.retries_exhausted += other.retries_exhausted;
        self.dead_disk_reads += other.dead_disk_reads;
        self.skipped_ops += other.skipped_ops;
    }
}

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mix.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The no-fault plan: every draw is `Ok`, no straggler, no kill.
    pub const fn none() -> Self {
        FaultPlan {
            seed: 0,
            media_per_mille: 0,
            transient_per_mille: 0,
            transient_failures_max: 1,
            straggler: None,
            disk_kill: None,
            retry: RetryPolicy {
                max_retries: 3,
                timeout: SimTime::from_millis(10),
                backoff: SimTime::from_millis(5),
                backoff_cap: SimTime::from_millis(40),
                detect: SimTime::from_millis(2),
            },
        }
    }

    /// Does this plan inject anything at all? The engine gates every
    /// fault check behind this, keeping the disabled hot path one branch.
    pub fn is_active(&self) -> bool {
        self.media_per_mille > 0
            || self.transient_per_mille > 0
            || self.straggler.is_some()
            || self.disk_kill.is_some()
    }

    /// Can this plan produce hard or transient read failures (as opposed
    /// to only perturbing timing)?
    pub fn injects_read_faults(&self) -> bool {
        self.media_per_mille > 0 || self.transient_per_mille > 0 || self.disk_kill.is_some()
    }

    /// Deterministic per-chunk fault draw. Pure in `(self.seed, chunk)`:
    /// the same chunk always draws the same outcome within a plan,
    /// regardless of when or by which worker it is read.
    pub fn draw(&self, chunk: ChunkId) -> FaultDraw {
        if self.media_per_mille == 0 && self.transient_per_mille == 0 {
            return FaultDraw::Ok;
        }
        let bits = (u64::from(chunk.stripe) << 32)
            | ((chunk.cell.r() as u64) << 16)
            | chunk.cell.c() as u64;
        let h = splitmix64(self.seed ^ bits);
        if u64::from(self.media_per_mille) > 0 && h % 1000 < u64::from(self.media_per_mille) {
            return FaultDraw::Media;
        }
        if u64::from(self.transient_per_mille) > 0
            && (h >> 10) % 1000 < u64::from(self.transient_per_mille)
        {
            let span = u64::from(self.transient_failures_max.max(1));
            let stalls = 1 + ((h >> 32) % span) as u8;
            return FaultDraw::Transient { stalls };
        }
        FaultDraw::Ok
    }

    /// Is `disk` dead for reads issued at `now`?
    pub fn disk_dead(&self, disk: usize, now: SimTime) -> bool {
        matches!(self.disk_kill, Some(k) if k.disk as usize == disk && now >= k.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbf_codes::Cell;

    fn chunk(stripe: u32, r: usize, c: usize) -> ChunkId {
        ChunkId::new(stripe, Cell::new(r, c))
    }

    fn plan(media: u16, transient: u16) -> FaultPlan {
        FaultPlan {
            seed: 42,
            media_per_mille: media,
            transient_per_mille: transient,
            transient_failures_max: 4,
            ..FaultPlan::none()
        }
    }

    #[test]
    fn none_is_inactive_and_never_faults() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        for s in 0..100 {
            assert_eq!(p.draw(chunk(s, 0, 0)), FaultDraw::Ok);
        }
    }

    #[test]
    fn draws_are_deterministic() {
        let p = plan(100, 200);
        for s in 0..50u32 {
            for r in 0..4 {
                let c = chunk(s, r, 3);
                assert_eq!(p.draw(c), p.draw(c));
            }
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = plan(100, 200);
        let b = FaultPlan { seed: 43, ..a };
        let diverges = (0..200u32).any(|s| a.draw(chunk(s, 0, 0)) != b.draw(chunk(s, 0, 0)));
        assert!(diverges, "seed must matter");
    }

    #[test]
    fn media_rate_is_roughly_calibrated() {
        let p = plan(100, 0); // 10 %
        let media = (0..2000u32)
            .filter(|&s| p.draw(chunk(s, 1, 2)) == FaultDraw::Media)
            .count();
        assert!(
            (100..400).contains(&media),
            "10% of 2000 ≈ 200, got {media}"
        );
    }

    #[test]
    fn transient_stalls_bounded_by_max() {
        let p = plan(0, 500);
        for s in 0..2000u32 {
            if let FaultDraw::Transient { stalls } = p.draw(chunk(s, 0, 1)) {
                assert!((1..=4).contains(&stalls));
            }
        }
    }

    #[test]
    fn media_takes_precedence_over_transient() {
        // With both rates at 1000 every draw is a fault and it is always
        // classified media first.
        let p = plan(1000, 1000);
        for s in 0..50u32 {
            assert_eq!(p.draw(chunk(s, 2, 2)), FaultDraw::Media);
        }
    }

    #[test]
    fn retry_delay_grows_and_caps() {
        let r = RetryPolicy::default();
        assert_eq!(r.delay_for(0), SimTime::ZERO);
        // 1 stall: timeout + backoff = 10 + 5 ms.
        assert_eq!(r.delay_for(1), SimTime::from_millis(15));
        // 2 stalls: + (10 + 10) ms.
        assert_eq!(r.delay_for(2), SimTime::from_millis(35));
        // Far past the cap: each extra stall adds timeout + cap = 50 ms.
        let d8 = r.delay_for(8);
        let d9 = r.delay_for(9);
        assert_eq!(d9 - d8, SimTime::from_millis(50));
    }

    #[test]
    fn disk_kill_respects_time_and_index() {
        let p = FaultPlan {
            disk_kill: Some(DiskKill {
                disk: 2,
                at: SimTime::from_millis(5),
            }),
            ..FaultPlan::none()
        };
        assert!(p.is_active());
        assert!(!p.disk_dead(2, SimTime::from_millis(4)));
        assert!(p.disk_dead(2, SimTime::from_millis(5)));
        assert!(!p.disk_dead(1, SimTime::from_millis(9)));
    }

    #[test]
    fn counters_merge_and_sum() {
        let mut a = FaultCounters {
            media_errors: 1,
            retries: 3,
            ..Default::default()
        };
        let b = FaultCounters {
            dead_disk_reads: 2,
            retries_exhausted: 1,
            transient_faults: 4,
            skipped_ops: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.hard_failures(), 4);
        assert_eq!(a.retries, 3);
        assert_eq!(a.skipped_ops, 7);
        assert!(!a.is_empty());
        assert!(FaultCounters::default().is_empty());
    }
}
